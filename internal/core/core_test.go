package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"act/internal/fab"
	"act/internal/intensity"
	"act/internal/memdb"
	"act/internal/storagedb"
	"act/internal/units"
)

func mustFab(t *testing.T, n fab.Node, opts ...fab.Option) *fab.Fab {
	t.Helper()
	f, err := fab.New(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func TestNewLogicValidation(t *testing.T) {
	f := mustFab(t, fab.Node7)
	if _, err := NewLogic("", units.MM2(100), f, 1); err == nil {
		t.Error("empty name: expected error")
	}
	if _, err := NewLogic("soc", units.MM2(0), f, 1); err == nil {
		t.Error("zero area: expected error")
	}
	if _, err := NewLogic("soc", units.MM2(100), nil, 1); err == nil {
		t.Error("nil fab: expected error")
	}
	if _, err := NewLogic("soc", units.MM2(100), f, 0); err == nil {
		t.Error("zero count: expected error")
	}
	l, err := NewLogic("soc", units.MM2(100), f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "soc" || l.Area() != units.MM2(100) || l.Count() != 2 || l.Fab() != f {
		t.Errorf("accessors wrong: %+v", l)
	}
}

func TestLogicEmbodiedCountScaling(t *testing.T) {
	f := mustFab(t, fab.Node7)
	one, _ := NewLogic("soc", units.MM2(100), f, 1)
	two, _ := NewLogic("soc", units.MM2(100), f, 2)
	e1, err := one.Embodied()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := two.Embodied()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, e2.Grams(), 2*e1.Grams(), 1e-12, "count scaling")
}

func TestNewDRAMValidation(t *testing.T) {
	if _, err := NewDRAM("", memdb.LPDDR4, 4); err == nil {
		t.Error("empty name: expected error")
	}
	if _, err := NewDRAM("ram", memdb.LPDDR4, 0); err == nil {
		t.Error("zero capacity: expected error")
	}
	if _, err := NewDRAM("ram", "hbm3", 4); err == nil {
		t.Error("unknown tech: expected error")
	}
	d, err := NewDRAM("ram", memdb.LPDDR4, units.Gigabytes(4))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Embodied().Grams(), 192, 1e-12, "4GB LPDDR4")
	if d.Name() != "ram" || d.Capacity() != 4 || d.Technology().Technology != memdb.LPDDR4 {
		t.Errorf("accessors wrong: %+v", d)
	}
}

func TestNewStorageValidation(t *testing.T) {
	if _, err := NewStorage("", storagedb.NANDV3TLC, 64); err == nil {
		t.Error("empty name: expected error")
	}
	if _, err := NewStorage("ssd", storagedb.NANDV3TLC, -1); err == nil {
		t.Error("negative capacity: expected error")
	}
	if _, err := NewStorage("ssd", "tape", 64); err == nil {
		t.Error("unknown tech: expected error")
	}
	s, err := NewStorage("ssd", storagedb.NANDV3TLC, units.Gigabytes(64))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.Embodied().Grams(), 403.2, 1e-12, "64GB V3 TLC")
	if s.Class() != storagedb.SSD {
		t.Errorf("Class() = %v, want ssd", s.Class())
	}
	h, err := NewStorage("hdd", storagedb.Exosx16, units.Terabytes(16))
	if err != nil {
		t.Fatal(err)
	}
	if h.Class() != storagedb.HDD {
		t.Errorf("Class() = %v, want hdd", h.Class())
	}
}

func TestDeviceICCount(t *testing.T) {
	d, err := NewDevice("phone")
	if err != nil {
		t.Fatal(err)
	}
	f := mustFab(t, fab.Node7)
	soc, _ := NewLogic("soc", units.MM2(98.5), f, 1)
	copro, _ := NewLogic("copro", units.MM2(10), f, 2)
	ram, _ := NewDRAM("ram", memdb.LPDDR4, 4)
	ssd, _ := NewStorage("flash", storagedb.NANDV3TLC, 64)
	d.AddLogic(soc).AddLogic(copro).AddDRAM(ram).AddStorage(ssd).AddExtraICs(5)
	if got := d.ICCount(); got != 1+2+1+1+5 {
		t.Errorf("ICCount() = %d, want 10", got)
	}
	// Negative extra ICs are ignored.
	d.AddExtraICs(-3)
	if got := d.ICCount(); got != 10 {
		t.Errorf("ICCount() after negative add = %d, want 10", got)
	}
	if _, err := NewDevice(""); err == nil {
		t.Error("empty device name: expected error")
	}
}

func TestEmbodiedBreakdown(t *testing.T) {
	d, _ := NewDevice("phone")
	f := mustFab(t, fab.Node7)
	soc, _ := NewLogic("soc", units.CM2(1), f, 1)
	ram, _ := NewDRAM("ram", memdb.LPDDR4, 4)
	ssd, _ := NewStorage("flash", storagedb.NANDV3TLC, 64)
	hdd, _ := NewStorage("disk", storagedb.Exosx16, 1000)
	d.AddLogic(soc).AddDRAM(ram).AddStorage(ssd).AddStorage(hdd)

	b, err := Embodied(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Items) != 5 { // soc, ram, ssd, hdd, packaging
		t.Fatalf("breakdown has %d items, want 5: %+v", len(b.Items), b.Items)
	}

	// Hand-compute: CPA(7nm default) = (447.5*1.52 + 350 + 500)/0.875
	cpa := (447.5*1.52 + 350 + 500) / 0.875
	wantSoC := cpa * 1.0 // 1 cm²
	wantRAM := 48.0 * 4
	wantSSD := 6.3 * 64
	wantHDD := 1.33 * 1000
	wantPkg := 150.0 * 4
	want := wantSoC + wantRAM + wantSSD + wantHDD + wantPkg
	approx(t, b.Total().Grams(), want, 1e-12, "breakdown total")

	kinds := map[Kind]bool{}
	for _, it := range b.Items {
		kinds[it.Kind] = true
	}
	for _, k := range []Kind{KindLogic, KindDRAM, KindSSD, KindHDD, KindPackaging} {
		if !kinds[k] {
			t.Errorf("breakdown missing kind %s", k)
		}
	}

	// Packaging item names the IC count.
	var pkg Item
	for _, it := range b.Items {
		if it.Kind == KindPackaging {
			pkg = it
		}
	}
	if !strings.Contains(pkg.Name, "4 ICs") {
		t.Errorf("packaging item name = %q, want it to mention 4 ICs", pkg.Name)
	}

	if _, err := Embodied(nil); err == nil {
		t.Error("Embodied(nil): expected error")
	}
}

func TestByKindAggregation(t *testing.T) {
	d, _ := NewDevice("box")
	f := mustFab(t, fab.Node7)
	a, _ := NewLogic("a", units.MM2(50), f, 1)
	b2, _ := NewLogic("b", units.MM2(50), f, 1)
	d.AddLogic(a).AddLogic(b2)
	b, err := Embodied(d)
	if err != nil {
		t.Fatal(err)
	}
	agg := b.ByKind()
	if len(agg) != 2 { // logic + packaging
		t.Fatalf("ByKind() = %d entries, want 2", len(agg))
	}
	for i := 1; i < len(agg); i++ {
		if agg[i].Embodied > agg[i-1].Embodied {
			t.Error("ByKind() not sorted by descending share")
		}
	}
	var logicSum float64
	for _, it := range b.Items {
		if it.Kind == KindLogic {
			logicSum += it.Embodied.Grams()
		}
	}
	for _, it := range agg {
		if it.Kind == KindLogic {
			approx(t, it.Embodied.Grams(), logicSum, 1e-12, "logic aggregation")
		}
	}
}

func TestOperational(t *testing.T) {
	// Table 4: CPU at 6.6 W for 6 ms on the 300 g/kWh US grid = 3.3 µg.
	u := UsageFromPower(units.Watts(6.6), 6*time.Millisecond, intensity.USGrid)
	op, err := Operational(u)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, op.Grams(), 3.3e-6, 1e-9, "Table 4 CPU OPCF")

	if _, err := Operational(Usage{Energy: -1, Intensity: 300}); err == nil {
		t.Error("negative energy: expected error")
	}
	if _, err := Operational(Usage{Energy: 1, Intensity: -300}); err == nil {
		t.Error("negative intensity: expected error")
	}
}

func TestFootprintAmortization(t *testing.T) {
	d, _ := NewDevice("phone")
	f := mustFab(t, fab.Node7)
	soc, _ := NewLogic("soc", units.CM2(1), f, 1)
	d.AddLogic(soc)

	u := Usage{Energy: units.KilowattHours(1), Intensity: intensity.USGrid}
	lt := units.Years(3)

	// Running for the full lifetime attributes the whole ECF.
	full, err := Footprint(d, u, lt, lt)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, full.EmbodiedShare.Grams(), full.EmbodiedTotal.Grams(), 1e-12, "full lifetime share")

	// Running for a third of the lifetime attributes a third.
	third, err := Footprint(d, u, lt/3, lt)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, third.EmbodiedShare.Grams(), full.EmbodiedTotal.Grams()/3, 1e-9, "1/3 lifetime share")

	// Total = OPCF + share.
	approx(t, third.Total().Grams(), third.Operational.Grams()+third.EmbodiedShare.Grams(), 1e-12, "Eq. 1")
	approx(t, third.Operational.Grams(), 300, 1e-12, "1 kWh at 300 g/kWh")
}

func TestFootprintValidation(t *testing.T) {
	d, _ := NewDevice("phone")
	u := Usage{Energy: 1, Intensity: 300}
	if _, err := Footprint(d, u, time.Hour, 0); err == nil {
		t.Error("zero lifetime: expected error")
	}
	if _, err := Footprint(d, u, -time.Hour, time.Hour); err == nil {
		t.Error("negative app time: expected error")
	}
	if _, err := Footprint(d, u, 2*time.Hour, time.Hour); err == nil {
		t.Error("app time > lifetime: expected error")
	}
}

func TestLifetimeFootprint(t *testing.T) {
	d, _ := NewDevice("phone")
	f := mustFab(t, fab.Node7)
	soc, _ := NewLogic("soc", units.CM2(1), f, 1)
	d.AddLogic(soc)
	u := Usage{Energy: units.KilowattHours(10), Intensity: intensity.USGrid}
	a, err := LifetimeFootprint(d, u, units.Years(3))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a.EmbodiedShare.Grams(), a.EmbodiedTotal.Grams(), 1e-12, "lifetime = full embodied")
	approx(t, a.Operational.Grams(), 3000, 1e-12, "10 kWh at 300")
}

// Property: the embodied share is monotone and linear in app time.
func TestQuickFootprintShareLinearInT(t *testing.T) {
	d, _ := NewDevice("phone")
	f, err := fab.New(fab.Node7)
	if err != nil {
		t.Fatal(err)
	}
	soc, err := NewLogic("soc", units.CM2(1), f, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.AddLogic(soc)
	u := Usage{Energy: 0, Intensity: 0}
	lt := units.Years(3)
	check := func(hours uint16) bool {
		// Keep 2*tm within the 3-year (~26298 h) lifetime.
		tm := time.Duration(hours%13000) * time.Hour
		a1, err1 := Footprint(d, u, tm, lt)
		a2, err2 := Footprint(d, u, 2*tm, lt)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a2.EmbodiedShare.Grams()-2*a1.EmbodiedShare.Grams()) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding a component never decreases the embodied total.
func TestQuickEmbodiedMonotoneInComponents(t *testing.T) {
	f, err := fab.New(fab.Node7)
	if err != nil {
		t.Fatal(err)
	}
	check := func(nLogic, nDRAM uint8) bool {
		d, _ := NewDevice("box")
		for i := 0; i < int(nLogic%8); i++ {
			l, _ := NewLogic("l", units.MM2(10), f, 1)
			d.AddLogic(l)
		}
		prev := 0.0
		for i := 0; i < int(nDRAM%8); i++ {
			b, err := Embodied(d)
			if err != nil {
				return false
			}
			if b.Total().Grams() < prev {
				return false
			}
			prev = b.Total().Grams()
			m, _ := NewDRAM("m", memdb.LPDDR4, 4)
			d.AddDRAM(m)
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
