package core

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/fab"
	"act/internal/intensity"
	"act/internal/units"
)

func phoneDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice("phone")
	if err != nil {
		t.Fatal(err)
	}
	f := mustFab(t, fab.Node7)
	soc, err := NewLogic("soc", units.CM2(1), f, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d.AddLogic(soc)
}

func TestTransportLegEmissions(t *testing.T) {
	// 0.5 kg flown 10,000 km at 600 g/t-km = 3 kg CO2.
	leg := TransportLeg{Name: "fab to user", MassKg: 0.5, DistanceKm: 10000, Mode: TransportAir}
	m, err := leg.Emissions()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Kilograms()-3) > 1e-9 {
		t.Errorf("air leg = %v, want 3 kg", m)
	}

	// Sea freight is ~60x lighter per tonne-km than air.
	sea := TransportLeg{Name: "sea", MassKg: 0.5, DistanceKm: 10000, Mode: TransportSea}
	sm, err := sea.Emissions()
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Grams() / sm.Grams(); math.Abs(r-60) > 1e-9 {
		t.Errorf("air/sea ratio = %v, want 60", r)
	}

	if _, err := (TransportLeg{Mode: "teleport"}).Emissions(); err == nil {
		t.Error("unknown mode: expected error")
	}
	if _, err := (TransportLeg{Mode: TransportAir, MassKg: -1}).Emissions(); err == nil {
		t.Error("negative mass: expected error")
	}
}

func TestEndOfLifeNet(t *testing.T) {
	e := EndOfLife{Processing: units.Grams(100), RecyclingCredit: units.Grams(30)}
	if got := e.Net().Grams(); got != 70 {
		t.Errorf("net = %v, want 70", got)
	}
	// Credits cannot push a device carbon-negative.
	e = EndOfLife{Processing: units.Grams(10), RecyclingCredit: units.Grams(30)}
	if got := e.Net().Grams(); got != 0 {
		t.Errorf("net = %v, want 0 (floored)", got)
	}
}

func TestPUEAndBatteryEfficiency(t *testing.T) {
	u := Usage{Energy: units.KilowattHours(1), Intensity: intensity.USGrid}

	eu, err := PUE(u, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	wall, err := eu.WallUsage()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wall.Energy.KilowattHours()-1.5) > 1e-9 {
		t.Errorf("PUE 1.5 wall energy = %v, want 1.5 kWh", wall.Energy)
	}

	be, err := BatteryEfficiency(u, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	wall, err = be.WallUsage()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wall.Energy.KilowattHours()-1.25) > 1e-9 {
		t.Errorf("85%% battery wall energy = %v, want 1.25 kWh", wall.Energy)
	}

	if _, err := PUE(u, 0.9); err == nil {
		t.Error("PUE < 1: expected error")
	}
	if _, err := BatteryEfficiency(u, 0); err == nil {
		t.Error("zero efficiency: expected error")
	}
	if _, err := BatteryEfficiency(u, 1.2); err == nil {
		t.Error("efficiency > 1: expected error")
	}
	bad := EffectiveUsage{Usage: u, Effectiveness: 0.5}
	if _, err := bad.WallUsage(); err == nil {
		t.Error("effectiveness < 1: expected error")
	}
}

func TestLifeCycleAssess(t *testing.T) {
	d := phoneDevice(t)
	u := Usage{Energy: units.KilowattHours(20), Intensity: intensity.USGrid}
	eu, err := BatteryEfficiency(u, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	lc := LifeCycle{
		Device: d,
		Transport: []TransportLeg{
			{Name: "air", MassKg: 0.3, DistanceKm: 9000, Mode: TransportAir},
			{Name: "road", MassKg: 0.3, DistanceKm: 500, Mode: TransportRoad},
		},
		EndOfLife: EndOfLife{Processing: units.Grams(400), RecyclingCredit: units.Grams(100)},
		Use:       eu,
		Lifetime:  units.Years(3),
	}
	r, err := lc.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) != 4 {
		t.Fatalf("report has %d phases, want 4", len(r.Phases))
	}
	// Use = 20 kWh / 0.85 x 300 g = 7059 g.
	if math.Abs(r.Phases[PhaseUse].Grams()-20/0.85*300) > 1e-6 {
		t.Errorf("use phase = %v", r.Phases[PhaseUse])
	}
	// Transport = 0.3kg x (9000 x 0.6 + 500 x 0.08) g/kg... in grams:
	// 0.0003 t x 9000 km x 600 + 0.0003 t x 500 km x 80 = 1620 + 12.
	if math.Abs(r.Phases[PhaseTransport].Grams()-1632) > 1e-6 {
		t.Errorf("transport phase = %v, want 1632 g", r.Phases[PhaseTransport])
	}
	if r.Phases[PhaseEndOfLife].Grams() != 300 {
		t.Errorf("EOL phase = %v, want 300 g", r.Phases[PhaseEndOfLife])
	}
	// Shares sum to 1.
	var sum float64
	for _, p := range Phases() {
		sum += r.Share(p)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("phase shares sum to %v", sum)
	}
	// Total = sum of phases.
	var g float64
	for _, m := range r.Phases {
		g += m.Grams()
	}
	if math.Abs(r.Total().Grams()-g) > 1e-9 {
		t.Errorf("total mismatch")
	}
}

func TestLifeCycleValidation(t *testing.T) {
	d := phoneDevice(t)
	u := EffectiveUsage{Usage: Usage{}, Effectiveness: 1}
	if _, err := (LifeCycle{Device: nil, Use: u, Lifetime: units.Years(1)}).Assess(); err == nil {
		t.Error("nil device: expected error")
	}
	if _, err := (LifeCycle{Device: d, Use: u, Lifetime: 0}).Assess(); err == nil {
		t.Error("zero lifetime: expected error")
	}
	bad := LifeCycle{Device: d, Use: u, Lifetime: units.Years(1),
		Transport: []TransportLeg{{Mode: "catapult"}}}
	if _, err := bad.Assess(); err == nil {
		t.Error("bad transport mode: expected error")
	}
}

func TestLifeCycleReproducesFigure1Shape(t *testing.T) {
	// A manufacturing-heavy modern phone: with modest use-phase energy the
	// manufacturing share dominates (iPhone 11 shape); scaling the use
	// energy up flips dominance (iPhone 3 shape).
	d := phoneDevice(t)
	mk := func(kwh float64) PhaseReport {
		u, err := BatteryEfficiency(Usage{Energy: units.KilowattHours(kwh), Intensity: intensity.USGrid}, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		lc := LifeCycle{
			Device:    d,
			Transport: []TransportLeg{{Name: "air", MassKg: 0.3, DistanceKm: 9000, Mode: TransportAir}},
			EndOfLife: EndOfLife{Processing: units.Grams(200)},
			Use:       u,
			Lifetime:  units.Years(3),
		}
		r, err := lc.Assess()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	modern := mk(4) // ~4 kWh over the lifetime
	if modern.Share(PhaseManufacturing) <= modern.Share(PhaseUse) {
		t.Errorf("modern device should be manufacturing-dominated: %v vs %v",
			modern.Share(PhaseManufacturing), modern.Share(PhaseUse))
	}
	legacy := mk(40)
	if legacy.Share(PhaseUse) <= legacy.Share(PhaseManufacturing) {
		t.Errorf("energy-hungry device should be use-dominated: %v vs %v",
			legacy.Share(PhaseUse), legacy.Share(PhaseManufacturing))
	}
}

// Property: wall energy scales linearly with the effectiveness factor.
func TestQuickWallEnergyScaling(t *testing.T) {
	f := func(eRaw, pRaw uint8) bool {
		e := float64(eRaw%100) + 1
		pue := 1 + float64(pRaw%50)/100
		u := Usage{Energy: units.KilowattHours(e), Intensity: 300}
		eu, err := PUE(u, pue)
		if err != nil {
			return false
		}
		wall, err := eu.WallUsage()
		if err != nil {
			return false
		}
		return math.Abs(wall.Energy.KilowattHours()-e*pue) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
