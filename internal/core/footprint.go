package core

import (
	"fmt"
	"sort"
	"time"

	"act/internal/storagedb"
	"act/internal/units"
)

// Kind classifies an embodied-footprint line item by the component classes
// of Eq. 3.
type Kind string

// Component kinds.
const (
	KindLogic     Kind = "logic"
	KindDRAM      Kind = "dram"
	KindSSD       Kind = "ssd"
	KindHDD       Kind = "hdd"
	KindPackaging Kind = "packaging"
)

// Item is one line of an embodied-footprint breakdown.
type Item struct {
	Name     string
	Kind     Kind
	Embodied units.CO2Mass
}

// Breakdown is a device's embodied footprint, itemized per IC — the level
// of detail Figure 4 contrasts with opaque LCA totals.
type Breakdown struct {
	Device string
	Items  []Item
}

// Total returns ECF, the device's total embodied carbon footprint (Eq. 3).
func (b Breakdown) Total() units.CO2Mass {
	var sum float64
	for _, it := range b.Items {
		sum += it.Embodied.Grams()
	}
	return units.Grams(sum)
}

// ByKind returns the footprint aggregated per component kind, sorted by
// descending share, the categories of the Figure 4 bars.
func (b Breakdown) ByKind() []Item {
	agg := map[Kind]float64{}
	for _, it := range b.Items {
		agg[it.Kind] += it.Embodied.Grams()
	}
	out := make([]Item, 0, len(agg))
	for k, g := range agg {
		out = append(out, Item{Name: string(k), Kind: k, Embodied: units.Grams(g)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Embodied != out[j].Embodied {
			return out[i].Embodied > out[j].Embodied
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Embodied computes the device's embodied carbon footprint (Eq. 3) with a
// per-component breakdown: every logic die, DRAM module and storage drive
// individually, plus one aggregate packaging item (Nr · Kr).
func Embodied(d *Device) (Breakdown, error) {
	if d == nil {
		return Breakdown{}, fmt.Errorf("core: nil device")
	}
	b := Breakdown{Device: d.name}
	for _, l := range d.logic {
		e, err := l.Embodied()
		if err != nil {
			return Breakdown{}, err
		}
		b.Items = append(b.Items, Item{Name: l.name, Kind: KindLogic, Embodied: e})
	}
	for _, m := range d.dram {
		b.Items = append(b.Items, Item{Name: m.name, Kind: KindDRAM, Embodied: m.Embodied()})
	}
	for _, s := range d.storage {
		kind := KindSSD
		if s.Class() == storagedb.HDD {
			kind = KindHDD
		}
		b.Items = append(b.Items, Item{Name: s.name, Kind: kind, Embodied: s.Embodied()})
	}
	if n := d.ICCount(); n > 0 {
		b.Items = append(b.Items, Item{
			Name:     fmt.Sprintf("packaging (%d ICs)", n),
			Kind:     KindPackaging,
			Embodied: units.CO2Mass(PackagingFootprint.Grams() * float64(n)),
		})
	}
	return b, nil
}

// Usage describes the operational side of an assessment: the energy the
// application run consumes and the carbon intensity of the energy supply
// during use (CIuse).
type Usage struct {
	Energy    units.Energy
	Intensity units.CarbonIntensity
}

// UsageFromPower builds a Usage from an average power draw over the
// application execution time T.
func UsageFromPower(p units.Power, t time.Duration, ci units.CarbonIntensity) Usage {
	return Usage{Energy: p.Over(t), Intensity: ci}
}

// Operational computes OPCF (Eq. 2) for a usage.
func Operational(u Usage) (units.CO2Mass, error) {
	if u.Energy < 0 {
		return 0, fmt.Errorf("core: negative operational energy %v", u.Energy)
	}
	if u.Intensity < 0 {
		return 0, fmt.Errorf("core: negative use-phase carbon intensity %v", u.Intensity)
	}
	return u.Intensity.Emitted(u.Energy), nil
}

// Assessment is the result of an end-to-end footprint evaluation (Eq. 1).
type Assessment struct {
	Device string
	// Operational is OPCF, emissions from energy consumed during the run.
	Operational units.CO2Mass
	// EmbodiedTotal is ECF, the device's full manufacturing footprint.
	EmbodiedTotal units.CO2Mass
	// EmbodiedShare is (T/LT)·ECF, the slice of ECF attributed to the run.
	EmbodiedShare units.CO2Mass
	// Breakdown itemizes EmbodiedTotal per IC.
	Breakdown Breakdown
	// AppTime and Lifetime echo T and LT.
	AppTime  time.Duration
	Lifetime time.Duration
}

// Total returns CF = OPCF + (T/LT)·ECF.
func (a Assessment) Total() units.CO2Mass {
	return units.Grams(a.Operational.Grams() + a.EmbodiedShare.Grams())
}

// Footprint evaluates the full model (Eq. 1) for running an application for
// appTime on the device over its lifetime, with the given usage. The
// embodied footprint is amortized by T/LT; appTime may not exceed the
// lifetime (a run cannot use more than the whole device).
func Footprint(d *Device, u Usage, appTime, lifetime time.Duration) (Assessment, error) {
	if lifetime <= 0 {
		return Assessment{}, fmt.Errorf("core: non-positive lifetime %v", lifetime)
	}
	if appTime < 0 {
		return Assessment{}, fmt.Errorf("core: negative application time %v", appTime)
	}
	if appTime > lifetime {
		return Assessment{}, fmt.Errorf("core: application time %v exceeds lifetime %v", appTime, lifetime)
	}
	op, err := Operational(u)
	if err != nil {
		return Assessment{}, err
	}
	b, err := Embodied(d)
	if err != nil {
		return Assessment{}, err
	}
	total := b.Total()
	share := units.Grams(total.Grams() * (appTime.Seconds() / lifetime.Seconds()))
	return Assessment{
		Device:        d.Name(),
		Operational:   op,
		EmbodiedTotal: total,
		EmbodiedShare: share,
		Breakdown:     b,
		AppTime:       appTime,
		Lifetime:      lifetime,
	}, nil
}

// LifetimeFootprint evaluates the device over its whole lifetime (T = LT):
// the full embodied footprint plus operational emissions for the energy
// consumed across the lifetime.
func LifetimeFootprint(d *Device, u Usage, lifetime time.Duration) (Assessment, error) {
	return Footprint(d, u, lifetime, lifetime)
}
