package core

import (
	"fmt"
	"time"

	"act/internal/units"
)

// This file extends the headline model (Eq. 1) to the four life-cycle
// phases of Figure 3 — manufacturing, transport, use, end-of-life — and to
// the utilization-effectiveness factors of Figure 5 (datacenter PUE,
// mobile battery-charging efficiency). The paper's evaluation focuses on
// manufacturing and use; transport and end-of-life are the remaining 4-6%
// of product environmental reports, modeled here as per-device adders so a
// Device can carry a complete product footprint.

// Phase identifies a hardware life-cycle phase (Figure 3).
type Phase string

// Life-cycle phases.
const (
	PhaseManufacturing Phase = "manufacturing"
	PhaseTransport     Phase = "transport"
	PhaseUse           Phase = "use"
	PhaseEndOfLife     Phase = "end-of-life"
)

// Phases returns the four phases in life-cycle order.
func Phases() []Phase {
	return []Phase{PhaseManufacturing, PhaseTransport, PhaseUse, PhaseEndOfLife}
}

// TransportLeg is one shipment step from fab to end user.
type TransportLeg struct {
	Name string
	// MassKg is the shipped mass (device plus its packaging share).
	MassKg float64
	// DistanceKm is the leg distance.
	DistanceKm float64
	// Mode selects the emission factor.
	Mode TransportMode
}

// TransportMode is a freight mode with a standard emission factor.
type TransportMode string

// Freight modes with GLEC-style emission factors (g CO2 per tonne-km).
const (
	TransportAir  TransportMode = "air"
	TransportSea  TransportMode = "sea"
	TransportRoad TransportMode = "road"
	TransportRail TransportMode = "rail"
)

// gPerTonneKm are representative well-to-wheel freight emission factors.
var gPerTonneKm = map[TransportMode]float64{
	TransportAir:  600,
	TransportSea:  10,
	TransportRoad: 80,
	TransportRail: 25,
}

// Emissions returns the leg's footprint.
func (l TransportLeg) Emissions() (units.CO2Mass, error) {
	factor, ok := gPerTonneKm[l.Mode]
	if !ok {
		return 0, fmt.Errorf("core: unknown transport mode %q", l.Mode)
	}
	if l.MassKg < 0 || l.DistanceKm < 0 {
		return 0, fmt.Errorf("core: transport leg %q has negative mass or distance", l.Name)
	}
	tonneKm := l.MassKg / 1000 * l.DistanceKm
	return units.Grams(factor * tonneKm), nil
}

// EndOfLife describes recycling/disposal processing.
type EndOfLife struct {
	// Processing is the direct footprint of collection and processing.
	Processing units.CO2Mass
	// RecyclingCredit is carbon avoided by recovered materials; it is
	// subtracted, floored at zero net (a device cannot be carbon-negative
	// through disposal in this model).
	RecyclingCredit units.CO2Mass
}

// Net returns the end-of-life net footprint.
func (e EndOfLife) Net() units.CO2Mass {
	n := e.Processing.Grams() - e.RecyclingCredit.Grams()
	if n < 0 {
		n = 0
	}
	return units.Grams(n)
}

// EffectiveUsage extends Usage with the utilization-effectiveness factor
// of Figure 5: a PUE-style multiplier ≥ 1 on delivered energy (datacenter
// power distribution and cooling overheads) or the reciprocal of battery
// charging efficiency for mobile devices.
type EffectiveUsage struct {
	Usage
	// Effectiveness multiplies device energy into wall energy. 1 means no
	// overhead; a typical datacenter PUE is 1.1-1.6; a battery charging
	// path at 85% efficiency is 1/0.85 ≈ 1.18.
	Effectiveness float64
}

// PUE builds an EffectiveUsage from a datacenter PUE.
func PUE(u Usage, pue float64) (EffectiveUsage, error) {
	if pue < 1 {
		return EffectiveUsage{}, fmt.Errorf("core: PUE %v below 1", pue)
	}
	return EffectiveUsage{Usage: u, Effectiveness: pue}, nil
}

// BatteryEfficiency builds an EffectiveUsage from a charging efficiency in
// (0, 1].
func BatteryEfficiency(u Usage, eta float64) (EffectiveUsage, error) {
	if eta <= 0 || eta > 1 {
		return EffectiveUsage{}, fmt.Errorf("core: battery efficiency %v outside (0, 1]", eta)
	}
	return EffectiveUsage{Usage: u, Effectiveness: 1 / eta}, nil
}

// WallUsage returns the usage as seen at the wall: device energy scaled by
// the effectiveness factor.
func (e EffectiveUsage) WallUsage() (Usage, error) {
	if e.Effectiveness < 1 {
		return Usage{}, fmt.Errorf("core: effectiveness %v below 1", e.Effectiveness)
	}
	return Usage{
		Energy:    units.Energy(e.Energy.Joules() * e.Effectiveness),
		Intensity: e.Intensity,
	}, nil
}

// LifeCycle is a device's complete product footprint input.
type LifeCycle struct {
	Device    *Device
	Transport []TransportLeg
	EndOfLife EndOfLife
	// Use is the lifetime operational usage at the wall.
	Use EffectiveUsage
	// Lifetime is LT.
	Lifetime time.Duration
}

// PhaseReport is a complete product footprint split by phase (the shape of
// the paper's Figure 1 pies).
type PhaseReport struct {
	Device string
	Phases map[Phase]units.CO2Mass
}

// Total sums the phases in life-cycle order. The fixed order matters:
// float addition is not associative, and a map-order sum makes the total
// (and every phase share derived from it) differ across runs in the last
// ulp — the cross-surface conformance harness compares result documents
// byte-for-byte and caught exactly that.
func (r PhaseReport) Total() units.CO2Mass {
	var g float64
	for _, p := range Phases() {
		g += r.Phases[p].Grams()
	}
	return units.Grams(g)
}

// Share returns one phase's fraction of the total (0 if the total is 0).
func (r PhaseReport) Share(p Phase) float64 {
	t := r.Total().Grams()
	if t == 0 {
		return 0
	}
	return r.Phases[p].Grams() / t
}

// Assess evaluates the complete life cycle: manufacturing from the BOM,
// transport from the legs, use from the wall-side usage, end-of-life net
// of recycling credits.
func (lc LifeCycle) Assess() (PhaseReport, error) {
	if lc.Device == nil {
		return PhaseReport{}, fmt.Errorf("core: life cycle without a device")
	}
	if lc.Lifetime <= 0 {
		return PhaseReport{}, fmt.Errorf("core: non-positive lifetime %v", lc.Lifetime)
	}
	b, err := Embodied(lc.Device)
	if err != nil {
		return PhaseReport{}, err
	}
	var transport float64
	for _, leg := range lc.Transport {
		m, err := leg.Emissions()
		if err != nil {
			return PhaseReport{}, err
		}
		transport += m.Grams()
	}
	wall, err := lc.Use.WallUsage()
	if err != nil {
		return PhaseReport{}, err
	}
	op, err := Operational(wall)
	if err != nil {
		return PhaseReport{}, err
	}
	return PhaseReport{
		Device: lc.Device.Name(),
		Phases: map[Phase]units.CO2Mass{
			PhaseManufacturing: b.Total(),
			PhaseTransport:     units.Grams(transport),
			PhaseUse:           op,
			PhaseEndOfLife:     lc.EndOfLife.Net(),
		},
	}, nil
}
