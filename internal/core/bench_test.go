package core

import (
	"testing"
	"time"

	"act/internal/fab"
	"act/internal/intensity"
	"act/internal/memdb"
	"act/internal/storagedb"
	"act/internal/units"
)

// benchDevice builds a phone-class BOM once for the benchmarks.
func benchDevice(b *testing.B) *Device {
	b.Helper()
	f, err := fab.New(fab.Node7)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDevice("phone")
	if err != nil {
		b.Fatal(err)
	}
	soc, err := NewLogic("soc", units.MM2(98.5), f, 1)
	if err != nil {
		b.Fatal(err)
	}
	ram, err := NewDRAM("ram", memdb.LPDDR4, 4)
	if err != nil {
		b.Fatal(err)
	}
	ssd, err := NewStorage("flash", storagedb.NANDV3TLC, 64)
	if err != nil {
		b.Fatal(err)
	}
	return d.AddLogic(soc).AddDRAM(ram).AddStorage(ssd).AddExtraICs(10)
}

func BenchmarkEmbodied(b *testing.B) {
	d := benchDevice(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Embodied(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFootprint(b *testing.B) {
	d := benchDevice(b)
	u := UsageFromPower(units.Watts(3), time.Hour, intensity.USGrid)
	lt := units.Years(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Footprint(d, u, time.Hour, lt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLifeCycleAssess(b *testing.B) {
	d := benchDevice(b)
	u := Usage{Energy: units.KilowattHours(20), Intensity: intensity.USGrid}
	eu, err := BatteryEfficiency(u, 0.85)
	if err != nil {
		b.Fatal(err)
	}
	lc := LifeCycle{
		Device: d,
		Transport: []TransportLeg{
			{Name: "air", MassKg: 0.3, DistanceKm: 9000, Mode: TransportAir},
		},
		EndOfLife: EndOfLife{Processing: units.Grams(400)},
		Use:       eu,
		Lifetime:  units.Years(3),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lc.Assess(); err != nil {
			b.Fatal(err)
		}
	}
}
