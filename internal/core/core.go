// Package core implements the ACT architectural carbon footprint model
// (Section 3.1 of the paper). It combines operational emissions from
// running software with embodied emissions from manufacturing the hardware:
//
//	CF   = OPCF + (T/LT)·ECF                  (Eq. 1)
//	OPCF = CIuse × Energy                     (Eq. 2)
//	ECF  = Nr·Kr + Σ_r E_r                    (Eq. 3)  r ∈ {SoC, DRAM, SSD, HDD}
//	E_SoC  = Area × CPA                       (Eq. 4)  CPA from internal/fab
//	E_DRAM = CPS_DRAM × Capacity_DRAM         (Eq. 6)  CPS from internal/memdb
//	E_HDD  = CPS_HDD × Capacity_HDD           (Eq. 7)  CPS from internal/storagedb
//	E_SSD  = CPS_SSD × Capacity_SSD           (Eq. 8)
//
// A Device is the bill of materials: logic dies with their fabs, DRAM
// modules, and storage drives. Embodied returns the per-IC breakdown that
// distinguishes ACT from opaque LCA totals (Figure 4); Footprint applies
// the lifetime amortization of Eq. 1.
//
// The embodied model covers the direct impact of semiconductor fabrication;
// secondary overheads (building fabs, EUV machines) are excluded, so, as
// the paper notes, totals are a lower bound.
package core

import (
	"fmt"

	"act/internal/acterr"
	"act/internal/fab"
	"act/internal/memdb"
	"act/internal/storagedb"
	"act/internal/units"
)

// PackagingFootprint is Kr, the per-IC packaging footprint (0.15 kg CO2,
// from SPIL's environmental reporting).
const PackagingFootprint units.CO2Mass = 150

// Logic is an application processor, SoC, co-processor or any other logic
// die manufactured in a characterized process.
type Logic struct {
	name  string
	area  units.Area
	fab   *fab.Fab
	count int
}

// NewLogic describes count identical logic dies of the given area
// manufactured in f.
func NewLogic(name string, area units.Area, f *fab.Fab, count int) (*Logic, error) {
	if name == "" {
		return nil, acterr.Invalid("name", "logic component needs a name")
	}
	if area <= 0 {
		return nil, acterr.Invalid("area_mm2", "logic %q: non-positive die area %v", name, area)
	}
	if f == nil {
		return nil, fmt.Errorf("core: logic %q: nil fab", name)
	}
	if count <= 0 {
		return nil, acterr.Invalid("count", "logic %q: non-positive count %d", name, count)
	}
	return &Logic{name: name, area: area, fab: f, count: count}, nil
}

// Name returns the component name.
func (l *Logic) Name() string { return l.name }

// Area returns the per-die area.
func (l *Logic) Area() units.Area { return l.area }

// Fab returns the manufacturing fab.
func (l *Logic) Fab() *fab.Fab { return l.fab }

// Count returns the number of identical dies.
func (l *Logic) Count() int { return l.count }

// Embodied returns the embodied carbon of all dies, excluding packaging.
func (l *Logic) Embodied() (units.CO2Mass, error) {
	one, err := l.fab.Embodied(l.area)
	if err != nil {
		return 0, fmt.Errorf("core: logic %q: %w", l.name, err)
	}
	return units.CO2Mass(one.Grams() * float64(l.count)), nil
}

// DRAM is a DRAM module of a characterized technology.
type DRAM struct {
	name     string
	entry    memdb.Entry
	capacity units.Capacity
}

// NewDRAM describes a DRAM module.
func NewDRAM(name string, tech memdb.Technology, capacity units.Capacity) (*DRAM, error) {
	if name == "" {
		return nil, acterr.Invalid("name", "DRAM component needs a name")
	}
	if capacity <= 0 {
		return nil, acterr.Invalid("capacity_gb", "DRAM %q: non-positive capacity %v", name, capacity)
	}
	entry, err := memdb.Lookup(tech)
	if err != nil {
		return nil, acterr.Prefix("technology", fmt.Errorf("DRAM %q: %w", name, err))
	}
	return &DRAM{name: name, entry: entry, capacity: capacity}, nil
}

// Name returns the component name.
func (d *DRAM) Name() string { return d.name }

// Technology returns the characterized DRAM technology.
func (d *DRAM) Technology() memdb.Entry { return d.entry }

// Capacity returns the module capacity.
func (d *DRAM) Capacity() units.Capacity { return d.capacity }

// Embodied returns the embodied carbon of the module, excluding packaging.
func (d *DRAM) Embodied() units.CO2Mass { return d.entry.CPS.For(d.capacity) }

// Storage is an SSD or HDD of a characterized technology.
type Storage struct {
	name     string
	entry    storagedb.Entry
	capacity units.Capacity
}

// NewStorage describes a storage drive.
func NewStorage(name string, tech storagedb.Technology, capacity units.Capacity) (*Storage, error) {
	if name == "" {
		return nil, acterr.Invalid("name", "storage component needs a name")
	}
	if capacity <= 0 {
		return nil, acterr.Invalid("capacity_gb", "storage %q: non-positive capacity %v", name, capacity)
	}
	entry, err := storagedb.Lookup(tech)
	if err != nil {
		return nil, acterr.Prefix("technology", fmt.Errorf("storage %q: %w", name, err))
	}
	return &Storage{name: name, entry: entry, capacity: capacity}, nil
}

// Name returns the component name.
func (s *Storage) Name() string { return s.name }

// Technology returns the characterized storage technology.
func (s *Storage) Technology() storagedb.Entry { return s.entry }

// Capacity returns the drive capacity.
func (s *Storage) Capacity() units.Capacity { return s.capacity }

// Class reports whether the drive is an SSD or an HDD.
func (s *Storage) Class() storagedb.Class { return s.entry.Class }

// Embodied returns the embodied carbon of the drive, excluding packaging.
func (s *Storage) Embodied() units.CO2Mass { return s.entry.CPS.For(s.capacity) }

// Device is a hardware platform's bill of materials: the Nr integrated
// circuits whose embodied emissions Eq. 3 aggregates.
type Device struct {
	name    string
	logic   []*Logic
	dram    []*DRAM
	storage []*Storage
	// extraICs counts ICs that contribute packaging (part of Nr) but whose
	// die footprint is modeled elsewhere or negligible — e.g. the myriad
	// small power-management and RF chips on a phone board.
	extraICs int
}

// NewDevice creates an empty device. Components are attached with the Add
// methods, which return the device for chaining.
func NewDevice(name string) (*Device, error) {
	if name == "" {
		return nil, acterr.Invalid("name", "device needs a name")
	}
	return &Device{name: name}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// AddLogic attaches a logic component.
func (d *Device) AddLogic(l *Logic) *Device {
	d.logic = append(d.logic, l)
	return d
}

// AddDRAM attaches a DRAM module.
func (d *Device) AddDRAM(m *DRAM) *Device {
	d.dram = append(d.dram, m)
	return d
}

// AddStorage attaches a storage drive.
func (d *Device) AddStorage(s *Storage) *Device {
	d.storage = append(d.storage, s)
	return d
}

// AddExtraICs counts n additional packaged ICs not modeled individually.
func (d *Device) AddExtraICs(n int) *Device {
	if n > 0 {
		d.extraICs += n
	}
	return d
}

// Logic returns the attached logic components.
func (d *Device) Logic() []*Logic { return d.logic }

// DRAM returns the attached DRAM modules.
func (d *Device) DRAM() []*DRAM { return d.dram }

// Storage returns the attached storage drives.
func (d *Device) Storage() []*Storage { return d.storage }

// ICCount returns Nr, the number of packaged ICs on the device.
func (d *Device) ICCount() int {
	n := d.extraICs + len(d.dram) + len(d.storage)
	for _, l := range d.logic {
		n += l.count
	}
	return n
}
