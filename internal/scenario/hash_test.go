package scenario

import (
	"strings"
	"testing"
)

func TestHashDeterministic(t *testing.T) {
	a, b := Example(), Example()
	if a.Hash() != b.Hash() {
		t.Error("identical specs hash differently")
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(a.Hash()))
	}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Error("identical specs key differently")
	}
}

func TestHashNormalizesDefaults(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:  "x",
			Logic: []LogicSpec{{Name: "l", AreaMM2: 10, Node: "7nm"}},
			Usage: UsageSpec{PowerW: 1, AppHours: 24},
		}
	}
	want := base().Hash()

	explicit := base()
	explicit.Version = 1
	explicit.Logic[0].Count = 1
	explicit.Logic[0].Node = " 7NM "
	explicit.Logic[0].Fab = &FabSpec{}
	explicit.Usage.IntensityGPerKWh = 300
	explicit.LifetimeYears = 3
	if got := explicit.Hash(); got != want {
		t.Error("explicitly spelled defaults hash differently from omitted defaults")
	}
	if explicit.CanonicalKey() != base().CanonicalKey() {
		t.Error("explicitly spelled defaults key differently from omitted defaults")
	}
}

func TestHashDiscriminates(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:  "x",
			Logic: []LogicSpec{{Name: "l", AreaMM2: 10, Node: "7nm"}},
			Usage: UsageSpec{PowerW: 1, AppHours: 24},
		}
	}
	want := base().Hash()
	mutate := map[string]func(*Spec){
		"name":      func(s *Spec) { s.Name = "y" },
		"area":      func(s *Spec) { s.Logic[0].AreaMM2 = 11 },
		"node":      func(s *Spec) { s.Logic[0].Node = "5nm" },
		"count":     func(s *Spec) { s.Logic[0].Count = 2 },
		"fab yield": func(s *Spec) { s.Logic[0].Fab = &FabSpec{Yield: 0.9} },
		"dram":      func(s *Spec) { s.DRAM = []DRAMSpec{{Name: "d", Technology: "lpddr4", CapacityGB: 4}} },
		"storage":   func(s *Spec) { s.Storage = []StorageSpec{{Name: "s", Technology: "v3-nand-tlc", CapacityGB: 64}} },
		"extra ics": func(s *Spec) { s.ExtraICs = 1 },
		"power":     func(s *Spec) { s.Usage.PowerW = 2 },
		"app hours": func(s *Spec) { s.Usage.AppHours = 48 },
		"intensity": func(s *Spec) { s.Usage.IntensityGPerKWh = 41 },
		"pue":       func(s *Spec) { s.Usage.PUE = 1.3 },
		"battery":   func(s *Spec) { s.Usage.BatteryEfficiency = 0.85 },
		"transport": func(s *Spec) { s.Transport = []TransportSpec{{Name: "t", MassKg: 1, DistanceKm: 2, Mode: "air"}} },
		"eol":       func(s *Spec) { s.EndOfLife = &EndOfLifeSpec{ProcessingKg: 0.1} },
		"lifetime":  func(s *Spec) { s.LifetimeYears = 5 },
	}
	wantKey := base().CanonicalKey()
	for name, f := range mutate {
		s := base()
		f(s)
		if s.Hash() == want {
			t.Errorf("mutating %s does not change the hash", name)
		}
		if s.CanonicalKey() == wantKey {
			t.Errorf("mutating %s does not change the canonical key", name)
		}
	}
}

// TestHashInjectiveAcrossFieldBoundaries guards the length-prefixed
// encoding: shifting bytes between adjacent string fields must change the
// digest.
func TestHashInjectiveAcrossFieldBoundaries(t *testing.T) {
	a := &Spec{Name: "ab", Logic: []LogicSpec{{Name: "c", AreaMM2: 1, Node: "7nm"}}, Usage: UsageSpec{PowerW: 1, AppHours: 1}}
	b := &Spec{Name: "a", Logic: []LogicSpec{{Name: "bc", AreaMM2: 1, Node: "7nm"}}, Usage: UsageSpec{PowerW: 1, AppHours: 1}}
	if a.Hash() == b.Hash() {
		t.Error("boundary shift collides")
	}
}

func TestHashDoesNotMutate(t *testing.T) {
	s, err := Parse(strings.NewReader(`{"name":"x","logic":[{"name":"l","area_mm2":1,"node":"7nm"}],"usage":{"power_w":1,"app_hours":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Hash()
	if s.Logic[0].Count != 0 || s.LifetimeYears != 0 || s.Usage.IntensityGPerKWh != 0 {
		t.Error("Hash mutated the spec while normalizing defaults")
	}
}

func BenchmarkHash(b *testing.B) {
	s := Example()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Hash()
	}
}

func BenchmarkCanonicalKey(b *testing.B) {
	s := Example()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.CanonicalKey()
	}
}
