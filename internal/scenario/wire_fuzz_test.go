package scenario

import (
	"encoding/json"
	"testing"
)

// fuzzSeeds are the shared corpus for the wire-format fuzzers: the two
// documented sample scenarios, the generated Example, and a handful of
// hostile shapes (wrong top-level types, absurd numerics, truncations).
func fuzzSeeds(f *testing.F) {
	seeds := []string{
		sample,
		lifecycleSample,
		`{}`,
		`{"version":1,"name":"x"}`,
		`{"version":2,"name":"x"}`,
		`{"name":"x","logic":[{"name":"l","area_mm2":1e308,"node":"7nm"}]}`,
		`{"name":"x","dram":[{"name":"d","technology":"lpddr4","capacity_gb":1e-320}]}`,
		`{"name":"\u0000","usage":{"power_w":1,"app_hours":1}}`,
		`[{"name":"x"}]`,
		`null`,
		`{"name":"x",`,
	}
	if data, err := Marshal(Example()); err == nil {
		seeds = append(seeds, string(data))
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
}

// FuzzScenarioUnmarshal asserts the wire decoder never panics on arbitrary
// bytes, and that anything it accepts survives a Marshal/Unmarshal round
// trip without changing identity — the property the footprint cache and
// the golden wire tests both lean on.
func FuzzScenarioUnmarshal(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(spec)
		if err != nil {
			t.Fatalf("accepted scenario failed to marshal: %v", err)
		}
		again, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("marshal output failed to re-parse: %v\n%s", err, out)
		}
		if spec.CanonicalKey() != again.CanonicalKey() {
			t.Errorf("canonical key changed across round trip:\n before %q\n after  %q",
				spec.CanonicalKey(), again.CanonicalKey())
		}
	})
}

// FuzzCanonicalKey asserts the cache key is deterministic, non-empty for
// every parseable scenario, and consistent with the content hash: two
// computations of either never disagree with themselves.
func FuzzCanonicalKey(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Unmarshal(data)
		if err != nil {
			return
		}
		k1, k2 := spec.CanonicalKey(), spec.CanonicalKey()
		if k1 != k2 {
			t.Fatalf("CanonicalKey not deterministic: %q vs %q", k1, k2)
		}
		if k1 == "" {
			t.Fatal("CanonicalKey empty for a parseable scenario")
		}
		if spec.HashKey() != spec.HashKey() {
			t.Fatal("HashKey not deterministic")
		}
		// The key must be derived from content, not pointer identity: an
		// independently decoded copy of the same bytes shares the key.
		var clone *Spec
		if out, err := Marshal(spec); err == nil {
			if clone, err = Unmarshal(out); err == nil && clone.CanonicalKey() != k1 {
				t.Errorf("independently decoded copy has a different key")
			}
		}
		_ = clone
	})
}

// TestFuzzSeedsParse keeps the seed corpus honest: the well-formed seeds
// must keep parsing as the format evolves.
func TestFuzzSeedsParse(t *testing.T) {
	for _, src := range []string{sample, lifecycleSample} {
		if _, err := Unmarshal([]byte(src)); err != nil {
			t.Errorf("seed scenario no longer parses: %v", err)
		}
	}
	data, err := json.Marshal(Example())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data); err != nil {
		t.Errorf("Example() no longer parses: %v", err)
	}
}
