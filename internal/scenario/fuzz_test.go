package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzParseAndAssess asserts that arbitrary scenario JSON never panics the
// parser, the device builder, or the assessor, and that any scenario that
// assesses successfully reports non-negative footprints.
func FuzzParseAndAssess(f *testing.F) {
	seeds := []string{
		sample,
		lifecycleSample,
		`{}`,
		`{"name":"x"}`,
		`{"name":"x","logic":[{"name":"l","area_mm2":1e308,"node":"7nm"}],"usage":{"power_w":1,"app_hours":1}}`,
		`{"name":"x","dram":[{"name":"d","technology":"lpddr4","capacity_gb":-1}]}`,
		`{"name":"x","usage":{"power_w":-5,"app_hours":1}}`,
		`[1,2,3]`,
		`"just a string"`,
	}
	if data, err := json.Marshal(Example()); err == nil {
		seeds = append(seeds, string(data))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		a, err := spec.Assess()
		if err == nil {
			if a.Operational < 0 || a.EmbodiedTotal < 0 || a.EmbodiedShare < 0 {
				t.Errorf("negative footprint from %q: %+v", input, a)
			}
		}
		if spec.HasLifeCycle() {
			if r, err := spec.LifeCycle(); err == nil && r.Total() < 0 {
				t.Errorf("negative life-cycle total from %q", input)
			}
		}
	})
}
