package scenario

import (
	"math"
	"strings"
	"testing"

	"act/internal/core"
)

const lifecycleSample = `{
  "name": "phone",
  "logic": [{"name": "soc", "area_mm2": 98.5, "node": "7nm"}],
  "usage": {"power_w": 3, "app_hours": 1000, "battery_efficiency": 0.8},
  "transport": [
    {"name": "air", "mass_kg": 0.3, "distance_km": 9000, "mode": "air"}
  ],
  "end_of_life": {"processing_kg": 0.4, "recycling_credit_kg": 0.1},
  "lifetime_years": 3
}`

func TestUsageEffectiveness(t *testing.T) {
	// Battery efficiency scales operational emissions by 1/eta.
	s, err := Parse(strings.NewReader(lifecycleSample))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Assess()
	if err != nil {
		t.Fatal(err)
	}
	// 3 W x 1000 h = 3 kWh device-side; /0.8 = 3.75 kWh wall; x300 g.
	if math.Abs(a.Operational.Grams()-1125) > 1e-6 {
		t.Errorf("operational = %v, want 1125 g", a.Operational)
	}

	// PUE path.
	pue := strings.ReplaceAll(lifecycleSample, `"battery_efficiency": 0.8`, `"pue": 1.5`)
	s, err = Parse(strings.NewReader(pue))
	if err != nil {
		t.Fatal(err)
	}
	a, err = s.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Operational.Grams()-3*1.5*300) > 1e-6 {
		t.Errorf("PUE operational = %v, want 1350 g", a.Operational)
	}

	// Both set: rejected.
	both := strings.ReplaceAll(lifecycleSample,
		`"battery_efficiency": 0.8`, `"battery_efficiency": 0.8, "pue": 1.5`)
	s, err = Parse(strings.NewReader(both))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assess(); err == nil {
		t.Error("pue + battery_efficiency: expected error")
	}

	// Invalid values surface.
	badPUE := strings.ReplaceAll(lifecycleSample, `"battery_efficiency": 0.8`, `"pue": 0.5`)
	s, _ = Parse(strings.NewReader(badPUE))
	if _, err := s.Assess(); err == nil {
		t.Error("PUE < 1: expected error")
	}
}

func TestLifeCycleReport(t *testing.T) {
	s, err := Parse(strings.NewReader(lifecycleSample))
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasLifeCycle() {
		t.Fatal("HasLifeCycle() = false")
	}
	r, err := s.LifeCycle()
	if err != nil {
		t.Fatal(err)
	}
	// Transport: 0.3 kg x 9000 km x 600 g/t-km = 1620 g.
	if math.Abs(r.Phases[core.PhaseTransport].Grams()-1620) > 1e-6 {
		t.Errorf("transport = %v, want 1620 g", r.Phases[core.PhaseTransport])
	}
	// End of life: 400 - 100 = 300 g.
	if math.Abs(r.Phases[core.PhaseEndOfLife].Grams()-300) > 1e-6 {
		t.Errorf("EOL = %v, want 300 g", r.Phases[core.PhaseEndOfLife])
	}
	// Use matches the effectiveness-scaled assessment.
	if math.Abs(r.Phases[core.PhaseUse].Grams()-1125) > 1e-6 {
		t.Errorf("use = %v, want 1125 g", r.Phases[core.PhaseUse])
	}
	if r.Phases[core.PhaseManufacturing] <= 0 {
		t.Error("manufacturing phase empty")
	}
}

func TestLifeCycleBadTransportMode(t *testing.T) {
	bad := strings.ReplaceAll(lifecycleSample, `"mode": "air"`, `"mode": "catapult"`)
	s, err := Parse(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LifeCycle(); err == nil {
		t.Error("bad transport mode: expected error")
	}
}

func TestNoLifeCycleWithoutData(t *testing.T) {
	s, err := Parse(strings.NewReader(`{
	  "name": "x",
	  "logic": [{"name": "l", "area_mm2": 10, "node": "7nm"}],
	  "usage": {"power_w": 1, "app_hours": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.HasLifeCycle() {
		t.Error("HasLifeCycle() = true without transport/EOL data")
	}
}
