// Canonical scenario hashing. actd's footprint cache is keyed on
// Spec.CanonicalKey, so the definition of "the same scenario" lives here
// next to the wire format: two specs key equal iff they assess identically
// under the documented defaults. The encoder appends a fixed-order binary
// form of every field into one buffer — no JSON round trip — because the
// cache-hit path pays this cost on every request and must stay far cheaper
// than a model evaluation. Spec.Hash (SHA-256 of the same encoding) is the
// printable canonical identity.

package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"strings"
)

// CanonicalKey returns the canonical encoding of the scenario as an opaque
// string — the form actd's cache uses as its map key (Go's map hashes it
// natively, far faster than a cryptographic digest on the per-request hit
// path). The documented defaults are made explicit before encoding
// (version 1, die count 1, 3-year lifetime, US-grid use intensity,
// case-insensitive technology names), so specs that differ only in how
// they spell a default — `"count": 1` versus omitting it — key equal. That
// is what lets a fleet batch of identical BoMs collapse to one evaluation.
func (s *Spec) CanonicalKey() string {
	return string(s.appendCanonical(make([]byte, 0, 512)))
}

// HashKey returns the canonical scenario hash: the SHA-256 of the
// canonical encoding, the stable printable identity for logs and ETags.
func (s *Spec) HashKey() [sha256.Size]byte {
	return sha256.Sum256(s.appendCanonical(make([]byte, 0, 512)))
}

// appendCanonical appends the fixed-order, length-prefixed binary encoding
// of the spec with defaults normalized.
func (s *Spec) appendCanonical(b []byte) []byte {
	b = appendStr(b, "act/scenario")
	version := s.Version
	if version == 0 {
		version = Version
	}
	b = appendInt(b, version)
	b = appendStr(b, s.Name)

	b = appendInt(b, len(s.Logic))
	for _, l := range s.Logic {
		b = appendStr(b, l.Name)
		b = appendF64(b, l.AreaMM2)
		b = appendStr(b, canonName(l.Node))
		count := l.Count
		if count == 0 {
			count = 1
		}
		b = appendInt(b, count)
		// A nil fab spec and an all-zero fab spec both mean "paper
		// defaults", so they encode identically.
		var f FabSpec
		if l.Fab != nil {
			f = *l.Fab
		}
		b = appendF64(b, f.CarbonIntensity)
		b = appendF64(b, f.Abatement)
		b = appendF64(b, f.Yield)
	}

	b = appendInt(b, len(s.DRAM))
	for _, m := range s.DRAM {
		b = appendStr(b, m.Name)
		b = appendStr(b, canonName(m.Technology))
		b = appendF64(b, m.CapacityGB)
	}

	b = appendInt(b, len(s.Storage))
	for _, st := range s.Storage {
		b = appendStr(b, st.Name)
		b = appendStr(b, canonName(st.Technology))
		b = appendF64(b, st.CapacityGB)
	}

	b = appendInt(b, s.ExtraICs)

	b = appendF64(b, s.Usage.PowerW)
	b = appendF64(b, s.Usage.AppHours)
	intensity := s.Usage.IntensityGPerKWh
	if intensity == 0 {
		intensity = 300 // US grid, the scenario default
	}
	b = appendF64(b, intensity)
	b = appendF64(b, s.Usage.PUE)
	b = appendF64(b, s.Usage.BatteryEfficiency)

	b = appendInt(b, len(s.Transport))
	for _, leg := range s.Transport {
		b = appendStr(b, leg.Name)
		b = appendF64(b, leg.MassKg)
		b = appendF64(b, leg.DistanceKm)
		b = appendStr(b, canonName(leg.Mode))
	}

	if s.EndOfLife != nil {
		b = appendInt(b, 1)
		b = appendF64(b, s.EndOfLife.ProcessingKg)
		b = appendF64(b, s.EndOfLife.RecyclingCreditKg)
	} else {
		b = appendInt(b, 0)
	}

	lifetime := s.LifetimeYears
	if lifetime == 0 {
		lifetime = 3 // LT default
	}
	b = appendF64(b, lifetime)

	return b
}

// Hash returns HashKey hex-encoded — the printable canonical hash for
// logs, ETags and debugging.
func (s *Spec) Hash() string {
	key := s.HashKey()
	return hex.EncodeToString(key[:])
}

// canonName normalizes a technology/node/mode name the way the parsers do:
// surrounding space stripped, case folded.
func canonName(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// The appenders emit length-prefixed fields, making the encoding
// injective: ("ab","c") and ("a","bc") digest differently.

func appendStr(b []byte, s string) []byte {
	b = appendInt(b, len(s))
	return append(b, s...)
}

func appendInt(b []byte, v int) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(int64(v)))
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
