package scenario

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"act/internal/acterr"
)

// exampleWire is the frozen version-1 wire form of Example(). If this test
// breaks, the wire format changed — that is an API break for every stored
// scenario and for actd clients, and needs a version bump, not a golden
// update.
const exampleWire = `{
  "version": 1,
  "name": "mobile-phone",
  "logic": [
    {
      "name": "application SoC",
      "area_mm2": 98.5,
      "node": "7nm",
      "count": 1
    },
    {
      "name": "board ICs",
      "area_mm2": 30,
      "node": "28nm",
      "count": 12
    }
  ],
  "dram": [
    {
      "name": "LPDDR4",
      "technology": "lpddr4",
      "capacity_gb": 4
    }
  ],
  "storage": [
    {
      "name": "flash",
      "technology": "v3-nand-tlc",
      "capacity_gb": 64
    }
  ],
  "usage": {
    "power_w": 3,
    "app_hours": 876.6,
    "intensity_g_per_kwh": 300,
    "battery_efficiency": 0.85
  },
  "transport": [
    {
      "name": "fab to assembly",
      "mass_kg": 0.2,
      "distance_km": 1500,
      "mode": "road"
    },
    {
      "name": "assembly to market",
      "mass_kg": 0.3,
      "distance_km": 9000,
      "mode": "air"
    }
  ],
  "end_of_life": {
    "processing_kg": 0.4,
    "recycling_credit_kg": 0.1
  },
  "lifetime_years": 3
}
`

func TestMarshalGolden(t *testing.T) {
	data, err := Marshal(Example())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != exampleWire {
		t.Errorf("wire format drifted:\ngot:\n%s\nwant:\n%s", data, exampleWire)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	orig := Example()
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	// Unmarshal normalizes the version; do the same to the original.
	want := *orig
	want.Version = Version
	if !reflect.DeepEqual(&want, back) {
		t.Errorf("round trip changed the spec:\ngot  %+v\nwant %+v", back, &want)
	}
	// And the re-marshal is byte-identical: the format is a fixed point.
	again, err := Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("Marshal(Unmarshal(Marshal(x))) != Marshal(x)")
	}
}

func TestVersionDefaultsTo1(t *testing.T) {
	s, err := Parse(strings.NewReader(`{"name":"x","logic":[{"name":"l","area_mm2":1,"node":"7nm"}],"usage":{"power_w":1,"app_hours":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != 1 {
		t.Errorf("missing version parsed as %d, want 1", s.Version)
	}
	s2, err := Parse(strings.NewReader(`{"version":1,"name":"x","logic":[{"name":"l","area_mm2":1,"node":"7nm"}],"usage":{"power_w":1,"app_hours":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != 1 {
		t.Errorf("explicit version parsed as %d", s2.Version)
	}
}

func TestUnknownVersionTypedError(t *testing.T) {
	for _, v := range []string{"2", "-1", "99"} {
		_, err := Parse(strings.NewReader(`{"version":` + v + `,"name":"x"}`))
		if err == nil {
			t.Fatalf("version %s: expected error", v)
		}
		if !errors.Is(err, acterr.ErrUnsupportedVersion) {
			t.Errorf("version %s: not an ErrUnsupportedVersion: %v", v, err)
		}
		var uv *acterr.UnsupportedVersionError
		if !errors.As(err, &uv) {
			t.Errorf("version %s: not an UnsupportedVersionError: %v", v, err)
		}
	}
}

func TestParseRequestSingle(t *testing.T) {
	specs, batch, err := ParseRequest(strings.NewReader(exampleWire))
	if err != nil {
		t.Fatal(err)
	}
	if batch {
		t.Error("single object reported as batch")
	}
	if len(specs) != 1 || specs[0].Name != "mobile-phone" {
		t.Errorf("specs = %+v", specs)
	}
}

func TestParseRequestBatch(t *testing.T) {
	body := "[" + strings.TrimSpace(exampleWire) + ",\n" + strings.TrimSpace(exampleWire) + "]"
	specs, batch, err := ParseRequest(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if !batch {
		t.Error("array not reported as batch")
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs, want 2", len(specs))
	}
}

func TestParseRequestErrors(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"empty body", "   "},
		{"empty batch", "[]"},
		{"bad json", "{nope"},
		{"bad batch json", "[{nope"},
		{"unknown field", `{"name":"x","logics":[]}`},
	}
	for _, c := range cases {
		if _, _, err := ParseRequest(strings.NewReader(c.body)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseRequestBatchIndexInFieldPath(t *testing.T) {
	body := `[{"version":1,"name":"x","usage":{"power_w":1,"app_hours":1}},{"version":7,"name":"y"}]`
	_, batch, err := ParseRequest(strings.NewReader(body))
	if !batch || err == nil {
		t.Fatalf("batch=%v err=%v", batch, err)
	}
	var inv *acterr.InvalidSpecError
	if !errors.As(err, &inv) {
		t.Fatalf("no InvalidSpecError in %v", err)
	}
	if !strings.HasPrefix(inv.Field, "[1]") {
		t.Errorf("field path %q does not carry batch index [1]", inv.Field)
	}
}
