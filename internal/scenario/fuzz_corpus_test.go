package scenario

// The committed seed corpus under testdata/fuzz is the regression net for
// wire-envelope hazards: every version-envelope shape that once mattered
// (or plausibly will) is checked into the fuzzers' seed sets, and this file
// pins each seed to its expected decode outcome. Without the pin, a seed
// that goes stale — the format drifts under it, or the file rots — keeps
// "passing" by silently no longer exercising the hazard it was written for.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"act/internal/acterr"
)

// loadFuzzSeed decodes a single-argument "go test fuzz v1" corpus file
// into the raw bytes the fuzz target receives.
func loadFuzzSeed(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading seed: %v", err)
	}
	lines := strings.SplitN(string(data), "\n", 3)
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		t.Fatalf("%s: not a go test fuzz v1 corpus file", path)
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimSuffix(strings.TrimPrefix(body, "[]byte("), ")")
	s, err := strconv.Unquote(body)
	if err != nil {
		t.Fatalf("%s: unquoting seed body: %v", path, err)
	}
	return []byte(s)
}

// TestVersionEnvelopeSeedCorpus: each committed FuzzScenarioUnmarshal seed
// decodes (or refuses to) exactly as the envelope contract promises.
func TestVersionEnvelopeSeedCorpus(t *testing.T) {
	cases := []struct {
		file string
		// wantOK means Unmarshal must accept the seed.
		wantOK bool
		// wantVersionErr means the rejection must carry the typed
		// ErrUnsupportedVersion identity, not just any parse failure.
		wantVersionErr bool
	}{
		{"version-explicit-1", true, false},
		{"version-future-2", false, true},
		{"version-negative", false, true},
		{"version-huge", false, true},
		{"version-string-typed", false, false},
		{"envelope-unknown-field", false, false},
		{"envelope-truncated", false, false},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			data := loadFuzzSeed(t, filepath.Join("testdata", "fuzz", "FuzzScenarioUnmarshal", c.file))
			spec, err := Unmarshal(data)
			if c.wantOK {
				if err != nil {
					t.Fatalf("seed no longer accepted: %v", err)
				}
				if spec.Version != Version {
					t.Errorf("accepted seed normalized to version %d, want %d", spec.Version, Version)
				}
				return
			}
			if err == nil {
				t.Fatal("seed accepted; it pins a rejection")
			}
			if got := errors.Is(err, acterr.ErrUnsupportedVersion); got != c.wantVersionErr {
				t.Errorf("ErrUnsupportedVersion = %v, want %v (err: %v)", got, c.wantVersionErr, err)
			}
		})
	}
}

// TestCanonicalKeyCorpusMirrors keeps the FuzzCanonicalKey seed set in sync
// with its FuzzScenarioUnmarshal counterparts: both fuzzers share the wire
// decoder, so a hazard seeded for one belongs to the other byte-for-byte.
func TestCanonicalKeyCorpusMirrors(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCanonicalKey")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("FuzzCanonicalKey seed corpus is empty")
	}
	for _, e := range entries {
		got, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", "fuzz", "FuzzScenarioUnmarshal", e.Name()))
		if err != nil {
			t.Errorf("%s has no FuzzScenarioUnmarshal counterpart: %v", e.Name(), err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverged between the two seed corpora", e.Name())
		}
	}
}
