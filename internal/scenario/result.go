package scenario

import (
	"act/internal/report"
)

// Result evaluates the scenario end to end and renders the shared wire
// result: the assessment plus the four-phase life-cycle report when the
// scenario carries transport or end-of-life data. cmd/act -format json and
// actd's /v1/footprint both emit exactly this struct, which is what makes
// the CLI and the service byte-comparable.
func (s *Spec) Result() (report.ResultJSON, error) {
	a, err := s.Assess()
	if err != nil {
		return report.ResultJSON{}, err
	}
	out := report.ResultJSON{AssessmentJSON: report.JSONAssessment(a)}
	if s.HasLifeCycle() {
		r, err := s.LifeCycle()
		if err != nil {
			return report.ResultJSON{}, err
		}
		lc := report.JSONLifeCycle(r)
		out.LifeCycle = &lc
	}
	return out, nil
}
