// The versioned wire format. A scenario's JSON form is the public contract
// shared verbatim by cmd/act and the actd service: an object carrying an
// explicit `"version": 1` envelope field. Readers accept a missing version
// as 1 (every pre-envelope scenario is a valid version-1 scenario) and
// reject any other version with a typed error, so future format changes
// can be detected instead of misparsed. The exact byte layout is frozen by
// the golden tests in wire_test.go.

package scenario

import (
	"bytes"
	"fmt"
	"io"

	"encoding/json"

	"act/internal/acterr"
)

// Version is the wire-format version this library reads and writes.
const Version = 1

// Marshal renders the spec in its canonical wire form: the version-1
// envelope with the version made explicit, two-space indented, trailing
// newline. This is the inverse of Unmarshal and the format cmd/act
// -example emits.
func Marshal(s *Spec) ([]byte, error) {
	c := *s
	if err := c.checkVersion(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return append(data, '\n'), nil
}

// Unmarshal decodes a single wire-form scenario. It is Parse over bytes.
func Unmarshal(data []byte) (*Spec, error) {
	return Parse(bytes.NewReader(data))
}

// ParseRequest decodes a footprint request body that is either one
// scenario object or a batch array of them — the shape POST /v1/footprint
// accepts. batch reports which form was seen so the response can mirror
// it. Element-level failures carry the batch index in their field path
// ("[3].logic[0].node").
func ParseRequest(r io.Reader) (specs []*Spec, batch bool, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, false, fmt.Errorf("scenario: reading request: %w", err)
	}
	i := 0
	for i < len(data) && isJSONSpace(data[i]) {
		i++
	}
	if i == len(data) {
		return nil, false, fmt.Errorf("scenario: %w", acterr.Invalid("", "empty request body"))
	}
	if data[i] != '[' {
		s, err := Unmarshal(data)
		if err != nil {
			return nil, false, err
		}
		return []*Spec{s}, false, nil
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(data, &raws); err != nil {
		return nil, true, fmt.Errorf("scenario: batch: %w", err)
	}
	if len(raws) == 0 {
		return nil, true, fmt.Errorf("scenario: %w", acterr.Invalid("", "empty batch"))
	}
	specs = make([]*Spec, len(raws))
	for j, raw := range raws {
		s, err := Unmarshal(raw)
		if err != nil {
			return nil, true, fmt.Errorf("scenario: batch: %w", acterr.Prefix(fmt.Sprintf("[%d]", j), err))
		}
		specs[j] = s
	}
	return specs, true, nil
}

// isJSONSpace reports JSON whitespace (RFC 8259 §2).
func isJSONSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}
