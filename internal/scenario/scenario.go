// Package scenario defines the JSON description of a footprint assessment
// consumed by the act command line: a device bill of materials (logic dies
// with fab parameters, DRAM modules, storage drives), the software usage,
// and the lifetime over which embodied carbon is amortized.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"act/internal/acterr"
	"act/internal/core"
	"act/internal/fab"
	"act/internal/memdb"
	"act/internal/storagedb"
	"act/internal/units"
)

// FabSpec configures the fab manufacturing a logic die. Zero-valued
// fields take the paper's defaults.
type FabSpec struct {
	// CarbonIntensity is CIfab in g CO2/kWh (default: Taiwan grid + 25%
	// renewable).
	CarbonIntensity float64 `json:"carbon_intensity,omitempty"`
	// Abatement is the gaseous abatement effectiveness in [0.95, 0.99]
	// (default 0.95).
	Abatement float64 `json:"abatement,omitempty"`
	// Yield is the fixed fab yield in (0, 1] (default 0.875).
	Yield float64 `json:"yield,omitempty"`
}

// LogicSpec describes logic dies.
type LogicSpec struct {
	Name string `json:"name"`
	// AreaMM2 is the per-die area in mm².
	AreaMM2 float64 `json:"area_mm2"`
	// Node is the process node: "28nm".."3nm", "7nm-euv", or any feature
	// size to snap ("16nm").
	Node string `json:"node"`
	// Count is the number of identical dies (default 1).
	Count int      `json:"count,omitempty"`
	Fab   *FabSpec `json:"fab,omitempty"`
}

// DRAMSpec describes a DRAM module.
type DRAMSpec struct {
	Name string `json:"name"`
	// Technology is a Table 9 name, e.g. "lpddr4", "10nm DDR4".
	Technology string  `json:"technology"`
	CapacityGB float64 `json:"capacity_gb"`
}

// StorageSpec describes an SSD or HDD.
type StorageSpec struct {
	Name string `json:"name"`
	// Technology is a Table 10/11 name, e.g. "v3-nand-tlc", "exosx16".
	Technology string  `json:"technology"`
	CapacityGB float64 `json:"capacity_gb"`
}

// UsageSpec describes the operational side.
type UsageSpec struct {
	// PowerW is the average power draw while the application runs.
	PowerW float64 `json:"power_w"`
	// AppHours is T, the application execution time in hours.
	AppHours float64 `json:"app_hours"`
	// IntensityGPerKWh is CIuse (default: US grid, 300).
	IntensityGPerKWh float64 `json:"intensity_g_per_kwh,omitempty"`
	// PUE scales device energy to wall energy (≥ 1); mutually exclusive
	// with BatteryEfficiency.
	PUE float64 `json:"pue,omitempty"`
	// BatteryEfficiency is the charging-path efficiency in (0, 1];
	// mutually exclusive with PUE.
	BatteryEfficiency float64 `json:"battery_efficiency,omitempty"`
}

// TransportSpec describes one shipment leg (Figure 3's transport phase).
type TransportSpec struct {
	Name       string  `json:"name"`
	MassKg     float64 `json:"mass_kg"`
	DistanceKm float64 `json:"distance_km"`
	// Mode is "air", "sea", "road" or "rail".
	Mode string `json:"mode"`
}

// EndOfLifeSpec describes recycling/disposal (Figure 3's final phase).
type EndOfLifeSpec struct {
	ProcessingKg      float64 `json:"processing_kg,omitempty"`
	RecyclingCreditKg float64 `json:"recycling_credit_kg,omitempty"`
}

// Spec is the full scenario.
type Spec struct {
	// Version is the wire-format envelope version. Zero (a pre-envelope
	// scenario) means Version 1; any other value is rejected with
	// acterr.UnsupportedVersionError. See wire.go for the frozen format.
	Version  int           `json:"version,omitempty"`
	Name     string        `json:"name"`
	Logic    []LogicSpec   `json:"logic,omitempty"`
	DRAM     []DRAMSpec    `json:"dram,omitempty"`
	Storage  []StorageSpec `json:"storage,omitempty"`
	ExtraICs int           `json:"extra_ics,omitempty"`
	Usage    UsageSpec     `json:"usage"`
	// Transport and EndOfLife enable the four-phase life-cycle report.
	Transport []TransportSpec `json:"transport,omitempty"`
	EndOfLife *EndOfLifeSpec  `json:"end_of_life,omitempty"`
	// LifetimeYears is LT (default 3).
	LifetimeYears float64 `json:"lifetime_years,omitempty"`
}

// Parse decodes a scenario from JSON, rejecting unknown fields so typos in
// hand-written scenarios fail loudly, and normalizes the envelope version
// (missing defaults to 1, anything else is a typed error).
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.checkVersion(); err != nil {
		return nil, err
	}
	return &s, nil
}

// checkVersion normalizes a missing version to 1 and rejects versions this
// library does not speak.
func (s *Spec) checkVersion() error {
	switch s.Version {
	case 0:
		s.Version = Version
	case Version:
	default:
		return fmt.Errorf("scenario: %w", &acterr.UnsupportedVersionError{Version: s.Version})
	}
	return nil
}

// buildFab constructs the fab for a logic spec.
func buildFab(nodeName string, spec *FabSpec) (*fab.Fab, error) {
	params, err := fab.ParseNode(nodeName)
	if err != nil {
		return nil, err
	}
	var opts []fab.Option
	if spec != nil {
		if spec.CarbonIntensity != 0 {
			opts = append(opts, fab.WithCarbonIntensity(units.GramsPerKWh(spec.CarbonIntensity)))
		}
		if spec.Abatement != 0 {
			opts = append(opts, fab.WithAbatement(spec.Abatement))
		}
		if spec.Yield != 0 {
			opts = append(opts, fab.WithYield(fab.FixedYield(spec.Yield)))
		}
	}
	return fab.New(params.Node, opts...)
}

// Device materializes the scenario's bill of materials. Validation
// failures carry their JSON field path (acterr.InvalidSpecError), so both
// the CLI and the service can point at the offending field.
func (s *Spec) Device() (*core.Device, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("scenario: %w", acterr.Invalid("name", "missing device name"))
	}
	if len(s.Logic)+len(s.DRAM)+len(s.Storage) == 0 {
		return nil, fmt.Errorf("scenario: %w", acterr.Invalid("", "device %q has no components", s.Name))
	}
	d, err := core.NewDevice(s.Name)
	if err != nil {
		return nil, err
	}
	for i, l := range s.Logic {
		f, err := buildFab(l.Node, l.Fab)
		if err != nil {
			return nil, fmt.Errorf("scenario: logic %q: %w", l.Name, acterr.Prefix(fmt.Sprintf("logic[%d]", i), err))
		}
		count := l.Count
		if count == 0 {
			count = 1
		}
		logic, err := core.NewLogic(l.Name, units.MM2(l.AreaMM2), f, count)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", acterr.Prefix(fmt.Sprintf("logic[%d]", i), err))
		}
		d.AddLogic(logic)
	}
	for i, m := range s.DRAM {
		entry, err := memdb.Parse(m.Technology)
		if err != nil {
			return nil, fmt.Errorf("scenario: dram %q: %w", m.Name, acterr.Prefix(fmt.Sprintf("dram[%d].technology", i), err))
		}
		dram, err := core.NewDRAM(m.Name, entry.Technology, units.Gigabytes(m.CapacityGB))
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", acterr.Prefix(fmt.Sprintf("dram[%d]", i), err))
		}
		d.AddDRAM(dram)
	}
	for i, st := range s.Storage {
		entry, err := storagedb.Parse(st.Technology)
		if err != nil {
			return nil, fmt.Errorf("scenario: storage %q: %w", st.Name, acterr.Prefix(fmt.Sprintf("storage[%d].technology", i), err))
		}
		drive, err := core.NewStorage(st.Name, entry.Technology, units.Gigabytes(st.CapacityGB))
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", acterr.Prefix(fmt.Sprintf("storage[%d]", i), err))
		}
		d.AddStorage(drive)
	}
	d.AddExtraICs(s.ExtraICs)
	return d, nil
}

// usage builds the (possibly effectiveness-scaled) operational input.
func (s *Spec) usage() (core.Usage, error) {
	ci := s.Usage.IntensityGPerKWh
	if ci == 0 {
		ci = 300 // US grid default
	}
	if ci < 0 {
		return core.Usage{}, fmt.Errorf("scenario: %w", acterr.Invalid("usage.intensity_g_per_kwh", "negative intensity %v", ci))
	}
	if s.Usage.PowerW < 0 {
		return core.Usage{}, fmt.Errorf("scenario: %w", acterr.Invalid("usage.power_w", "negative power_w %v", s.Usage.PowerW))
	}
	if s.Usage.AppHours <= 0 {
		return core.Usage{}, fmt.Errorf("scenario: %w", acterr.Invalid("usage.app_hours", "non-positive app_hours %v", s.Usage.AppHours))
	}
	appTime := units.Years(s.Usage.AppHours / (365.25 * 24))
	u := core.UsageFromPower(units.Watts(s.Usage.PowerW), appTime, units.GramsPerKWh(ci))
	if s.Usage.PUE != 0 && s.Usage.BatteryEfficiency != 0 {
		return core.Usage{}, fmt.Errorf("scenario: %w", acterr.Invalid("usage", "pue and battery_efficiency are mutually exclusive"))
	}
	var eu core.EffectiveUsage
	var err error
	switch {
	case s.Usage.PUE != 0:
		if eu, err = core.PUE(u, s.Usage.PUE); err != nil {
			return core.Usage{}, fmt.Errorf("scenario: %w", acterr.Prefix("usage.pue", err))
		}
	case s.Usage.BatteryEfficiency != 0:
		if eu, err = core.BatteryEfficiency(u, s.Usage.BatteryEfficiency); err != nil {
			return core.Usage{}, fmt.Errorf("scenario: %w", acterr.Prefix("usage.battery_efficiency", err))
		}
	default:
		return u, nil
	}
	return eu.WallUsage()
}

// Lifetime returns LT in years with the 3-year default applied — the
// amortization horizon of Eq. 1 that fleet accounting shares with the
// single-device assessment.
func (s *Spec) Lifetime() float64 {
	if s.LifetimeYears == 0 {
		return 3
	}
	return s.LifetimeYears
}

// lifetimeDuration returns LT as a duration, rejecting a non-positive
// lifetime with a typed error (the client's to fix, not a 500).
func (s *Spec) lifetimeDuration() (time.Duration, error) {
	lt := s.Lifetime()
	if lt <= 0 {
		return 0, fmt.Errorf("scenario: %w", acterr.Invalid("lifetime_years", "non-positive lifetime_years %v", lt))
	}
	return units.Years(lt), nil
}

// Assess evaluates the scenario end to end (Eq. 1).
func (s *Spec) Assess() (core.Assessment, error) {
	d, err := s.Device()
	if err != nil {
		return core.Assessment{}, err
	}
	usage, err := s.usage()
	if err != nil {
		return core.Assessment{}, err
	}
	lifetime, err := s.lifetimeDuration()
	if err != nil {
		return core.Assessment{}, err
	}
	appTime := units.Years(s.Usage.AppHours / (365.25 * 24))
	// Compare the same durations core.Footprint compares, so the typed
	// rejection fires exactly where the plain core one would.
	if appTime > lifetime {
		return core.Assessment{}, fmt.Errorf("scenario: %w",
			acterr.Invalid("usage.app_hours", "app_hours %v exceeds the %v-year lifetime", s.Usage.AppHours, s.Lifetime()))
	}
	return core.Footprint(d, usage, appTime, lifetime)
}

// HasLifeCycle reports whether the scenario carries transport or
// end-of-life data, enabling the four-phase report.
func (s *Spec) HasLifeCycle() bool {
	return len(s.Transport) > 0 || s.EndOfLife != nil
}

// LifeCycle evaluates the four-phase product footprint (Figure 3): the
// usage is treated as the whole-lifetime operational profile.
func (s *Spec) LifeCycle() (core.PhaseReport, error) {
	d, err := s.Device()
	if err != nil {
		return core.PhaseReport{}, err
	}
	usage, err := s.usage()
	if err != nil {
		return core.PhaseReport{}, err
	}
	lifetime, err := s.lifetimeDuration()
	if err != nil {
		return core.PhaseReport{}, err
	}
	lc := core.LifeCycle{
		Device:   d,
		Use:      core.EffectiveUsage{Usage: usage, Effectiveness: 1},
		Lifetime: lifetime,
	}
	for i, leg := range s.Transport {
		// Canonicalize the mode the same way CanonicalKey does — "Air" and
		// "air" must evaluate identically or the footprint cache, keyed on
		// the canonical form, would conflate a valid spec with an invalid
		// one. Unknown modes and negative quantities are the client's to
		// fix, so they are typed here rather than left to core's plain
		// errors.
		mode := core.TransportMode(canonName(leg.Mode))
		switch mode {
		case core.TransportAir, core.TransportSea, core.TransportRoad, core.TransportRail:
		default:
			return core.PhaseReport{}, fmt.Errorf("scenario: %w",
				acterr.Invalid(fmt.Sprintf("transport[%d].mode", i), "unknown transport mode %q (want air, sea, road or rail)", leg.Mode))
		}
		if leg.MassKg < 0 {
			return core.PhaseReport{}, fmt.Errorf("scenario: %w",
				acterr.Invalid(fmt.Sprintf("transport[%d].mass_kg", i), "negative mass_kg %v", leg.MassKg))
		}
		if leg.DistanceKm < 0 {
			return core.PhaseReport{}, fmt.Errorf("scenario: %w",
				acterr.Invalid(fmt.Sprintf("transport[%d].distance_km", i), "negative distance_km %v", leg.DistanceKm))
		}
		lc.Transport = append(lc.Transport, core.TransportLeg{
			Name:       leg.Name,
			MassKg:     leg.MassKg,
			DistanceKm: leg.DistanceKm,
			Mode:       mode,
		})
	}
	if s.EndOfLife != nil {
		lc.EndOfLife = core.EndOfLife{
			Processing:      units.Kilograms(s.EndOfLife.ProcessingKg),
			RecyclingCredit: units.Kilograms(s.EndOfLife.RecyclingCreditKg),
		}
	}
	return lc.Assess()
}

// Example returns a documented sample scenario (the act CLI's -example).
func Example() *Spec {
	return &Spec{
		Name: "mobile-phone",
		Logic: []LogicSpec{
			{Name: "application SoC", AreaMM2: 98.5, Node: "7nm", Count: 1},
			{Name: "board ICs", AreaMM2: 30, Node: "28nm", Count: 12},
		},
		DRAM:    []DRAMSpec{{Name: "LPDDR4", Technology: "lpddr4", CapacityGB: 4}},
		Storage: []StorageSpec{{Name: "flash", Technology: "v3-nand-tlc", CapacityGB: 64}},
		Usage: UsageSpec{
			PowerW:            3,
			AppHours:          2 * 365.25 * 24 * 0.05, // 5% duty over 2 years
			IntensityGPerKWh:  300,
			BatteryEfficiency: 0.85,
		},
		Transport: []TransportSpec{
			{Name: "fab to assembly", MassKg: 0.2, DistanceKm: 1500, Mode: "road"},
			{Name: "assembly to market", MassKg: 0.3, DistanceKm: 9000, Mode: "air"},
		},
		EndOfLife:     &EndOfLifeSpec{ProcessingKg: 0.4, RecyclingCreditKg: 0.1},
		LifetimeYears: 3,
	}
}
