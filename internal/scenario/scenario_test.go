package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const sample = `{
  "name": "phone",
  "logic": [
    {"name": "soc", "area_mm2": 98.5, "node": "7nm"},
    {"name": "pmic", "area_mm2": 20, "node": "28nm", "count": 3,
     "fab": {"carbon_intensity": 41, "abatement": 0.99, "yield": 0.9}}
  ],
  "dram": [{"name": "ram", "technology": "lpddr4", "capacity_gb": 4}],
  "storage": [{"name": "flash", "technology": "v3-nand-tlc", "capacity_gb": 64}],
  "extra_ics": 5,
  "usage": {"power_w": 3, "app_hours": 100, "intensity_g_per_kwh": 300},
  "lifetime_years": 3
}`

func TestParseAndBuild(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Device()
	if err != nil {
		t.Fatal(err)
	}
	// ICs: 1 soc + 3 pmic + 1 dram + 1 flash + 5 extra = 11.
	if got := d.ICCount(); got != 11 {
		t.Errorf("ICCount = %d, want 11", got)
	}
	if len(d.Logic()) != 2 || len(d.DRAM()) != 1 || len(d.Storage()) != 1 {
		t.Errorf("component counts wrong")
	}
}

func TestAssess(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Assess()
	if err != nil {
		t.Fatal(err)
	}
	// Operational: 3 W x 100 h = 0.3 kWh x 300 g = 90 g.
	if math.Abs(a.Operational.Grams()-90) > 1e-6 {
		t.Errorf("operational = %v, want 90 g", a.Operational)
	}
	// Embodied share = total x (100h / 3y).
	wantShare := a.EmbodiedTotal.Grams() * 100 / (3 * 365.25 * 24)
	if math.Abs(a.EmbodiedShare.Grams()-wantShare) > 1e-6 {
		t.Errorf("embodied share = %v, want %v g", a.EmbodiedShare, wantShare)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	bad := `{"name": "x", "logics": []}`
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("unknown field: expected error")
	}
}

func TestDeviceValidation(t *testing.T) {
	cases := []string{
		`{"usage": {"power_w": 1, "app_hours": 1}}`,                                          // no name
		`{"name": "x", "usage": {"power_w": 1, "app_hours": 1}}`,                             // no components
		`{"name": "x", "logic": [{"name": "l", "area_mm2": 10, "node": "1nm"}]}`,             // bad node
		`{"name": "x", "dram": [{"name": "d", "technology": "hbm9", "capacity_gb": 4}]}`,     // bad dram
		`{"name": "x", "storage": [{"name": "s", "technology": "tape", "capacity_gb": 4}]}`,  // bad storage
		`{"name": "x", "logic": [{"name": "l", "area_mm2": -1, "node": "7nm"}]}`,             // bad area
		`{"name": "x", "logic": [{"name": "l", "area_mm2": 1, "node": "7nm", "count": -2}]}`, // bad count
		`{"name": "x", "dram": [{"name": "d", "technology": "lpddr4", "capacity_gb": -4}]}`,  // bad capacity
	}
	for i, c := range cases {
		s, err := Parse(strings.NewReader(c))
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := s.Device(); err == nil {
			t.Errorf("case %d: expected device build error", i)
		}
	}
}

func TestAssessValidation(t *testing.T) {
	s, err := Parse(strings.NewReader(`{
	  "name": "x",
	  "logic": [{"name": "l", "area_mm2": 10, "node": "7nm"}],
	  "usage": {"power_w": 1, "app_hours": 0}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assess(); err == nil {
		t.Error("zero app_hours: expected error")
	}
}

func TestDefaults(t *testing.T) {
	s, err := Parse(strings.NewReader(`{
	  "name": "x",
	  "logic": [{"name": "l", "area_mm2": 10, "node": "7nm"}],
	  "usage": {"power_w": 1, "app_hours": 24}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Assess()
	if err != nil {
		t.Fatal(err)
	}
	// Default intensity 300 g/kWh: 24 Wh = 7.2 g.
	if math.Abs(a.Operational.Grams()-7.2) > 1e-9 {
		t.Errorf("default-intensity operational = %v, want 7.2 g", a.Operational)
	}
	// Default lifetime 3 years.
	if y := a.Lifetime.Hours() / (365.25 * 24); math.Abs(y-3) > 1e-9 {
		t.Errorf("default lifetime = %v years, want 3", y)
	}
}

func TestExampleRoundTrips(t *testing.T) {
	ex := Example()
	data, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("example does not round-trip: %v", err)
	}
	if _, err := parsed.Assess(); err != nil {
		t.Fatalf("example does not assess: %v", err)
	}
}
