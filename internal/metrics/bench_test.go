package metrics

import (
	"testing"
	"time"

	"act/internal/units"
)

func benchCandidates() []Candidate {
	out := make([]Candidate, 64)
	for i := range out {
		out[i] = Candidate{
			Name:     "c",
			Embodied: units.Grams(float64(i + 1)),
			Energy:   units.Joules(float64(64 - i)),
			Delay:    time.Duration(i+1) * time.Millisecond,
			Area:     units.MM2(float64(i + 1)),
		}
	}
	return out
}

func BenchmarkEval(b *testing.B) {
	c := benchCandidates()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range All() {
			if _, err := Eval(m, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRank64(b *testing.B) {
	cs := benchCandidates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rank(CEP, cs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalized64(b *testing.B) {
	cs := benchCandidates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Normalized(CDP, cs, "c"); err != nil {
			b.Fatal(err)
		}
	}
}
