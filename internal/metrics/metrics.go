// Package metrics implements ACT's use-case dependent sustainability
// optimization metrics (Section 3.2, Table 2 of the paper). Two classic
// PPA-era metrics, energy-delay product (EDP) and energy-delay-area product
// (EDAP), are joined by four carbon-aware metrics:
//
//	CDP  = C·D   — balance embodied carbon and performance (data centers)
//	CEP  = C·E   — balance embodied carbon and energy (mobile)
//	C2EP = C²·E  — embodied-dominated systems (renewable-powered use)
//	CE2P = C·E²  — operational-dominated systems ("brown" energy use)
//
// where C is embodied carbon, D delay, E energy, and A area. All metrics
// are lower-is-better products over a Candidate design point.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"act/internal/units"
)

// Candidate is one hardware design point under evaluation.
type Candidate struct {
	Name string
	// Embodied is C, the design's embodied carbon footprint.
	Embodied units.CO2Mass
	// Energy is E, the energy consumed by the reference workload.
	Energy units.Energy
	// Delay is D, the execution time of the reference workload.
	Delay time.Duration
	// Area is A, the silicon area (used only by EDAP).
	Area units.Area
}

// Validate reports whether the candidate's fields are usable: strictly
// positive delay, non-negative everything else.
func (c Candidate) Validate() error {
	if c.Delay <= 0 {
		return fmt.Errorf("metrics: candidate %q: non-positive delay %v", c.Name, c.Delay)
	}
	if c.Energy < 0 || c.Embodied < 0 || c.Area < 0 {
		return fmt.Errorf("metrics: candidate %q: negative quantity", c.Name)
	}
	return nil
}

// Metric identifies an optimization metric from Table 2.
type Metric string

// Metrics from Table 2 of the paper.
const (
	EDP  Metric = "EDP"
	EDAP Metric = "EDAP"
	CDP  Metric = "CDP"
	CEP  Metric = "CEP"
	C2EP Metric = "C2EP"
	CE2P Metric = "CE2P"
)

// All returns the metrics in Table 2 order.
func All() []Metric { return []Metric{EDP, EDAP, CDP, CEP, C2EP, CE2P} }

// CarbonAware returns only the four carbon metrics introduced by ACT.
func CarbonAware() []Metric { return []Metric{CDP, CEP, C2EP, CE2P} }

// UseCase returns the Table 2 use-case description for a metric.
func UseCase(m Metric) (string, error) {
	switch m {
	case EDP:
		return "Energy optimization (e.g., mobile)", nil
	case EDAP:
		return "Energy and cost optimization (e.g., mobile)", nil
	case CDP:
		return "Balance CO2 and perf. (e.g., sustainable data center)", nil
	case CEP:
		return "Balance CO2 and energy (e.g., sustainable mobile device)", nil
	case C2EP:
		return "Sustainable device dominated by embodied footprint", nil
	case CE2P:
		return "Sustainable device dominated by operational footprint", nil
	}
	return "", fmt.Errorf("metrics: unknown metric %q", m)
}

// Eval computes the metric value for a candidate in canonical units
// (grams, joules, seconds, mm²). Values are only meaningful relative to
// other candidates under the same metric; lower is better.
func Eval(m Metric, c Candidate) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	e := c.Energy.Joules()
	d := c.Delay.Seconds()
	cc := c.Embodied.Grams()
	a := c.Area.MM2()
	switch m {
	case EDP:
		return e * d, nil
	case EDAP:
		return e * d * a, nil
	case CDP:
		return cc * d, nil
	case CEP:
		return cc * e, nil
	case C2EP:
		return cc * cc * e, nil
	case CE2P:
		return cc * e * e, nil
	}
	return 0, fmt.Errorf("metrics: unknown metric %q", m)
}

// Scored pairs a candidate with its metric value.
type Scored struct {
	Candidate Candidate
	Value     float64
}

// Rank evaluates all candidates under a metric and returns them sorted
// best (lowest) first. Ties preserve input order.
func Rank(m Metric, cs []Candidate) ([]Scored, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("metrics: no candidates")
	}
	out := make([]Scored, len(cs))
	for i, c := range cs {
		v, err := Eval(m, c)
		if err != nil {
			return nil, err
		}
		out[i] = Scored{Candidate: c, Value: v}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out, nil
}

// Best returns the candidate minimizing the metric.
func Best(m Metric, cs []Candidate) (Scored, error) {
	ranked, err := Rank(m, cs)
	if err != nil {
		return Scored{}, err
	}
	return ranked[0], nil
}

// Normalized evaluates candidates under a metric and scales the values so
// the named baseline candidate is 1.0, the presentation used by
// Figures 8(d) and 9 of the paper. The result preserves input order.
func Normalized(m Metric, cs []Candidate, baseline string) ([]Scored, error) {
	var base float64
	found := false
	for _, c := range cs {
		if c.Name == baseline {
			v, err := Eval(m, c)
			if err != nil {
				return nil, err
			}
			base, found = v, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("metrics: baseline candidate %q not present", baseline)
	}
	if base == 0 || math.IsInf(base, 0) || math.IsNaN(base) {
		return nil, fmt.Errorf("metrics: baseline %q has degenerate value %v", baseline, base)
	}
	out := make([]Scored, len(cs))
	for i, c := range cs {
		v, err := Eval(m, c)
		if err != nil {
			return nil, err
		}
		out[i] = Scored{Candidate: c, Value: v / base}
	}
	return out, nil
}
