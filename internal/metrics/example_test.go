package metrics_test

import (
	"fmt"
	"time"

	"act/internal/metrics"
	"act/internal/units"
)

// ExampleBest shows how the carbon-weighted and energy-weighted metrics
// disagree about the same two designs.
func ExampleBest() {
	lean := metrics.Candidate{Name: "lean", Embodied: units.Grams(100),
		Energy: units.Joules(4), Delay: 4 * time.Second, Area: units.MM2(10)}
	fast := metrics.Candidate{Name: "fast", Embodied: units.Grams(400),
		Energy: units.Joules(1), Delay: time.Second, Area: units.MM2(40)}
	cands := []metrics.Candidate{lean, fast}

	for _, m := range []metrics.Metric{metrics.C2EP, metrics.CE2P} {
		best, err := metrics.Best(m, cands)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %s\n", m, best.Candidate.Name)
	}
	// Output:
	// C2EP: lean
	// CE2P: fast
}

// ExampleNormalized reproduces the presentation of the paper's Figure 9:
// metric values scaled so a baseline design reads 1.0.
func ExampleNormalized() {
	cpu := metrics.Candidate{Name: "CPU", Embodied: units.Grams(253),
		Energy: units.Millijoules(39.6), Delay: 6 * time.Millisecond, Area: units.MM2(16)}
	dsp := metrics.Candidate{Name: "DSP", Embodied: units.Grams(442),
		Energy: units.Millijoules(18.4), Delay: 9200 * time.Microsecond, Area: units.MM2(28)}
	out, err := metrics.Normalized(metrics.CEP, []metrics.Candidate{cpu, dsp}, "CPU")
	if err != nil {
		panic(err)
	}
	for _, s := range out {
		fmt.Printf("%s: %.2f\n", s.Candidate.Name, s.Value)
	}
	// Output:
	// CPU: 1.00
	// DSP: 0.81
}
