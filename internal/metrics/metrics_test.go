package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"act/internal/units"
)

func candidate(name string, c, e, d, a float64) Candidate {
	return Candidate{
		Name:     name,
		Embodied: units.Grams(c),
		Energy:   units.Joules(e),
		Delay:    time.Duration(d * float64(time.Second)),
		Area:     units.MM2(a),
	}
}

func TestEvalFormulas(t *testing.T) {
	c := candidate("x", 2, 3, 5, 7)
	cases := []struct {
		m    Metric
		want float64
	}{
		{EDP, 3 * 5},
		{EDAP, 3 * 5 * 7},
		{CDP, 2 * 5},
		{CEP, 2 * 3},
		{C2EP, 2 * 2 * 3},
		{CE2P, 2 * 3 * 3},
	}
	for _, tc := range cases {
		got, err := Eval(tc.m, c)
		if err != nil {
			t.Fatalf("Eval(%s): %v", tc.m, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Eval(%s) = %v, want %v", tc.m, got, tc.want)
		}
	}
	if _, err := Eval("XYZ", c); err == nil {
		t.Error("Eval(unknown metric): expected error")
	}
}

func TestValidate(t *testing.T) {
	if err := candidate("ok", 1, 1, 1, 1).Validate(); err != nil {
		t.Errorf("valid candidate rejected: %v", err)
	}
	bad := []Candidate{
		candidate("zero-delay", 1, 1, 0, 1),
		candidate("neg-energy", 1, -1, 1, 1),
		candidate("neg-carbon", -1, 1, 1, 1),
		candidate("neg-area", 1, 1, 1, -1),
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("candidate %q: expected validation error", c.Name)
		}
		if _, err := Eval(CDP, c); err == nil {
			t.Errorf("Eval on %q: expected error", c.Name)
		}
	}
}

func TestAllAndCarbonAware(t *testing.T) {
	if got := All(); len(got) != 6 {
		t.Errorf("All() = %d metrics, want 6", len(got))
	}
	for _, m := range CarbonAware() {
		if m == EDP || m == EDAP {
			t.Errorf("CarbonAware() includes PPA metric %s", m)
		}
	}
	if len(CarbonAware()) != 4 {
		t.Errorf("CarbonAware() = %d metrics, want 4", len(CarbonAware()))
	}
}

func TestUseCase(t *testing.T) {
	for _, m := range All() {
		s, err := UseCase(m)
		if err != nil || s == "" {
			t.Errorf("UseCase(%s) = %q, %v", m, s, err)
		}
	}
	if _, err := UseCase("XYZ"); err == nil {
		t.Error("UseCase(unknown): expected error")
	}
}

func TestMetricBiases(t *testing.T) {
	// Two designs: "lean" has half the carbon, "fast" half the energy and
	// delay. The carbon-weighted metric (C2EP) must pick lean; the
	// energy-weighted one (CE2P) must pick fast.
	lean := candidate("lean", 1, 4, 4, 1)
	fast := candidate("fast", 2, 2, 2, 1)
	cs := []Candidate{lean, fast}

	best, err := Best(C2EP, cs)
	if err != nil || best.Candidate.Name != "lean" {
		t.Errorf("C2EP best = %v, %v, want lean", best.Candidate.Name, err)
	}
	best, err = Best(CE2P, cs)
	if err != nil || best.Candidate.Name != "fast" {
		t.Errorf("CE2P best = %v, %v, want fast", best.Candidate.Name, err)
	}
	// CEP is indifferent here (1*4 vs 2*2): stable order keeps lean first.
	ranked, err := Rank(CEP, cs)
	if err != nil || ranked[0].Candidate.Name != "lean" {
		t.Errorf("CEP tie should preserve input order, got %v", ranked[0].Candidate.Name)
	}
}

func TestRankSorted(t *testing.T) {
	cs := []Candidate{
		candidate("a", 3, 3, 3, 1),
		candidate("b", 1, 1, 1, 1),
		candidate("c", 2, 2, 2, 1),
	}
	ranked, err := Rank(CDP, cs)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c", "a"}
	for i, w := range want {
		if ranked[i].Candidate.Name != w {
			t.Errorf("rank[%d] = %s, want %s", i, ranked[i].Candidate.Name, w)
		}
	}
	if _, err := Rank(CDP, nil); err == nil {
		t.Error("Rank(empty): expected error")
	}
}

func TestNormalized(t *testing.T) {
	cs := []Candidate{
		candidate("cpu", 2, 2, 2, 1),
		candidate("gpu", 4, 1, 1, 1),
	}
	out, err := Normalized(CEP, cs, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Value != 1 {
		t.Errorf("baseline normalized value = %v, want 1", out[0].Value)
	}
	if math.Abs(out[1].Value-1) > 1e-9 { // gpu CEP = 4*1 = cpu CEP = 2*2
		t.Errorf("gpu normalized CEP = %v, want 1", out[1].Value)
	}
	if _, err := Normalized(CEP, cs, "dsp"); err == nil {
		t.Error("missing baseline: expected error")
	}
	if _, err := Normalized(CEP, []Candidate{candidate("z", 0, 0, 1, 1)}, "z"); err == nil {
		t.Error("degenerate baseline (0): expected error")
	}
}

// Property: scaling a candidate's carbon by k scales CDP/CEP by k, C2EP by
// k², and leaves EDP unchanged.
func TestQuickCarbonScaling(t *testing.T) {
	f := func(cRaw, kRaw uint8) bool {
		c0 := float64(cRaw%100) + 1
		k := float64(kRaw%9) + 2
		base := candidate("b", c0, 3, 5, 7)
		scaled := candidate("s", c0*k, 3, 5, 7)
		for _, tc := range []struct {
			m    Metric
			want float64
		}{{CDP, k}, {CEP, k}, {C2EP, k * k}, {CE2P, k}, {EDP, 1}, {EDAP, 1}} {
			vb, err1 := Eval(tc.m, base)
			vs, err2 := Eval(tc.m, scaled)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(vs/vb-tc.want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Rank's winner equals the minimum of Eval over the set.
func TestQuickBestIsMinimum(t *testing.T) {
	f := func(seed [6]uint8) bool {
		cs := make([]Candidate, 3)
		for i := range cs {
			cs[i] = candidate(string(rune('a'+i)),
				float64(seed[i]%50)+1, float64(seed[i+3]%50)+1, float64(i)+1, 1)
		}
		for _, m := range All() {
			best, err := Best(m, cs)
			if err != nil {
				return false
			}
			for _, c := range cs {
				v, err := Eval(m, c)
				if err != nil {
					return false
				}
				if v < best.Value {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
