// Package uncertain propagates parameter uncertainty through the ACT
// model. Table 1 gives most inputs as *ranges* (fab energy 0.8-3.5
// kWh/cm², carbon intensity 30-700 g/kWh, yield 0-1, ...); a point
// estimate built from the defaults hides how wide the resulting footprint
// band really is. The package provides simple distributions, a
// deterministic sampler, and a Monte Carlo driver returning summary
// quantiles — plus a canonical study propagating the Table 1 ranges
// through the CPA equation.
package uncertain

import (
	"fmt"
	"math"
	"sort"

	"act/internal/fab"
	"act/internal/units"
)

// RNG is a small deterministic generator (SplitMix64) so studies are
// reproducible from a seed.
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Dist is a sampleable distribution.
type Dist interface {
	// Sample draws one value.
	Sample(r *RNG) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Validate checks the parameters.
	Validate() error
}

// Point is a degenerate distribution at a single value.
type Point float64

// Sample implements Dist.
func (p Point) Sample(*RNG) float64 { return float64(p) }

// Mean implements Dist.
func (p Point) Mean() float64 { return float64(p) }

// Validate implements Dist.
func (p Point) Validate() error { return nil }

// Uniform is a uniform distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Validate implements Dist.
func (u Uniform) Validate() error {
	if u.Hi < u.Lo {
		return fmt.Errorf("uncertain: uniform bounds inverted [%v, %v]", u.Lo, u.Hi)
	}
	return nil
}

// Triangular is a triangular distribution on [Lo, Hi] with the given mode
// — the standard LCA shape for "best available estimate plus bounds".
type Triangular struct{ Lo, Mode, Hi float64 }

// Sample implements Dist (inverse-CDF method).
func (t Triangular) Sample(r *RNG) float64 {
	u := r.Float64()
	fc := (t.Mode - t.Lo) / (t.Hi - t.Lo)
	if u < fc {
		return t.Lo + math.Sqrt(u*(t.Hi-t.Lo)*(t.Mode-t.Lo))
	}
	return t.Hi - math.Sqrt((1-u)*(t.Hi-t.Lo)*(t.Hi-t.Mode))
}

// Mean implements Dist.
func (t Triangular) Mean() float64 { return (t.Lo + t.Mode + t.Hi) / 3 }

// Validate implements Dist.
func (t Triangular) Validate() error {
	if !(t.Lo <= t.Mode && t.Mode <= t.Hi) || t.Hi == t.Lo {
		return fmt.Errorf("uncertain: bad triangular (%v, %v, %v)", t.Lo, t.Mode, t.Hi)
	}
	return nil
}

// Summary condenses a Monte Carlo sample.
type Summary struct {
	N                int
	Mean             float64
	P05, Median, P95 float64
	Min, Max         float64
}

// Summarize computes the summary of a sample.
func Summarize(samples []float64) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, fmt.Errorf("uncertain: empty sample")
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Summary{}, fmt.Errorf("uncertain: non-finite sample %v", v)
		}
		sum += v
	}
	q := func(p float64) float64 {
		idx := p * float64(len(sorted)-1)
		lo := int(idx)
		if lo >= len(sorted)-1 {
			return sorted[len(sorted)-1]
		}
		frac := idx - float64(lo)
		return sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	return Summary{
		N:      len(sorted),
		Mean:   sum / float64(len(sorted)),
		P05:    q(0.05),
		Median: q(0.50),
		P95:    q(0.95),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}, nil
}

// MonteCarlo runs n evaluations of a model over a deterministic sample
// stream and summarizes the results. The model receives a draw function
// that samples any distribution.
func MonteCarlo(n int, seed uint64, model func(draw func(Dist) float64) (float64, error)) (Summary, error) {
	if n < 1 {
		return Summary{}, fmt.Errorf("uncertain: need at least one sample, got %d", n)
	}
	if model == nil {
		return Summary{}, fmt.Errorf("uncertain: nil model")
	}
	rng := NewRNG(seed)
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v, err := model(func(d Dist) float64 { return d.Sample(rng) })
		if err != nil {
			return Summary{}, err
		}
		samples = append(samples, v)
	}
	return Summarize(samples)
}

// CPAStudy propagates uncertainty through the CPA equation (Eq. 5) for a
// node: CPA = (CI·EPA + GPA + MPA) / Y.
type CPAStudy struct {
	// CI is the fab carbon intensity distribution (g/kWh).
	CI Dist
	// EPA is the fab energy per area distribution (kWh/cm²).
	EPA Dist
	// GPA is the gas emissions distribution (g/cm²).
	GPA Dist
	// MPA is the raw-material distribution (g/cm²).
	MPA Dist
	// Yield is the fab yield distribution in (0, 1].
	Yield Dist
}

// DefaultCPAStudy builds a study for a characterized node: CI triangular
// between solar and the Taiwan grid with the paper's default as mode, the
// node's abatement band as the GPA range, EPA and MPA ±10%, and yield
// triangular around 0.875.
func DefaultCPAStudy(node fab.Node) (CPAStudy, error) {
	p, err := fab.Params(node)
	if err != nil {
		return CPAStudy{}, err
	}
	epa := p.EPA.KWhPerCM2()
	mpa := fab.MPA.GramsPerCM2()
	return CPAStudy{
		CI:    Triangular{Lo: 41, Mode: 447.5, Hi: 583},
		EPA:   Uniform{Lo: epa * 0.9, Hi: epa * 1.1},
		GPA:   Uniform{Lo: p.GPA99.GramsPerCM2(), Hi: p.GPA95.GramsPerCM2()},
		MPA:   Uniform{Lo: mpa * 0.9, Hi: mpa * 1.1},
		Yield: Triangular{Lo: 0.7, Mode: 0.875, Hi: 0.98},
	}, nil
}

// Validate checks every distribution.
func (s CPAStudy) Validate() error {
	for _, d := range []Dist{s.CI, s.EPA, s.GPA, s.MPA, s.Yield} {
		if d == nil {
			return fmt.Errorf("uncertain: CPA study has a nil distribution")
		}
		if err := d.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Run evaluates the study and returns the CPA summary in g/cm². It
// consumes one sequential RNG stream; RunParallel uses per-sample streams
// and a worker pool for large n.
func (s CPAStudy) Run(n int, seed uint64) (Summary, error) {
	if err := s.Validate(); err != nil {
		return Summary{}, err
	}
	return MonteCarlo(n, seed, s.sampleCPA)
}

// EmbodiedBand converts a CPA summary into an embodied-carbon band for a
// die of the given area.
func EmbodiedBand(s Summary, die units.Area) (lo, mid, hi units.CO2Mass) {
	cm2 := die.CM2()
	return units.Grams(s.P05 * cm2), units.Grams(s.Median * cm2), units.Grams(s.P95 * cm2)
}
