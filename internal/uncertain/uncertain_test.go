package uncertain

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/fab"
	"act/internal/units"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		va, vb := a.Float64(), b.Float64()
		if va != vb {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, va, vb)
		}
		if va < 0 || va >= 1 {
			t.Fatalf("sample %v outside [0, 1)", va)
		}
	}
	// Different seeds differ.
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestDistributions(t *testing.T) {
	rng := NewRNG(1)

	if v := (Point(3.5)).Sample(rng); v != 3.5 {
		t.Errorf("Point sample = %v", v)
	}
	if (Point(3.5)).Mean() != 3.5 {
		t.Error("Point mean")
	}

	u := Uniform{Lo: 2, Hi: 4}
	if u.Mean() != 3 {
		t.Errorf("Uniform mean = %v", u.Mean())
	}
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 2 || v > 4 {
			t.Fatalf("Uniform sample %v outside bounds", v)
		}
	}
	if err := (Uniform{Lo: 4, Hi: 2}).Validate(); err == nil {
		t.Error("inverted uniform: expected error")
	}

	tr := Triangular{Lo: 0, Mode: 1, Hi: 4}
	if math.Abs(tr.Mean()-5.0/3) > 1e-12 {
		t.Errorf("Triangular mean = %v", tr.Mean())
	}
	var sum float64
	for i := 0; i < 20000; i++ {
		v := tr.Sample(rng)
		if v < 0 || v > 4 {
			t.Fatalf("Triangular sample %v outside bounds", v)
		}
		sum += v
	}
	if got := sum / 20000; math.Abs(got-tr.Mean()) > 0.05 {
		t.Errorf("Triangular sample mean = %v, want ≈%v", got, tr.Mean())
	}
	if err := (Triangular{Lo: 0, Mode: 5, Hi: 4}).Validate(); err == nil {
		t.Error("mode outside bounds: expected error")
	}
	if err := (Triangular{Lo: 1, Mode: 1, Hi: 1}).Validate(); err == nil {
		t.Error("degenerate triangular: expected error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{5, 1, 3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if !(s.P05 <= s.Median && s.Median <= s.P95) {
		t.Errorf("quantiles unordered: %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample: expected error")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN sample: expected error")
	}
}

func TestMonteCarloDeterministicAndExact(t *testing.T) {
	model := func(draw func(Dist) float64) (float64, error) {
		return draw(Uniform{Lo: 0, Hi: 10}), nil
	}
	a, err := MonteCarlo(5000, 7, model)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(5000, 7, model)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed gave different summaries")
	}
	if math.Abs(a.Mean-5) > 0.2 {
		t.Errorf("uniform mean = %v, want ≈5", a.Mean)
	}

	// A point model collapses the summary.
	s, err := MonteCarlo(100, 1, func(draw func(Dist) float64) (float64, error) {
		return draw(Point(2.5)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 2.5 || s.Max != 2.5 || s.Mean != 2.5 {
		t.Errorf("point summary = %+v", s)
	}

	if _, err := MonteCarlo(0, 1, model); err == nil {
		t.Error("zero samples: expected error")
	}
	if _, err := MonteCarlo(10, 1, nil); err == nil {
		t.Error("nil model: expected error")
	}
}

func TestDefaultCPAStudy(t *testing.T) {
	study, err := DefaultCPAStudy(fab.Node7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := study.Run(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The deterministic default CPA at 7nm is 1748.8 g/cm²; it must fall
	// inside the study's 5-95% band.
	f, err := fab.New(fab.Node7)
	if err != nil {
		t.Fatal(err)
	}
	det, err := f.CPA(units.CM2(1))
	if err != nil {
		t.Fatal(err)
	}
	if det.GramsPerCM2() < s.P05 || det.GramsPerCM2() > s.P95 {
		t.Errorf("deterministic CPA %v outside the uncertainty band [%v, %v]",
			det.GramsPerCM2(), s.P05, s.P95)
	}
	// The band is genuinely wide: the P95/P05 ratio reflects the Table 1
	// ranges (CI alone spans 14x).
	if s.P95/s.P05 < 1.2 {
		t.Errorf("band suspiciously narrow: %v", s.P95/s.P05)
	}
	// Physical lower bound: even the min exceeds MPA's floor.
	if s.Min < 400 {
		t.Errorf("min CPA %v below any plausible value", s.Min)
	}

	if _, err := DefaultCPAStudy("1nm"); err == nil {
		t.Error("unknown node: expected error")
	}
}

func TestCPAStudyValidation(t *testing.T) {
	study, err := DefaultCPAStudy(fab.Node7)
	if err != nil {
		t.Fatal(err)
	}
	study.CI = nil
	if _, err := study.Run(10, 1); err == nil {
		t.Error("nil dist: expected error")
	}
	study, _ = DefaultCPAStudy(fab.Node7)
	study.Yield = Point(0) // invalid yield must surface
	if _, err := study.Run(10, 1); err == nil {
		t.Error("zero yield: expected error")
	}
	study, _ = DefaultCPAStudy(fab.Node7)
	study.EPA = Uniform{Lo: 2, Hi: 1}
	if _, err := study.Run(10, 1); err == nil {
		t.Error("invalid distribution: expected error")
	}
}

func TestEmbodiedBand(t *testing.T) {
	s := Summary{P05: 1000, Median: 1500, P95: 2000}
	lo, mid, hi := EmbodiedBand(s, units.CM2(1))
	if lo.Grams() != 1000 || mid.Grams() != 1500 || hi.Grams() != 2000 {
		t.Errorf("band = %v, %v, %v", lo, mid, hi)
	}
}

// Property: Summarize respects ordering invariants on arbitrary samples.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v)
		}
		s, err := Summarize(samples)
		if err != nil {
			return false
		}
		return s.Min <= s.P05 && s.P05 <= s.Median &&
			s.Median <= s.P95 && s.P95 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
