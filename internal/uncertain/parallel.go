package uncertain

import (
	"context"
	"fmt"

	"act/internal/fab"
	"act/internal/parsweep"
)

// sampleSeed derives the RNG seed of sample i from the study seed with a
// SplitMix64 finalizer. Every sample owns an independent stream, so the
// draw sequence a sample sees does not depend on which worker runs it or
// in what order — the property that makes MonteCarloParallel bit-identical
// across worker counts.
func sampleSeed(seed uint64, i int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MonteCarloParallel runs n evaluations of a model across a bounded worker
// pool and summarizes the results. Unlike MonteCarlo — which threads one
// RNG stream through the samples in order and is therefore inherently
// sequential — each sample draws from its own SplitMix64-derived stream
// keyed by (seed, index). The summary is bit-identical for every worker
// count, including workers=1, which is the sequential reference the golden
// tests compare against. workers ≤ 0 selects GOMAXPROCS.
func MonteCarloParallel(ctx context.Context, workers, n int, seed uint64, model func(draw func(Dist) float64) (float64, error)) (Summary, error) {
	if n < 1 {
		return Summary{}, fmt.Errorf("uncertain: need at least one sample, got %d", n)
	}
	if model == nil {
		return Summary{}, fmt.Errorf("uncertain: nil model")
	}
	samples, err := parsweep.MapN(ctx, workers, n, func(_ context.Context, i int) (float64, error) {
		rng := NewRNG(sampleSeed(seed, i))
		return model(func(d Dist) float64 { return d.Sample(rng) })
	})
	if err != nil {
		return Summary{}, err
	}
	return Summarize(samples)
}

// RunParallel evaluates the study across a bounded worker pool and returns
// the CPA summary in g/cm². Results are bit-identical for any worker
// count; see MonteCarloParallel.
func (s CPAStudy) RunParallel(ctx context.Context, workers, n int, seed uint64) (Summary, error) {
	if err := s.Validate(); err != nil {
		return Summary{}, err
	}
	return MonteCarloParallel(ctx, workers, n, seed, s.sampleCPA)
}

// sampleCPA draws one CPA evaluation of the study (Eq. 5).
func (s CPAStudy) sampleCPA(draw func(Dist) float64) (float64, error) {
	y := draw(s.Yield)
	if !fab.ValidYield(y) {
		return 0, fmt.Errorf("uncertain: sampled yield %v outside (0, 1]", y)
	}
	return (draw(s.CI)*draw(s.EPA) + draw(s.GPA) + draw(s.MPA)) / y, nil
}
