package uncertain

import (
	"context"
	"errors"
	"testing"

	"act/internal/fab"
)

// TestMonteCarloParallelGolden pins the acceptance criterion: the parallel
// Monte Carlo summary is bit-identical to the sequential (workers=1) run
// for every worker count, because sample i's RNG stream depends only on
// (seed, i).
func TestMonteCarloParallelGolden(t *testing.T) {
	model := func(draw func(Dist) float64) (float64, error) {
		return draw(Triangular{Lo: 0, Mode: 2, Hi: 10}) + draw(Uniform{Lo: 0, Hi: 1}), nil
	}
	seq, err := MonteCarloParallel(context.Background(), 1, 5000, 99, model)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		par, err := MonteCarloParallel(context.Background(), workers, 5000, 99, model)
		if err != nil {
			t.Fatal(err)
		}
		if par != seq {
			t.Errorf("workers=%d summary %+v differs from sequential %+v", workers, par, seq)
		}
	}
}

// TestRunParallelGolden repeats the check through the ext8 path: the full
// CPA study over Table 1 ranges.
func TestRunParallelGolden(t *testing.T) {
	study, err := DefaultCPAStudy(fab.Node7)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := study.RunParallel(context.Background(), 1, 20000, 2022)
	if err != nil {
		t.Fatal(err)
	}
	par, err := study.RunParallel(context.Background(), 8, 20000, 2022)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("parallel CPA study %+v differs from sequential %+v", par, seq)
	}
	// Statistically consistent with the single-stream sampler: same
	// distribution, so the medians agree within Monte Carlo noise.
	single, err := study.Run(20000, 2022)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := par.Median / single.Median; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("per-sample-stream median %v far from single-stream %v", par.Median, single.Median)
	}
}

func TestMonteCarloParallelErrors(t *testing.T) {
	boom := errors.New("bad sample")
	_, err := MonteCarloParallel(context.Background(), 4, 100, 1, func(draw func(Dist) float64) (float64, error) {
		if draw(Uniform{Lo: 0, Hi: 1}) > 0.5 {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped model error", err)
	}
	if _, err := MonteCarloParallel(context.Background(), 4, 0, 1, nil); err == nil {
		t.Error("zero samples: expected error")
	}
	if _, err := MonteCarloParallel(context.Background(), 4, 10, 1, nil); err == nil {
		t.Error("nil model: expected error")
	}
}

func TestSampleSeedSpread(t *testing.T) {
	// Adjacent indices and seeds must give distinct, well-mixed seeds.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := sampleSeed(7, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at index %d", i)
		}
		seen[s] = true
	}
	if sampleSeed(1, 0) == sampleSeed(2, 0) {
		t.Error("different study seeds collide at index 0")
	}
}
