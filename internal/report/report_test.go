package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableASCII(t *testing.T) {
	tab := NewTable("Demo", "name", "value").
		AddRow("alpha", "1").
		AddRow("b", "22").
		AddNote("a note")
	out, err := tab.ASCII()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Demo", "name", "alpha", "22", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// Columns align: "alpha" and "b" rows start the value column at the
	// same offset.
	lines := strings.Split(out, "\n")
	var alphaLine, bLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaLine = l
		}
		if strings.HasPrefix(l, "b ") {
			bLine = l
		}
	}
	if strings.Index(alphaLine, "1") != strings.Index(bLine, "22") {
		t.Errorf("columns misaligned:\n%q\n%q", alphaLine, bLine)
	}
}

func TestTableRowWidthError(t *testing.T) {
	tab := NewTable("Bad", "only").AddRow("a", "b")
	if _, err := tab.ASCII(); err == nil {
		t.Error("over-wide row: expected error")
	}
	if _, err := tab.CSV(); err == nil {
		t.Error("over-wide row CSV: expected error")
	}
	if _, err := tab.Markdown(); err == nil {
		t.Error("over-wide row Markdown: expected error")
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tab := NewTable("Pad", "a", "b", "c").AddRow("x")
	out, err := tab.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x,,\n") {
		t.Errorf("short row not padded:\n%s", out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("Q", "name", "note").
		AddRow("a,b", `say "hi"`)
	out, err := tab.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `\"hi\"`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("MD", "col|1", "c2").AddRow("v|al", "x").AddNote("n")
	out, err := tab.Markdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### MD", "| col\\|1 | c2 |", "| --- | --- |", "v\\|al", "*n*"} {
		if !strings.Contains(out, want) {
			t.Errorf("Markdown missing %q:\n%s", want, out)
		}
	}
}

func TestNum(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{-12, "-12"},
		{3.14159, "3.142"},
		{0.00123456, "0.001235"},
		{2048, "2048"},
		{1.5e8, "1.5e+08"},
	}
	for _, c := range cases {
		if got := Num(c.v); got != c.want {
			t.Errorf("Num(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSeriesBars(t *testing.T) {
	s := NewSeries("Embodied", "g CO2").
		Add("cpu", 253).
		Add("dsp", 442)
	out, err := s.Bars(20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Embodied (g CO2)") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("bar chart has %d lines, want 3:\n%s", len(lines), out)
	}
	// The max bar fills the width; the smaller is proportional.
	dspHashes := strings.Count(lines[2], "#")
	cpuHashes := strings.Count(lines[1], "#")
	if dspHashes != 20 {
		t.Errorf("max bar = %d hashes, want 20", dspHashes)
	}
	want := int(math.Round(253.0 / 442 * 20))
	if cpuHashes != want {
		t.Errorf("cpu bar = %d hashes, want %d", cpuHashes, want)
	}
}

func TestSeriesBarsErrors(t *testing.T) {
	s := NewSeries("x", "")
	if _, err := s.Bars(20); err == nil {
		t.Error("empty series: expected error")
	}
	s.Add("neg", -1)
	if _, err := s.Bars(20); err == nil {
		t.Error("negative value: expected error")
	}
	ok := NewSeries("y", "").Add("a", 1)
	if _, err := ok.Bars(0); err == nil {
		t.Error("zero width: expected error")
	}
	nan := NewSeries("z", "").Add("a", math.NaN())
	if _, err := nan.Bars(5); err == nil {
		t.Error("NaN value: expected error")
	}
}

func TestSeriesAllZero(t *testing.T) {
	s := NewSeries("zeros", "").Add("a", 0).Add("b", 0)
	out, err := s.Bars(10)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "#") {
		t.Errorf("all-zero series should render empty bars:\n%s", out)
	}
}
