// Fleet wire format. These are the JSON shapes of a fleet-wide accounting
// shared by `act fleet` and the actd /v1/fleet API: the aggregate summary,
// optional group-by rows and optional top-K emitters, all SI-suffixed
// numbers with a fixed field order. Both producers marshal through Encode,
// so the CLI and the service emit byte-identical documents for the same
// fleet and query.

package report

import (
	"encoding/json"
	"io"
)

// FleetGroupJSON is one group-by row (a region or a process node).
type FleetGroupJSON struct {
	Key            string  `json:"key"`
	Devices        int     `json:"devices"`
	EmbodiedShareG float64 `json:"embodied_share_g"`
	OperationalG   float64 `json:"operational_g"`
	TotalG         float64 `json:"total_g"`
}

// FleetDeviceJSON is one per-device line of the top-K emitter list.
type FleetDeviceJSON struct {
	ID             string  `json:"id"`
	Region         string  `json:"region"`
	Node           string  `json:"node,omitempty"`
	EmbodiedG      float64 `json:"embodied_g"`
	EmbodiedShareG float64 `json:"embodied_share_g"`
	OperationalG   float64 `json:"operational_g"`
	TotalG         float64 `json:"total_g"`
}

// FleetSummaryJSON is the complete fleet accounting document: aggregate
// totals (embodied amortized per Eq. 1's T/LT, operational from regional
// grid intensity), plus the optional group-by and top-K sections when the
// query asked for them.
type FleetSummaryJSON struct {
	Devices        int     `json:"devices"`
	DistinctBoMs   int     `json:"distinct_boms"`
	EmbodiedTotalG float64 `json:"embodied_total_g"`
	EmbodiedShareG float64 `json:"embodied_share_g"`
	OperationalG   float64 `json:"operational_g"`
	TotalG         float64 `json:"total_g"`
	// GroupBy names the grouping dimension ("region", "node" or "class") when
	// Groups is present.
	GroupBy string            `json:"group_by,omitempty"`
	Groups  []FleetGroupJSON  `json:"groups,omitempty"`
	Top     []FleetDeviceJSON `json:"top,omitempty"`
}

// Encode writes v as the canonical result document: two-space indented
// JSON with a trailing newline — the exact encoder behind cmd/act -format
// json, actd's /v1/footprint cache values, and the fleet documents. Every
// producer funnels through here so byte-identity across surfaces holds by
// construction.
func Encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
