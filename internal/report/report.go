// Package report renders the tables and figure series the experiment
// harness regenerates: column-aligned ASCII for terminals, CSV for
// downstream plotting, Markdown for documentation, and horizontal ASCII
// bar charts for figure-shaped data.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes render under the table (provenance, deviations).
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Short rows are padded; long rows are an error at
// render time, so misuse is caught by tests rendering the table.
func (t *Table) AddRow(cells ...string) *Table {
	t.Rows = append(t.Rows, cells)
	return t
}

// AddNote appends a footnote.
func (t *Table) AddNote(note string) *Table {
	t.Notes = append(t.Notes, note)
	return t
}

// normalized returns rows padded to the header width, or an error if any
// row is wider than the header.
func (t *Table) normalized() ([][]string, error) {
	out := make([][]string, len(t.Rows))
	for i, row := range t.Rows {
		if len(row) > len(t.Headers) {
			return nil, fmt.Errorf("report: table %q row %d has %d cells for %d columns",
				t.Title, i, len(row), len(t.Headers))
		}
		padded := make([]string, len(t.Headers))
		copy(padded, row)
		out[i] = padded
	}
	return out, nil
}

// ASCII renders the table column-aligned for terminals.
func (t *Table) ASCII() (string, error) {
	rows, err := t.normalized()
	if err != nil {
		return "", err
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, c := range row {
			if w := len([]rune(c)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String(), nil
}

// CSV renders the table as RFC-4180-style CSV (quoting cells containing
// commas, quotes or newlines). Notes are omitted.
func (t *Table) CSV() (string, error) {
	rows, err := t.normalized()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(strconv.Quote(c))
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String(), nil
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() (string, error) {
	rows, err := t.normalized()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	fmt.Fprintf(&b, "| %s |\n", strings.Join(mapStrings(t.Headers, esc), " | "))
	b.WriteString("|")
	for range t.Headers {
		b.WriteString(" --- |")
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(mapStrings(row, esc), " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String(), nil
}

// Format identifies a rendering format.
type Format string

// Supported formats.
const (
	FormatASCII    Format = "ascii"
	FormatCSV      Format = "csv"
	FormatMarkdown Format = "md"
)

// Render renders the table in the named format.
func (t *Table) Render(f Format) (string, error) {
	switch f {
	case FormatASCII:
		return t.ASCII()
	case FormatCSV:
		return t.CSV()
	case FormatMarkdown:
		return t.Markdown()
	}
	return "", fmt.Errorf("report: unknown format %q (want ascii, csv or md)", f)
}

func mapStrings(in []string, f func(string) string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = f(s)
	}
	return out
}

// Num formats a value compactly for table cells.
func Num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// Point is one bar of a figure-shaped series.
type Point struct {
	Label string
	Value float64
}

// Series is a titled list of labeled values — one panel of a paper figure.
type Series struct {
	Title  string
	Unit   string
	Points []Point
}

// NewSeries creates a series.
func NewSeries(title, unit string) *Series {
	return &Series{Title: title, Unit: unit}
}

// Add appends a point.
func (s *Series) Add(label string, value float64) *Series {
	s.Points = append(s.Points, Point{Label: label, Value: value})
	return s
}

// Bars renders the series as a horizontal ASCII bar chart scaled to the
// given width. Negative values are rejected; an all-zero series renders
// empty bars.
func (s *Series) Bars(width int) (string, error) {
	if width < 1 {
		return "", fmt.Errorf("report: non-positive bar width %d", width)
	}
	if len(s.Points) == 0 {
		return "", fmt.Errorf("report: series %q has no points", s.Title)
	}
	maxLabel, maxVal := 0, 0.0
	for _, p := range s.Points {
		if p.Value < 0 || math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
			return "", fmt.Errorf("report: series %q has unplottable value %v (%s)", s.Title, p.Value, p.Label)
		}
		if l := len([]rune(p.Label)); l > maxLabel {
			maxLabel = l
		}
		if p.Value > maxVal {
			maxVal = p.Value
		}
	}
	var b strings.Builder
	if s.Title != "" {
		title := s.Title
		if s.Unit != "" {
			title += " (" + s.Unit + ")"
		}
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, p := range s.Points {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(p.Value / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "%s%s | %s %s\n",
			p.Label, strings.Repeat(" ", maxLabel-len([]rune(p.Label))),
			strings.Repeat("#", n), Num(p.Value))
	}
	return b.String(), nil
}
