// JSON output format. These are the wire shapes of an assessment shared by
// cmd/act -format json and the actd /v1/footprint response: plain structs
// of SI-suffixed numbers (grams, hours, years) with a fixed field order,
// so the CLI and the service emit byte-identical results for the same
// scenario. Frozen by json_test.go.

package report

import (
	"act/internal/core"
)

// BreakdownItemJSON is one line of the embodied itemization.
type BreakdownItemJSON struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	EmbodiedG float64 `json:"embodied_g"`
}

// AssessmentJSON is the wire form of a core.Assessment (Eq. 1).
type AssessmentJSON struct {
	Device         string              `json:"device"`
	AppHours       float64             `json:"app_hours"`
	LifetimeYears  float64             `json:"lifetime_years"`
	OperationalG   float64             `json:"operational_g"`
	EmbodiedTotalG float64             `json:"embodied_total_g"`
	EmbodiedShareG float64             `json:"embodied_share_g"`
	TotalG         float64             `json:"total_g"`
	Breakdown      []BreakdownItemJSON `json:"breakdown"`
}

// JSONAssessment converts an assessment to its wire form.
func JSONAssessment(a core.Assessment) AssessmentJSON {
	out := AssessmentJSON{
		Device:         a.Device,
		AppHours:       a.AppTime.Hours(),
		LifetimeYears:  a.Lifetime.Hours() / (365.25 * 24),
		OperationalG:   a.Operational.Grams(),
		EmbodiedTotalG: a.EmbodiedTotal.Grams(),
		EmbodiedShareG: a.EmbodiedShare.Grams(),
		TotalG:         a.Total().Grams(),
		Breakdown:      make([]BreakdownItemJSON, 0, len(a.Breakdown.Items)),
	}
	for _, it := range a.Breakdown.Items {
		out.Breakdown = append(out.Breakdown, BreakdownItemJSON{
			Name:      it.Name,
			Kind:      string(it.Kind),
			EmbodiedG: it.Embodied.Grams(),
		})
	}
	return out
}

// PhaseJSON is one life-cycle phase line.
type PhaseJSON struct {
	Phase      string  `json:"phase"`
	EmissionsG float64 `json:"emissions_g"`
	Share      float64 `json:"share"`
}

// LifeCycleJSON is the wire form of a four-phase product report, phases in
// core.Phases() order.
type LifeCycleJSON struct {
	Phases []PhaseJSON `json:"phases"`
	TotalG float64     `json:"total_g"`
}

// JSONLifeCycle converts a phase report to its wire form.
func JSONLifeCycle(r core.PhaseReport) LifeCycleJSON {
	out := LifeCycleJSON{Phases: make([]PhaseJSON, 0, len(r.Phases))}
	for _, p := range core.Phases() {
		out.Phases = append(out.Phases, PhaseJSON{
			Phase:      string(p),
			EmissionsG: r.Phases[p].Grams(),
			Share:      r.Share(p),
		})
	}
	out.TotalG = r.Total().Grams()
	return out
}

// ResultJSON is the complete per-scenario result: the assessment, plus the
// four-phase report when the scenario carries life-cycle data.
type ResultJSON struct {
	AssessmentJSON
	LifeCycle *LifeCycleJSON `json:"life_cycle,omitempty"`
}
