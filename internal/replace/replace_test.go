package replace

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/units"
)

func TestValidate(t *testing.T) {
	if err := DefaultScenario().Validate(); err != nil {
		t.Errorf("default scenario invalid: %v", err)
	}
	bad := []Scenario{
		{HorizonYears: 0, AnnualGain: 1.2},
		{HorizonYears: 10, AnnualGain: 0.9},
		{HorizonYears: 10, AnnualGain: 1.2, DeviceEmbodied: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scenario %d: expected validation error", i)
		}
	}
}

func TestEvaluateDeviceCount(t *testing.T) {
	s := DefaultScenario()
	cases := []struct {
		lifetime float64
		devices  int
	}{
		{1, 10}, {2, 5}, {3, 4}, {4, 3}, {5, 2}, {6, 2}, {9, 2}, {10, 1},
		{15, 1}, // clamped to the horizon
	}
	for _, c := range cases {
		r, err := s.Evaluate(c.lifetime)
		if err != nil {
			t.Fatalf("Evaluate(%v): %v", c.lifetime, err)
		}
		if r.Devices != c.devices {
			t.Errorf("Evaluate(%v) devices = %d, want %d", c.lifetime, r.Devices, c.devices)
		}
		wantEmb := s.DeviceEmbodied.Grams() * float64(c.devices)
		if math.Abs(r.Embodied.Grams()-wantEmb) > 1e-9 {
			t.Errorf("Evaluate(%v) embodied = %v, want %v g", c.lifetime, r.Embodied, wantEmb)
		}
	}
	if _, err := s.Evaluate(0); err == nil {
		t.Error("zero lifetime: expected error")
	}
}

func TestOperationalHandComputed(t *testing.T) {
	// Single 10-year device: 10 years at the base rate.
	s := DefaultScenario()
	r, err := s.Evaluate(10)
	if err != nil {
		t.Fatal(err)
	}
	want := s.BaseAnnualOperational.Grams() * 10
	if math.Abs(r.Operational.Grams()-want) > 1e-6 {
		t.Errorf("10-year operational = %v, want %v g", r.Operational, want)
	}

	// 5-year replacement: first device at base rate for 5 years, second at
	// base/1.21^5 for 5 years.
	r, err = s.Evaluate(5)
	if err != nil {
		t.Fatal(err)
	}
	base := s.BaseAnnualOperational.Grams()
	want = base*5 + base/math.Pow(1.21, 5)*5
	if math.Abs(r.Operational.Grams()-want) > 1e-6 {
		t.Errorf("5-year operational = %v, want %v g", r.Operational, want)
	}
}

func TestEmbodiedVsOperationalTrend(t *testing.T) {
	// Figure 14 (right): longer lifetimes cut embodied but raise
	// operational emissions.
	s := DefaultScenario()
	sweep, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 10 {
		t.Fatalf("sweep has %d points, want 10", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Embodied > sweep[i-1].Embodied {
			t.Errorf("embodied should be non-increasing: L=%v", sweep[i].LifetimeYears)
		}
		if sweep[i].Operational < sweep[i-1].Operational-1e-9 {
			t.Errorf("operational should be non-decreasing: L=%v", sweep[i].LifetimeYears)
		}
	}
}

func TestFigure14Optimum(t *testing.T) {
	// "over a 10 year period we find the optimal lifetime for mobile SoC's
	// to be around 5 years, lowering the overall footprint by 1.26x
	// compared to current average lifetimes of 2-3 years."
	s := DefaultScenario()
	opt, err := s.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if opt.LifetimeYears != 5 {
		t.Errorf("optimal lifetime = %v years, want 5", opt.LifetimeYears)
	}

	imp2, err := s.ImprovementOver(2)
	if err != nil {
		t.Fatal(err)
	}
	imp3, err := s.ImprovementOver(3)
	if err != nil {
		t.Fatal(err)
	}
	avg := (imp2 + imp3) / 2
	if avg < 1.18 || avg < 1 || avg > 1.35 {
		t.Errorf("improvement over 2-3 year lifetimes = %v/%v (avg %v), want ≈1.26", imp2, imp3, avg)
	}
}

func TestHigherGainShortensOptimalLifetime(t *testing.T) {
	// If hardware improves faster, replacing sooner pays off more.
	slow := DefaultScenario()
	slow.AnnualGain = 1.05
	fast := DefaultScenario()
	fast.AnnualGain = 1.6

	so, err := slow.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	fo, err := fast.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if fo.LifetimeYears > so.LifetimeYears {
		t.Errorf("faster gain (L=%v) should not favor longer lifetimes than slower gain (L=%v)",
			fo.LifetimeYears, so.LifetimeYears)
	}
}

func TestZeroOperationalFavorsLongestLifetime(t *testing.T) {
	// With no operational cost, fewer devices is always better.
	s := DefaultScenario()
	s.BaseAnnualOperational = 0
	opt, err := s.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if opt.LifetimeYears != s.HorizonYears {
		t.Errorf("optimal lifetime = %v, want full horizon %v", opt.LifetimeYears, s.HorizonYears)
	}
}

func TestZeroEmbodiedFavorsShortestLifetime(t *testing.T) {
	// With free hardware, always ride the efficiency curve.
	s := DefaultScenario()
	s.DeviceEmbodied = 0
	opt, err := s.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if opt.LifetimeYears != 1 {
		t.Errorf("optimal lifetime = %v, want 1", opt.LifetimeYears)
	}
}

// Property: total footprint is embodied + operational, and all components
// are non-negative for any valid lifetime.
func TestQuickTotals(t *testing.T) {
	s := Scenario{
		HorizonYears:          10,
		AnnualGain:            1.21,
		DeviceEmbodied:        units.Kilograms(17),
		BaseAnnualOperational: units.Kilograms(8),
	}
	f := func(lRaw uint8) bool {
		l := float64(lRaw%12) + 0.5
		r, err := s.Evaluate(l)
		if err != nil {
			return false
		}
		sum := r.Embodied.Grams() + r.Operational.Grams()
		return r.Embodied >= 0 && r.Operational >= 0 &&
			math.Abs(r.Total().Grams()-sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
