package replace_test

import (
	"fmt"

	"act/internal/replace"
)

// ExampleScenario_Optimal reproduces the Figure 14 (right) headline: over
// a 10-year horizon, replacing phones every ~5 years minimizes the total
// footprint.
func ExampleScenario_Optimal() {
	s := replace.DefaultScenario()
	opt, err := s.Optimal()
	if err != nil {
		panic(err)
	}
	imp, err := s.ImprovementOver(2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal lifetime: %.0f years (%d devices over the horizon)\n",
		opt.LifetimeYears, opt.Devices)
	fmt.Printf("improvement over 2-year replacement: %.2fx\n", imp)
	// Output:
	// optimal lifetime: 5 years (2 devices over the horizon)
	// improvement over 2-year replacement: 1.34x
}
