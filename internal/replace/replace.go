// Package replace models device replacement over a fixed horizon, the
// paper's mobile-lifetime study (Section 8, Figure 14 right). Keeping
// hardware longer amortizes embodied carbon over more years, but forgoes
// the annual energy-efficiency improvement of newer hardware, raising
// operational emissions. The package sweeps the replacement period to find
// the footprint-optimal lifetime.
//
// The study fixes workloads, renewable-energy availability and user
// behavior, as the paper does, leaving the single trade-off between
// efficiency gains and embodied overheads.
package replace

import (
	"fmt"
	"math"

	"act/internal/units"
)

// Scenario fixes the study's assumptions.
type Scenario struct {
	// HorizonYears is the total period studied (the paper uses 10 years).
	HorizonYears float64
	// AnnualGain is the yearly energy-efficiency improvement factor of new
	// hardware (the paper measures ≈1.21 across mobile SoC families).
	AnnualGain float64
	// DeviceEmbodied is the embodied carbon of manufacturing one device.
	DeviceEmbodied units.CO2Mass
	// BaseAnnualOperational is the operational carbon per year of a device
	// bought at the start of the horizon; a device bought t years in emits
	// BaseAnnualOperational / AnnualGain^t per year.
	BaseAnnualOperational units.CO2Mass
}

// DefaultScenario is the Figure 14 configuration: a 10-year horizon, the
// 1.21x fleet efficiency trend, and an embodied-to-annual-operational
// ratio calibrated so the optimum lands at the paper's ≈5-year lifetime.
func DefaultScenario() Scenario {
	return Scenario{
		HorizonYears:          10,
		AnnualGain:            1.21,
		DeviceEmbodied:        units.Kilograms(17),
		BaseAnnualOperational: units.Kilograms(10.2),
	}
}

// Validate checks the scenario is usable.
func (s Scenario) Validate() error {
	if s.HorizonYears <= 0 {
		return fmt.Errorf("replace: non-positive horizon %v", s.HorizonYears)
	}
	if s.AnnualGain < 1 {
		return fmt.Errorf("replace: annual efficiency gain %v below 1 (hardware regressing)", s.AnnualGain)
	}
	if s.DeviceEmbodied < 0 || s.BaseAnnualOperational < 0 {
		return fmt.Errorf("replace: negative carbon quantity")
	}
	return nil
}

// Result is the horizon-total footprint for one replacement period.
type Result struct {
	LifetimeYears float64
	Devices       int
	Embodied      units.CO2Mass
	Operational   units.CO2Mass
}

// Total returns embodied plus operational carbon over the horizon.
func (r Result) Total() units.CO2Mass {
	return units.Grams(r.Embodied.Grams() + r.Operational.Grams())
}

// Evaluate computes the horizon-total footprint when every device is
// replaced after lifetimeYears: devices are bought at 0, L, 2L, ...; each
// serves until the next purchase or the end of the horizon; a device
// bought at year t carries the efficiency of its generation (AnnualGain^t).
func (s Scenario) Evaluate(lifetimeYears float64) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if lifetimeYears <= 0 {
		return Result{}, fmt.Errorf("replace: non-positive lifetime %v", lifetimeYears)
	}
	if lifetimeYears > s.HorizonYears {
		lifetimeYears = s.HorizonYears
	}
	var devices int
	var opGrams float64
	for start := 0.0; start < s.HorizonYears-1e-9; start += lifetimeYears {
		devices++
		serve := math.Min(lifetimeYears, s.HorizonYears-start)
		annual := s.BaseAnnualOperational.Grams() / math.Pow(s.AnnualGain, start)
		opGrams += annual * serve
	}
	return Result{
		LifetimeYears: lifetimeYears,
		Devices:       devices,
		Embodied:      units.Grams(s.DeviceEmbodied.Grams() * float64(devices)),
		Operational:   units.Grams(opGrams),
	}, nil
}

// Sweep evaluates integer lifetimes from 1 year up to the horizon, the
// x-axis of Figure 14 (right).
func (s Scenario) Sweep() ([]Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []Result
	for l := 1.0; l <= s.HorizonYears+1e-9; l++ {
		r, err := s.Evaluate(l)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Optimal returns the sweep result with the lowest total footprint; ties
// resolve to the shorter lifetime.
func (s Scenario) Optimal() (Result, error) {
	sweep, err := s.Sweep()
	if err != nil {
		return Result{}, err
	}
	best := sweep[0]
	for _, r := range sweep[1:] {
		if r.Total() < best.Total() {
			best = r
		}
	}
	return best, nil
}

// ImprovementOver returns how much lower the optimal lifetime's total
// footprint is than the footprint at a reference lifetime (e.g. the
// paper's current 2-3 year average), as a ratio ≥ 1.
func (s Scenario) ImprovementOver(referenceYears float64) (float64, error) {
	opt, err := s.Optimal()
	if err != nil {
		return 0, err
	}
	ref, err := s.Evaluate(referenceYears)
	if err != nil {
		return 0, err
	}
	return ref.Total().Grams() / opt.Total().Grams(), nil
}
