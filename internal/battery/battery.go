// Package battery models the component that usually decides a mobile
// device's real lifetime: the battery. The paper's Recycle case study
// extends device lifetimes in the abstract and cites repairability
// programs (Apple Self Service Repair) as an enabler; this package
// quantifies the underlying trade: batteries wear out by charge cycling
// and calendar aging long before the silicon does, and replacing a
// ≈1 kg-CO2e battery is far cheaper, in carbon, than replacing a
// ≈70 kg-CO2e device.
//
// Aging follows the standard empirical shape for Li-ion: total energy
// throughput before end-of-life grows as cycle depth shrinks
// (cycles(DoD) = cycles(100%)·DoD^-k with k ≈ 1.1-1.5), bounded by a
// calendar limit.
package battery

import (
	"fmt"
	"math"

	"act/internal/replace"
	"act/internal/units"
)

// Pack describes a battery pack.
type Pack struct {
	// CapacityWh is the nominal pack capacity.
	CapacityWh float64
	// EmbodiedPerKWh is the manufacturing footprint per kWh of capacity;
	// Li-ion packs run ≈60-100 kg CO2e per kWh.
	EmbodiedPerKWh units.CO2Mass
	// CycleLife100 is the full-depth cycle count to end-of-life (80%
	// state of health).
	CycleLife100 float64
	// DoDExponent is k in cycles(DoD) = CycleLife100·DoD^-k.
	DoDExponent float64
	// CalendarLifeYears bounds lifetime regardless of cycling.
	CalendarLifeYears float64
}

// DefaultPhone returns a phone-class pack: 15 Wh, 75 kg CO2e/kWh
// (≈1.1 kg), 500 full cycles, k = 1.3, 6-year calendar limit.
func DefaultPhone() Pack {
	return Pack{
		CapacityWh:        15,
		EmbodiedPerKWh:    units.Kilograms(75),
		CycleLife100:      500,
		DoDExponent:       1.3,
		CalendarLifeYears: 6,
	}
}

// Validate checks the pack parameters.
func (p Pack) Validate() error {
	if p.CapacityWh <= 0 {
		return fmt.Errorf("battery: non-positive capacity %v Wh", p.CapacityWh)
	}
	if p.EmbodiedPerKWh < 0 {
		return fmt.Errorf("battery: negative embodied intensity")
	}
	if p.CycleLife100 <= 0 {
		return fmt.Errorf("battery: non-positive cycle life %v", p.CycleLife100)
	}
	if p.DoDExponent < 1 {
		return fmt.Errorf("battery: DoD exponent %v below 1 (shallow cycling must not hurt)", p.DoDExponent)
	}
	if p.CalendarLifeYears <= 0 {
		return fmt.Errorf("battery: non-positive calendar life %v", p.CalendarLifeYears)
	}
	return nil
}

// Embodied returns the pack's manufacturing footprint.
func (p Pack) Embodied() (units.CO2Mass, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return units.Grams(p.EmbodiedPerKWh.Grams() * p.CapacityWh / 1000), nil
}

// CyclesAt returns the cycle count to end-of-life at a depth of discharge
// in (0, 1].
func (p Pack) CyclesAt(dod float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if dod <= 0 || dod > 1 {
		return 0, fmt.Errorf("battery: depth of discharge %v outside (0, 1]", dod)
	}
	return p.CycleLife100 * math.Pow(dod, -p.DoDExponent), nil
}

// LifetimeYears returns the pack lifetime for a daily energy draw at a
// cycling depth: the cycle-limited life capped by the calendar limit.
func (p Pack) LifetimeYears(dailyEnergyWh, dod float64) (float64, error) {
	if dailyEnergyWh <= 0 {
		return 0, fmt.Errorf("battery: non-positive daily energy %v Wh", dailyEnergyWh)
	}
	cycles, err := p.CyclesAt(dod)
	if err != nil {
		return 0, err
	}
	// Each "cycle" at depth dod delivers dod·capacity.
	cyclesPerDay := dailyEnergyWh / (p.CapacityWh * dod)
	if cyclesPerDay <= 0 {
		return 0, fmt.Errorf("battery: degenerate cycling")
	}
	years := cycles / cyclesPerDay / 365.25
	return math.Min(years, p.CalendarLifeYears), nil
}

// Strategy is one way to run a device fleet over a horizon.
type Strategy struct {
	Name string
	// DeviceLifetimeYears is how long each device serves.
	DeviceLifetimeYears float64
	// BatteriesPerDevice counts packs consumed per device (1 = original
	// only).
	BatteriesPerDevice int
	// Result is the horizon-total footprint including batteries.
	Result replace.Result
	// BatteryEmbodied is the battery share of the total.
	BatteryEmbodied units.CO2Mass
}

// Total returns the strategy's horizon-total footprint.
func (s Strategy) Total() units.CO2Mass {
	return units.Grams(s.Result.Total().Grams() + s.BatteryEmbodied.Grams())
}

// CompareReplacement contrasts two fleet strategies over the replacement
// scenario's horizon:
//
//   - "replace device": a device is discarded when its battery dies.
//   - "replace battery": batteries are swapped so the device serves
//     targetDeviceYears (capped by the scenario horizon).
//
// The scenario's DeviceEmbodied must exclude the battery; the pack's own
// embodied footprint is accounted here.
func CompareReplacement(s replace.Scenario, p Pack, dailyEnergyWh, dod, targetDeviceYears float64) (device, battery Strategy, err error) {
	if err := s.Validate(); err != nil {
		return Strategy{}, Strategy{}, err
	}
	battLife, err := p.LifetimeYears(dailyEnergyWh, dod)
	if err != nil {
		return Strategy{}, Strategy{}, err
	}
	packEmbodied, err := p.Embodied()
	if err != nil {
		return Strategy{}, Strategy{}, err
	}
	if targetDeviceYears < battLife {
		return Strategy{}, Strategy{}, fmt.Errorf("battery: target device life %v below battery life %v — no swap needed", targetDeviceYears, battLife)
	}
	if targetDeviceYears > s.HorizonYears {
		targetDeviceYears = s.HorizonYears
	}

	// Strategy 1: the device dies with its battery.
	rDevice, err := s.Evaluate(battLife)
	if err != nil {
		return Strategy{}, Strategy{}, err
	}
	device = Strategy{
		Name:                "replace device at battery death",
		DeviceLifetimeYears: battLife,
		BatteriesPerDevice:  1,
		Result:              rDevice,
		BatteryEmbodied:     units.Grams(packEmbodied.Grams() * float64(rDevice.Devices)),
	}

	// Strategy 2: swap batteries to reach the target device life.
	rBattery, err := s.Evaluate(targetDeviceYears)
	if err != nil {
		return Strategy{}, Strategy{}, err
	}
	perDevice := int(math.Ceil(targetDeviceYears / battLife))
	battery = Strategy{
		Name:                "replace battery, keep device",
		DeviceLifetimeYears: targetDeviceYears,
		BatteriesPerDevice:  perDevice,
		Result:              rBattery,
		BatteryEmbodied:     units.Grams(packEmbodied.Grams() * float64(perDevice*rBattery.Devices)),
	}
	return device, battery, nil
}
