package battery

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/replace"
	"act/internal/units"
)

func TestValidate(t *testing.T) {
	if err := DefaultPhone().Validate(); err != nil {
		t.Errorf("default pack invalid: %v", err)
	}
	bad := []Pack{
		{CapacityWh: 0, EmbodiedPerKWh: 1, CycleLife100: 1, DoDExponent: 1, CalendarLifeYears: 1},
		{CapacityWh: 1, EmbodiedPerKWh: -1, CycleLife100: 1, DoDExponent: 1, CalendarLifeYears: 1},
		{CapacityWh: 1, EmbodiedPerKWh: 1, CycleLife100: 0, DoDExponent: 1, CalendarLifeYears: 1},
		{CapacityWh: 1, EmbodiedPerKWh: 1, CycleLife100: 1, DoDExponent: 0.5, CalendarLifeYears: 1},
		{CapacityWh: 1, EmbodiedPerKWh: 1, CycleLife100: 1, DoDExponent: 1, CalendarLifeYears: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("pack %d: expected error", i)
		}
	}
}

func TestEmbodied(t *testing.T) {
	// 15 Wh at 75 kg/kWh = 1.125 kg.
	e, err := DefaultPhone().Embodied()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Kilograms()-1.125) > 1e-9 {
		t.Errorf("embodied = %v, want 1.125 kg", e)
	}
}

func TestCyclesAt(t *testing.T) {
	p := DefaultPhone()
	full, err := p.CyclesAt(1.0)
	if err != nil || full != 500 {
		t.Errorf("cycles at 100%% = %v, %v, want 500", full, err)
	}
	half, err := p.CyclesAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 500 × 0.5^-1.3 ≈ 1231 cycles.
	if math.Abs(half-500*math.Pow(0.5, -1.3)) > 1e-9 {
		t.Errorf("cycles at 50%% = %v", half)
	}
	// Shallow cycling delivers more total throughput.
	if half*0.5 <= full*1.0 {
		t.Errorf("50%% DoD throughput (%v) should beat 100%% (%v)", half*0.5, full)
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := p.CyclesAt(bad); err == nil {
			t.Errorf("DoD %v: expected error", bad)
		}
	}
}

func TestLifetimeYears(t *testing.T) {
	p := DefaultPhone()
	// 7.5 Wh/day at 50% DoD: one half-cycle a day; cycles(0.5) ≈ 1231
	// half-cycles → ≈3.37 years, under the calendar cap.
	l, err := p.LifetimeYears(7.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 500 * math.Pow(0.5, -1.3) / 365.25
	if math.Abs(l-want) > 1e-9 {
		t.Errorf("lifetime = %v, want %v", l, want)
	}
	// Tiny daily draw: calendar-limited.
	l, err = p.LifetimeYears(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if l != p.CalendarLifeYears {
		t.Errorf("calendar-limited lifetime = %v, want %v", l, p.CalendarLifeYears)
	}
	if _, err := p.LifetimeYears(0, 0.5); err == nil {
		t.Error("zero draw: expected error")
	}
}

func TestQuickLifetimeMonotoneInDraw(t *testing.T) {
	// Property: more daily energy, shorter (or equal, when calendar-
	// limited) battery life.
	p := DefaultPhone()
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%40) + 1
		b := float64(bRaw%40) + 1
		if a > b {
			a, b = b, a
		}
		la, err1 := p.LifetimeYears(a, 0.6)
		lb, err2 := p.LifetimeYears(b, 0.6)
		return err1 == nil && err2 == nil && lb <= la+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareReplacement(t *testing.T) {
	// A phone whose battery dies at ≈2.8 years: swapping batteries to
	// reach the Figure 14 optimum (5 years) must beat discarding the
	// device, because a pack costs ≈1.1 kg vs ≈17 kg for the device.
	s := replace.Scenario{
		HorizonYears:          10,
		AnnualGain:            1.21,
		DeviceEmbodied:        units.Kilograms(17),
		BaseAnnualOperational: units.Kilograms(10.2),
	}
	p := DefaultPhone()
	device, batt, err := CompareReplacement(s, p, 9, 0.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if device.BatteriesPerDevice != 1 {
		t.Errorf("device strategy batteries = %d, want 1", device.BatteriesPerDevice)
	}
	if batt.BatteriesPerDevice < 2 {
		t.Errorf("battery strategy batteries = %d, want ≥ 2", batt.BatteriesPerDevice)
	}
	if batt.DeviceLifetimeYears != 5 {
		t.Errorf("battery strategy lifetime = %v, want 5", batt.DeviceLifetimeYears)
	}
	if batt.Total().Grams() >= device.Total().Grams() {
		t.Errorf("battery swap (%v) should beat device replacement (%v)",
			batt.Total(), device.Total())
	}
	// The saving is material (> 10%).
	if r := device.Total().Grams() / batt.Total().Grams(); r < 1.1 {
		t.Errorf("swap saving = %vx, want ≥ 1.1x", r)
	}
	// Totals include the battery share.
	if batt.Total().Grams() <= batt.Result.Total().Grams() {
		t.Error("battery share missing from strategy total")
	}
}

func TestCompareReplacementValidation(t *testing.T) {
	s := replace.DefaultScenario()
	p := DefaultPhone()
	// Target below battery life is rejected.
	if _, _, err := CompareReplacement(s, p, 9, 0.6, 1); err == nil {
		t.Error("target below battery life: expected error")
	}
	// Invalid scenario surfaces.
	bad := s
	bad.HorizonYears = 0
	if _, _, err := CompareReplacement(bad, p, 9, 0.6, 5); err == nil {
		t.Error("invalid scenario: expected error")
	}
	// Invalid pack surfaces.
	badPack := p
	badPack.CapacityWh = 0
	if _, _, err := CompareReplacement(s, badPack, 9, 0.6, 5); err == nil {
		t.Error("invalid pack: expected error")
	}
	// Target beyond the horizon is clamped, not rejected.
	_, batt, err := CompareReplacement(s, p, 9, 0.6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if batt.DeviceLifetimeYears != s.HorizonYears {
		t.Errorf("clamped lifetime = %v, want horizon %v", batt.DeviceLifetimeYears, s.HorizonYears)
	}
}
