package battery_test

import (
	"fmt"

	"act/internal/battery"
	"act/internal/replace"
	"act/internal/units"
)

// ExampleCompareReplacement quantifies the repairability lever: swapping a
// ≈1 kg battery beats discarding a ≈17 kg device when the pack wears out.
func ExampleCompareReplacement() {
	s := replace.Scenario{
		HorizonYears:          10,
		AnnualGain:            1.21,
		DeviceEmbodied:        units.Kilograms(17),
		BaseAnnualOperational: units.Kilograms(10.2),
	}
	device, batt, err := battery.CompareReplacement(s, battery.DefaultPhone(), 9, 0.6, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.0f kg over 10 years\n", device.Name, device.Total().Kilograms())
	fmt.Printf("%s: %.0f kg over 10 years\n", batt.Name, batt.Total().Kilograms())
	// Output:
	// replace device at battery death: 130 kg over 10 years
	// replace battery, keep device: 109 kg over 10 years
}
