package gases_test

import (
	"fmt"

	"act/internal/fab"
	"act/internal/gases"
)

// ExampleInventory_CO2e reconstructs the gas inventory behind a node's GPA
// parameter and shows what abatement destroys.
func ExampleInventory_CO2e() {
	inv, err := gases.For(fab.Node7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("raw inventory: %.0f g CO2e/cm² (%.0f%% abatable)\n",
		inv.RawCO2e().GramsPerCM2(), inv.AbatableShare()*100)
	for _, alpha := range []float64{0.95, 0.99} {
		released, err := inv.CO2e(alpha)
		if err != nil {
			panic(err)
		}
		fmt.Printf("released at %.0f%% abatement: %.0f g/cm²\n", alpha*100, released.GramsPerCM2())
	}
	// Output:
	// raw inventory: 3912 g CO2e/cm² (96% abatable)
	// released at 95% abatement: 350 g/cm²
	// released at 99% abatement: 200 g/cm²
}
