// Package gases opens up the GPA parameter of the ACT model: the per-area
// "gas" footprint of Table 7 is really an inventory of high-GWP process
// gases (PFCs like CF4 and C2F6, NF3 for chamber cleans, SF6, CHF3) plus
// non-abatable direct emissions (N2O, process CO2), scrubbed by point-of-
// use abatement before release.
//
// The package reconstructs a per-node inventory that is exactly consistent
// with Table 7's two characterized abatement points: writing
//
//	GPA(α) = N + A·(1−α)
//
// with N the non-abatable CO2e per cm² and A the abatable raw CO2e per
// cm², the 95% and 99% columns pin both constants per node. The abatable
// mass is split across the PFC species with a representative mix, so users
// can see *which* gases dominate and what a given abatement level destroys
// — detail the paper calls on industry to publish.
package gases

import (
	"fmt"
	"sort"

	"act/internal/fab"
	"act/internal/units"
)

// Gas identifies a fab process gas.
type Gas string

// Process gases.
const (
	CF4  Gas = "CF4"
	C2F6 Gas = "C2F6"
	CHF3 Gas = "CHF3"
	NF3  Gas = "NF3"
	SF6  Gas = "SF6"
	// Direct covers non-abatable direct emissions (N2O, combustion and
	// process CO2), tracked as CO2e.
	Direct Gas = "direct-CO2e"
)

// GWP100 is the 100-year global warming potential (AR5 values, g CO2e per
// g of gas).
var GWP100 = map[Gas]float64{
	CF4:    6630,
	C2F6:   11100,
	CHF3:   12400,
	NF3:    16100,
	SF6:    23500,
	Direct: 1,
}

// abatableMix is the representative split of abatable raw CO2e across PFC
// species in a modern logic fab (etch-dominated CF4/CHF3, clean-dominated
// NF3).
var abatableMix = map[Gas]float64{
	CF4:  0.35,
	NF3:  0.30,
	CHF3: 0.15,
	C2F6: 0.12,
	SF6:  0.08,
}

// Emission is one inventory line: a gas's contribution per wafer area.
type Emission struct {
	Gas Gas
	// RawCO2e is the pre-abatement warming potential per cm².
	RawCO2e units.CarbonPerArea
	// RawMassGrams is the physical gas mass per cm² (RawCO2e / GWP).
	RawMassGrams float64
	// Abatable reports whether point-of-use abatement destroys this line.
	Abatable bool
}

// Inventory is a node's full per-area gas inventory.
type Inventory struct {
	Node fab.NodeParams
	// Lines are sorted by descending raw CO2e.
	Lines []Emission
}

// For reconstructs the inventory of a characterized node from its Table 7
// abatement band.
func For(node fab.Node) (Inventory, error) {
	params, err := fab.Params(node)
	if err != nil {
		return Inventory{}, err
	}
	g95 := params.GPA95.GramsPerCM2()
	g99 := params.GPA99.GramsPerCM2()
	if g99 > g95 {
		return Inventory{}, fmt.Errorf("gases: node %s has inverted abatement band", node)
	}
	// GPA(α) = N + A(1-α): two points pin the abatable raw total A and
	// the non-abatable floor N.
	abatableRaw := (g95 - g99) / (0.99 - 0.95)
	nonAbatable := g99 - abatableRaw*(1-0.99)
	if nonAbatable < 0 {
		return Inventory{}, fmt.Errorf("gases: node %s implies negative non-abatable emissions", node)
	}
	inv := Inventory{Node: params}
	for gas, share := range abatableMix {
		raw := abatableRaw * share
		inv.Lines = append(inv.Lines, Emission{
			Gas:          gas,
			RawCO2e:      units.GramsPerCM2(raw),
			RawMassGrams: raw / GWP100[gas],
			Abatable:     true,
		})
	}
	inv.Lines = append(inv.Lines, Emission{
		Gas:          Direct,
		RawCO2e:      units.GramsPerCM2(nonAbatable),
		RawMassGrams: nonAbatable,
		Abatable:     false,
	})
	sort.Slice(inv.Lines, func(i, j int) bool {
		if inv.Lines[i].RawCO2e != inv.Lines[j].RawCO2e {
			return inv.Lines[i].RawCO2e > inv.Lines[j].RawCO2e
		}
		return inv.Lines[i].Gas < inv.Lines[j].Gas
	})
	return inv, nil
}

// RawCO2e returns the pre-abatement warming potential per cm².
func (inv Inventory) RawCO2e() units.CarbonPerArea {
	var sum float64
	for _, l := range inv.Lines {
		sum += l.RawCO2e.GramsPerCM2()
	}
	return units.GramsPerCM2(sum)
}

// CO2e returns the released warming potential per cm² at an abatement
// effectiveness in [0, 1): abatable lines are destroyed at rate α, the
// direct line passes through.
func (inv Inventory) CO2e(abatement float64) (units.CarbonPerArea, error) {
	if abatement < 0 || abatement >= 1 {
		return 0, fmt.Errorf("gases: abatement %v outside [0, 1)", abatement)
	}
	var sum float64
	for _, l := range inv.Lines {
		if l.Abatable {
			sum += l.RawCO2e.GramsPerCM2() * (1 - abatement)
		} else {
			sum += l.RawCO2e.GramsPerCM2()
		}
	}
	return units.GramsPerCM2(sum), nil
}

// DestroyedCO2e returns the warming potential the abatement system removes
// per cm².
func (inv Inventory) DestroyedCO2e(abatement float64) (units.CarbonPerArea, error) {
	released, err := inv.CO2e(abatement)
	if err != nil {
		return 0, err
	}
	return units.GramsPerCM2(inv.RawCO2e().GramsPerCM2() - released.GramsPerCM2()), nil
}

// AbatableShare returns the fraction of the raw inventory that abatement
// can reach.
func (inv Inventory) AbatableShare() float64 {
	raw := inv.RawCO2e().GramsPerCM2()
	if raw == 0 {
		return 0
	}
	var abatable float64
	for _, l := range inv.Lines {
		if l.Abatable {
			abatable += l.RawCO2e.GramsPerCM2()
		}
	}
	return abatable / raw
}
