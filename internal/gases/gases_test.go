package gases

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/fab"
)

func TestInventoryConsistentWithTable7(t *testing.T) {
	// The reconstructed inventory must reproduce Table 7's GPA at both
	// characterized abatement points, and the fab package's interpolation
	// in between, for every node.
	for _, node := range fab.Nodes() {
		inv, err := For(node.Node)
		if err != nil {
			t.Fatalf("%s: %v", node.Node, err)
		}
		for _, alpha := range []float64{0.95, 0.96, 0.97, 0.98, 0.99} {
			got, err := inv.CO2e(alpha)
			if err != nil {
				t.Fatal(err)
			}
			f, err := fab.New(node.Node, fab.WithAbatement(alpha))
			if err != nil {
				t.Fatal(err)
			}
			want := f.GPA().GramsPerCM2()
			if math.Abs(got.GramsPerCM2()-want) > 1e-6 {
				t.Errorf("%s @ %.0f%%: inventory CO2e = %v, fab GPA = %v",
					node.Node, alpha*100, got.GramsPerCM2(), want)
			}
		}
	}
}

func TestInventoryShape(t *testing.T) {
	inv, err := For(fab.Node7)
	if err != nil {
		t.Fatal(err)
	}
	// Six lines: five PFC species plus the direct floor.
	if len(inv.Lines) != 6 {
		t.Fatalf("inventory has %d lines, want 6", len(inv.Lines))
	}
	// Sorted descending.
	for i := 1; i < len(inv.Lines); i++ {
		if inv.Lines[i].RawCO2e > inv.Lines[i-1].RawCO2e {
			t.Error("inventory not sorted by descending CO2e")
		}
	}
	// Physical masses follow GWP division: the SF6 mass is tiny despite a
	// visible CO2e share.
	for _, l := range inv.Lines {
		want := l.RawCO2e.GramsPerCM2() / GWP100[l.Gas]
		if math.Abs(l.RawMassGrams-want) > 1e-12 {
			t.Errorf("%s mass = %v, want %v", l.Gas, l.RawMassGrams, want)
		}
		if l.Gas != Direct && !l.Abatable {
			t.Errorf("%s should be abatable", l.Gas)
		}
	}
}

func TestAbatableShare(t *testing.T) {
	// At 7nm: A = (350-200)/0.04 = 3750 raw abatable; N = 200-37.5 =
	// 162.5; share = 3750/3912.5.
	inv, err := For(fab.Node7)
	if err != nil {
		t.Fatal(err)
	}
	want := 3750.0 / 3912.5
	if got := inv.AbatableShare(); math.Abs(got-want) > 1e-9 {
		t.Errorf("abatable share = %v, want %v", got, want)
	}
	if got := inv.RawCO2e().GramsPerCM2(); math.Abs(got-3912.5) > 1e-9 {
		t.Errorf("raw CO2e = %v, want 3912.5", got)
	}
}

func TestDestroyedPlusReleasedEqualsRaw(t *testing.T) {
	inv, err := For(fab.Node5)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0, 0.5, 0.95, 0.99} {
		released, err := inv.CO2e(alpha)
		if err != nil {
			t.Fatal(err)
		}
		destroyed, err := inv.DestroyedCO2e(alpha)
		if err != nil {
			t.Fatal(err)
		}
		sum := released.GramsPerCM2() + destroyed.GramsPerCM2()
		if math.Abs(sum-inv.RawCO2e().GramsPerCM2()) > 1e-9 {
			t.Errorf("alpha %v: released+destroyed = %v, raw = %v", alpha, sum, inv.RawCO2e())
		}
	}
}

func TestCO2eValidation(t *testing.T) {
	inv, err := For(fab.Node28)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1.0, 1.5} {
		if _, err := inv.CO2e(bad); err == nil {
			t.Errorf("abatement %v: expected error", bad)
		}
	}
	if _, err := For("1nm"); err == nil {
		t.Error("unknown node: expected error")
	}
}

func TestZeroAbatementReleasesEverything(t *testing.T) {
	// Without abatement the full raw inventory escapes — an order of
	// magnitude above the Table 7 values, which is the point the paper's
	// abatement band makes.
	inv, err := For(fab.Node3)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := inv.CO2e(0)
	if err != nil {
		t.Fatal(err)
	}
	if raw != inv.RawCO2e() {
		t.Errorf("unabated release = %v, want raw %v", raw, inv.RawCO2e())
	}
	p, _ := fab.Params(fab.Node3)
	if raw.GramsPerCM2() < 5*p.GPA95.GramsPerCM2() {
		t.Errorf("raw inventory (%v) should dwarf the abated Table 7 value (%v)", raw, p.GPA95)
	}
}

// Property: released CO2e is non-increasing in abatement.
func TestQuickReleaseMonotone(t *testing.T) {
	inv, err := For(fab.Node10)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 260 // within [0, ~0.98]
		b := float64(bRaw) / 260
		if a > b {
			a, b = b, a
		}
		ra, err1 := inv.CO2e(a)
		rb, err2 := inv.CO2e(b)
		return err1 == nil && err2 == nil && rb <= ra+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
