// Package workloads provides a runnable, synthetic stand-in for the
// Geekbench 5 mobile suite the paper profiles (Section 4.2): seven
// deterministic kernels — HTML rendering, AES encryption, text compression,
// image compression, face detection, speech recognition, and AI image
// classification — plus the FIR filter used by the reconfigurable-hardware
// study (Figure 11).
//
// The kernels exist to exercise the software-profiling input path of the
// carbon model (the application execution time T of Table 1): examples run
// them, measure wall time, and feed the measured profile into the model.
// They are not performance-accurate reproductions of Geekbench; each
// performs the same class of computation with a deterministic input so
// repeated runs are comparable.
package workloads

import (
	"fmt"
	"time"

	"act/internal/core"
	"act/internal/units"
)

// Kernel is one runnable workload.
type Kernel interface {
	// Name returns the kernel's identifier.
	Name() string
	// Run executes one unit of work and returns a checksum that prevents
	// the computation from being optimized away. The same kernel always
	// returns the same checksum.
	Run() uint64
}

// Suite returns the seven Geekbench-style kernels in the paper's order.
func Suite() []Kernel {
	return []Kernel{
		NewHTMLRender(),
		NewAES(),
		NewTextCompress(),
		NewImageCompress(),
		NewFaceDetect(),
		NewSpeechRecog(),
		NewAIClassify(),
	}
}

// ByName returns a kernel from the full registry (the suite plus FIR).
func ByName(name string) (Kernel, error) {
	for _, k := range append(Suite(), NewFIR()) {
		if k.Name() == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown kernel %q", name)
}

// Measurement is the profiled execution of one kernel.
type Measurement struct {
	Kernel   string
	Runs     int
	Duration time.Duration
	Checksum uint64
}

// PerRun returns the mean duration of one run.
func (m Measurement) PerRun() time.Duration {
	if m.Runs == 0 {
		return 0
	}
	return m.Duration / time.Duration(m.Runs)
}

// Profile runs a kernel the given number of times and measures total wall
// time. The checksum of the last run is retained for verification.
func Profile(k Kernel, runs int) (Measurement, error) {
	if k == nil {
		return Measurement{}, fmt.Errorf("workloads: nil kernel")
	}
	if runs <= 0 {
		return Measurement{}, fmt.Errorf("workloads: non-positive run count %d", runs)
	}
	var sum uint64
	start := time.Now()
	for i := 0; i < runs; i++ {
		sum = k.Run()
	}
	return Measurement{
		Kernel:   k.Name(),
		Runs:     runs,
		Duration: time.Since(start),
		Checksum: sum,
	}, nil
}

// ProfileSuite profiles every suite kernel.
func ProfileSuite(runs int) ([]Measurement, error) {
	var out []Measurement
	for _, k := range Suite() {
		m, err := Profile(k, runs)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Usage converts a measured profile into the operational side of the
// carbon model, assuming the device draws avg power for the profiled
// duration on a supply with the given carbon intensity.
func (m Measurement) Usage(avg units.Power, ci units.CarbonIntensity) core.Usage {
	return core.UsageFromPower(avg, m.Duration, ci)
}
