package workloads

import (
	"testing"
	"time"

	"act/internal/units"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 7 {
		t.Fatalf("suite has %d kernels, want 7", len(suite))
	}
	names := map[string]bool{}
	for _, k := range suite {
		if k.Name() == "" {
			t.Error("kernel with empty name")
		}
		if names[k.Name()] {
			t.Errorf("duplicate kernel name %q", k.Name())
		}
		names[k.Name()] = true
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, k := range append(Suite(), NewFIR()) {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			a := k.Run()
			b := k.Run()
			if a != b {
				t.Errorf("%s not deterministic: %x vs %x", k.Name(), a, b)
			}
			if a == 0 {
				t.Errorf("%s checksum is zero; suspicious", k.Name())
			}
			// A fresh instance produces the same checksum (stable inputs).
			fresh, err := ByName(k.Name())
			if err != nil {
				t.Fatal(err)
			}
			if fresh.Run() != a {
				t.Errorf("%s fresh instance differs", k.Name())
			}
		})
	}
}

func TestKernelsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, k := range append(Suite(), NewFIR()) {
		sum := k.Run()
		if prev, ok := seen[sum]; ok {
			t.Errorf("kernels %s and %s share checksum %x", prev, k.Name(), sum)
		}
		seen[sum] = k.Name()
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("aes-encryption")
	if err != nil || k.Name() != "aes-encryption" {
		t.Errorf("ByName(aes-encryption) = %v, %v", k, err)
	}
	if _, err := ByName("ray-tracing"); err == nil {
		t.Error("ByName(unknown): expected error")
	}
}

func TestProfile(t *testing.T) {
	k := NewFIR()
	m, err := Profile(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 3 || m.Kernel != "fir-filter" {
		t.Errorf("measurement = %+v", m)
	}
	if m.Duration <= 0 {
		t.Errorf("non-positive duration %v", m.Duration)
	}
	if m.PerRun() <= 0 || m.PerRun() > m.Duration {
		t.Errorf("PerRun() = %v outside (0, %v]", m.PerRun(), m.Duration)
	}
	if m.Checksum != k.Run() {
		t.Error("profile checksum differs from direct run")
	}

	if _, err := Profile(nil, 1); err == nil {
		t.Error("Profile(nil): expected error")
	}
	if _, err := Profile(k, 0); err == nil {
		t.Error("Profile(runs=0): expected error")
	}
}

func TestPerRunZeroRuns(t *testing.T) {
	if got := (Measurement{}).PerRun(); got != 0 {
		t.Errorf("PerRun on zero measurement = %v, want 0", got)
	}
}

func TestProfileSuite(t *testing.T) {
	ms, err := ProfileSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 7 {
		t.Fatalf("ProfileSuite returned %d measurements, want 7", len(ms))
	}
	for _, m := range ms {
		if m.Duration <= 0 {
			t.Errorf("%s duration %v", m.Kernel, m.Duration)
		}
	}
}

func TestMeasurementUsage(t *testing.T) {
	m := Measurement{Kernel: "x", Runs: 1, Duration: 100 * time.Millisecond}
	u := m.Usage(units.Watts(5), units.GramsPerKWh(300))
	if got := u.Energy.Joules(); got != 0.5 {
		t.Errorf("usage energy = %v J, want 0.5", got)
	}
	if u.Intensity.GramsPerKWh() != 300 {
		t.Errorf("usage intensity = %v, want 300", u.Intensity)
	}
}
