package workloads

import (
	"math"
	"testing"
	"time"
)

// synthetic builds a measurement with an exact per-run duration.
func synthetic(kernel string, perRun time.Duration) Measurement {
	return Measurement{Kernel: kernel, Runs: 1, Duration: perRun}
}

func TestKernelScore(t *testing.T) {
	ref := DefaultReference()
	// Matching the reference scores exactly 1000.
	m := synthetic("aes-encryption", ref["aes-encryption"])
	s, err := KernelScore(m, ref)
	if err != nil || math.Abs(s-1000) > 1e-9 {
		t.Errorf("reference-speed score = %v, %v, want 1000", s, err)
	}
	// Twice as fast doubles the score.
	m = synthetic("aes-encryption", ref["aes-encryption"]/2)
	s, err = KernelScore(m, ref)
	if err != nil || math.Abs(s-2000) > 1e-9 {
		t.Errorf("2x-speed score = %v, %v, want 2000", s, err)
	}
	// Unknown kernels and empty measurements are rejected.
	if _, err := KernelScore(synthetic("ray-tracing", time.Millisecond), ref); err == nil {
		t.Error("unknown kernel: expected error")
	}
	if _, err := KernelScore(Measurement{Kernel: "aes-encryption"}, ref); err == nil {
		t.Error("zero duration: expected error")
	}
}

func TestScoreGeomean(t *testing.T) {
	ref := DefaultReference()
	// One kernel at reference speed, one at 4x: geomean = sqrt(1000*4000).
	ms := []Measurement{
		synthetic("aes-encryption", ref["aes-encryption"]),
		synthetic("text-compression", ref["text-compression"]/4),
	}
	s, err := Score(ms, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(1000 * 4000)
	if math.Abs(s-want) > 1e-6 {
		t.Errorf("score = %v, want %v", s, want)
	}
	if _, err := Score(nil, ref); err == nil {
		t.Error("no measurements: expected error")
	}
}

func TestDefaultReferenceCoversSuite(t *testing.T) {
	ref := DefaultReference()
	for _, k := range Suite() {
		if _, ok := ref[k.Name()]; !ok {
			t.Errorf("reference missing suite kernel %q", k.Name())
		}
	}
}

func TestScoreLiveSuite(t *testing.T) {
	// Profile the real suite once and score it: the result must be a
	// positive, finite score (hardware-dependent, so no absolute bound).
	ms, err := ProfileSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Score(ms, DefaultReference())
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		t.Errorf("live score = %v", s)
	}
}
