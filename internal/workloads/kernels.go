package workloads

import (
	"bytes"
	"compress/flate"
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"math"
	"strings"
)

// lcg is a tiny deterministic generator so every kernel's input is
// reproducible without seeding global state.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = (*l)*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func (l *lcg) bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(l.next() >> 33)
	}
	return out
}

func (l *lcg) floats(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(l.next()>>11)/float64(1<<53)*2 - 1
	}
	return out
}

// checksum folds a byte slice into a FNV-style digest.
func checksum(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func checksumFloats(fs []float64) uint64 {
	var h uint64 = 14695981039346656037
	for _, f := range fs {
		h ^= math.Float64bits(f)
		h *= 1099511628211
	}
	return h
}

// htmlRender tokenizes and lays out a synthetic HTML document: it parses
// tags, builds a node tree, and accumulates a box-model layout pass.
type htmlRender struct{ doc string }

// NewHTMLRender builds the HTML-rendering kernel.
func NewHTMLRender() Kernel {
	var b strings.Builder
	b.WriteString("<html><body>")
	rng := lcg(1)
	for i := 0; i < 400; i++ {
		switch rng.next() % 4 {
		case 0:
			fmt.Fprintf(&b, "<div class=\"c%d\"><p>paragraph %d with some text</p></div>", i%7, i)
		case 1:
			fmt.Fprintf(&b, "<span>inline %d</span>", i)
		case 2:
			fmt.Fprintf(&b, "<ul><li>item a%d</li><li>item b%d</li></ul>", i, i)
		default:
			fmt.Fprintf(&b, "<table><tr><td>%d</td><td>%d</td></tr></table>", i, i*3)
		}
	}
	b.WriteString("</body></html>")
	return &htmlRender{doc: b.String()}
}

func (h *htmlRender) Name() string { return "html5-rendering" }

func (h *htmlRender) Run() uint64 {
	// Tokenize.
	type node struct {
		tag      string
		depth    int
		textLen  int
		children int
	}
	var stack []int
	var nodes []node
	s := h.doc
	for i := 0; i < len(s); {
		if s[i] == '<' {
			j := strings.IndexByte(s[i:], '>')
			if j < 0 {
				break
			}
			tag := s[i+1 : i+j]
			if strings.HasPrefix(tag, "/") {
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
			} else {
				name, _, _ := strings.Cut(tag, " ")
				nodes = append(nodes, node{tag: name, depth: len(stack)})
				if len(stack) > 0 {
					nodes[stack[len(stack)-1]].children++
				}
				stack = append(stack, len(nodes)-1)
			}
			i += j + 1
		} else {
			j := strings.IndexByte(s[i:], '<')
			if j < 0 {
				j = len(s) - i
			}
			if len(stack) > 0 {
				nodes[stack[len(stack)-1]].textLen += j
			}
			i += j
		}
	}
	// Layout pass: accumulate box widths per depth.
	var h64 uint64 = 1469598103934665603
	for _, n := range nodes {
		w := 960 >> uint(n.depth%5)
		box := w*(n.textLen+1) + 13*n.children
		h64 ^= uint64(box) * uint64(len(n.tag)+1)
		h64 *= 1099511628211
	}
	return h64
}

// aesKernel encrypts a buffer with AES-CTR, the Geekbench AES workload's
// computation class.
type aesKernel struct {
	block cipher.Block
	iv    []byte
	buf   []byte
}

// NewAES builds the AES-encryption kernel.
func NewAES() Kernel {
	rng := lcg(2)
	key := rng.bytes(32)
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("workloads: aes: " + err.Error()) // unreachable: 32-byte key
	}
	return &aesKernel{block: block, iv: rng.bytes(16), buf: rng.bytes(64 << 10)}
}

func (a *aesKernel) Name() string { return "aes-encryption" }

func (a *aesKernel) Run() uint64 {
	dst := make([]byte, len(a.buf))
	cipher.NewCTR(a.block, a.iv).XORKeyStream(dst, a.buf)
	return checksum(dst)
}

// textCompress deflates a synthetic natural-text corpus.
type textCompress struct{ text []byte }

// NewTextCompress builds the text-compression kernel.
func NewTextCompress() Kernel {
	words := []string{"carbon", "footprint", "sustainable", "architecture",
		"embodied", "operational", "hardware", "lifetime", "the", "of",
		"and", "to", "renewable", "energy", "fabrication", "silicon"}
	var b bytes.Buffer
	rng := lcg(3)
	for b.Len() < 96<<10 {
		b.WriteString(words[rng.next()%uint64(len(words))])
		if rng.next()%12 == 0 {
			b.WriteString(".\n")
		} else {
			b.WriteByte(' ')
		}
	}
	return &textCompress{text: b.Bytes()}
}

func (t *textCompress) Name() string { return "text-compression" }

func (t *textCompress) Run() uint64 {
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		panic("workloads: flate: " + err.Error()) // unreachable: valid level
	}
	if _, err := w.Write(t.text); err != nil {
		panic("workloads: flate write: " + err.Error()) // bytes.Buffer cannot fail
	}
	w.Close()
	return checksum(out.Bytes()) ^ uint64(out.Len())
}

// imageCompress runs a DCT-quantization pipeline (the JPEG computation
// class) over a synthetic grayscale image.
type imageCompress struct {
	img  []float64
	side int
}

// NewImageCompress builds the image-compression kernel.
func NewImageCompress() Kernel {
	const side = 128
	img := make([]float64, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			// Smooth gradients plus texture, JPEG-friendly content.
			img[y*side+x] = 128 + 100*math.Sin(float64(x)/9)*math.Cos(float64(y)/13) +
				20*math.Sin(float64(x*y)/97)
		}
	}
	return &imageCompress{img: img, side: side}
}

func (ic *imageCompress) Name() string { return "image-compression" }

func (ic *imageCompress) Run() uint64 {
	const n = 8
	side := ic.side
	// Precompute DCT basis.
	var basis [n][n]float64
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			basis[k][i] = math.Cos(math.Pi * float64(k) * (2*float64(i) + 1) / (2 * n))
		}
	}
	var h uint64 = 1099511628211
	coeffs := make([]float64, n*n)
	for by := 0; by+n <= side; by += n {
		for bx := 0; bx+n <= side; bx += n {
			// 2D DCT of the block.
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					var sum float64
					for y := 0; y < n; y++ {
						for x := 0; x < n; x++ {
							sum += ic.img[(by+y)*side+bx+x] * basis[u][y] * basis[v][x]
						}
					}
					coeffs[u*n+v] = sum
				}
			}
			// Quantize and fold.
			for i, c := range coeffs {
				q := int64(c / (8 + float64(i)))
				h ^= uint64(q)
				h *= 16777619
			}
		}
	}
	return h
}

// faceDetect runs a Viola-Jones-style pass: integral image plus Haar-like
// rectangle features over a sliding window.
type faceDetect struct {
	img  []float64
	side int
}

// NewFaceDetect builds the face-detection kernel.
func NewFaceDetect() Kernel {
	const side = 160
	rng := lcg(5)
	img := rng.floats(side * side)
	// Plant a few bright blobs so the detector has structure to find.
	for _, c := range []struct{ x, y int }{{40, 40}, {100, 60}, {70, 120}} {
		for dy := -8; dy <= 8; dy++ {
			for dx := -8; dx <= 8; dx++ {
				img[(c.y+dy)*side+c.x+dx] += 2 - 0.02*float64(dx*dx+dy*dy)
			}
		}
	}
	return &faceDetect{img: img, side: side}
}

func (fd *faceDetect) Name() string { return "face-detection" }

func (fd *faceDetect) Run() uint64 {
	side := fd.side
	// Integral image.
	ii := make([]float64, (side+1)*(side+1))
	for y := 1; y <= side; y++ {
		var row float64
		for x := 1; x <= side; x++ {
			row += fd.img[(y-1)*side+x-1]
			ii[y*(side+1)+x] = ii[(y-1)*(side+1)+x] + row
		}
	}
	rect := func(x, y, w, h int) float64 {
		return ii[(y+h)*(side+1)+x+w] - ii[y*(side+1)+x+w] -
			ii[(y+h)*(side+1)+x] + ii[y*(side+1)+x]
	}
	// Haar features: two-rectangle horizontal and vertical, sliding window.
	var detections int
	var h uint64 = 2166136261
	const win = 16
	for y := 0; y+win <= side; y += 2 {
		for x := 0; x+win <= side; x += 2 {
			horiz := rect(x, y, win, win/2) - rect(x, y+win/2, win, win/2)
			vert := rect(x, y, win/2, win) - rect(x+win/2, y, win/2, win)
			score := math.Abs(horiz) + math.Abs(vert)
			if score > 30 {
				detections++
				h ^= uint64(x*31 + y)
				h *= 16777619
			}
		}
	}
	return h ^ uint64(detections)
}

// speechRecog runs the front half of a classic speech pipeline: framed FFT
// power spectra followed by DTW alignment against a template.
type speechRecog struct {
	signal   []float64
	template [][]float64
}

// NewSpeechRecog builds the speech-recognition kernel.
func NewSpeechRecog() Kernel {
	const n = 8192
	sig := make([]float64, n)
	for i := range sig {
		tm := float64(i) / 8000
		sig[i] = math.Sin(2*math.Pi*440*tm) + 0.5*math.Sin(2*math.Pi*880*tm+0.3) +
			0.25*math.Sin(2*math.Pi*1760*tm)
	}
	k := &speechRecog{signal: sig}
	k.template = k.spectrogram(sig[:n/2])
	return k
}

func (sr *speechRecog) Name() string { return "speech-recognition" }

// fft computes an in-place radix-2 FFT over interleaved re/im pairs.
func fft(re, im []float64) {
	n := len(re)
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for i := 0; i < n; i += length {
			cr, ci := 1.0, 0.0
			for j := 0; j < length/2; j++ {
				ur, ui := re[i+j], im[i+j]
				vr := re[i+j+length/2]*cr - im[i+j+length/2]*ci
				vi := re[i+j+length/2]*ci + im[i+j+length/2]*cr
				re[i+j], im[i+j] = ur+vr, ui+vi
				re[i+j+length/2], im[i+j+length/2] = ur-vr, ui-vi
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

// spectrogram frames the signal and returns per-frame power spectra.
func (sr *speechRecog) spectrogram(sig []float64) [][]float64 {
	const frame = 256
	var out [][]float64
	for off := 0; off+frame <= len(sig); off += frame / 2 {
		re := make([]float64, frame)
		im := make([]float64, frame)
		copy(re, sig[off:off+frame])
		fft(re, im)
		spec := make([]float64, frame/2)
		for i := range spec {
			spec[i] = re[i]*re[i] + im[i]*im[i]
		}
		out = append(out, spec)
	}
	return out
}

func (sr *speechRecog) Run() uint64 {
	spec := sr.spectrogram(sr.signal)
	// DTW against the template.
	n, m := len(spec), len(sr.template)
	dist := func(a, b []float64) float64 {
		var d float64
		for i := range a {
			diff := a[i] - b[i]
			d += diff * diff
		}
		return d
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			c := dist(spec[i-1], sr.template[j-1])
			cur[j] = c + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
		}
		prev, cur = cur, prev
	}
	return math.Float64bits(prev[m])
}

// aiClassify runs a small dense neural network forward pass: three GEMM
// layers with ReLU, the computation class of mobile AI inference.
type aiClassify struct {
	input            []float64
	w1, w2, w3       []float64
	d0, d1, d2, dOut int
}

// NewAIClassify builds the AI-classification kernel.
func NewAIClassify() Kernel {
	rng := lcg(7)
	k := &aiClassify{d0: 256, d1: 192, d2: 128, dOut: 10}
	k.input = rng.floats(k.d0)
	k.w1 = rng.floats(k.d0 * k.d1)
	k.w2 = rng.floats(k.d1 * k.d2)
	k.w3 = rng.floats(k.d2 * k.dOut)
	return k
}

func (ai *aiClassify) Name() string { return "ai-image-classification" }

func gemv(w, x []float64, rows, cols int, relu bool) []float64 {
	out := make([]float64, rows)
	for r := 0; r < rows; r++ {
		var sum float64
		row := w[r*cols : (r+1)*cols]
		for c, v := range x {
			sum += row[c] * v
		}
		if relu && sum < 0 {
			sum = 0
		}
		out[r] = sum
	}
	return out
}

func (ai *aiClassify) Run() uint64 {
	// Batch of 16 inputs derived from the base input.
	var h uint64 = 14695981039346656037
	for b := 0; b < 16; b++ {
		x := make([]float64, ai.d0)
		for i, v := range ai.input {
			x[i] = v * (1 + float64(b)/16)
		}
		h1 := gemv(ai.w1, x, ai.d1, ai.d0, true)
		h2 := gemv(ai.w2, h1, ai.d2, ai.d1, true)
		out := gemv(ai.w3, h2, ai.dOut, ai.d2, false)
		// Argmax.
		best := 0
		for i, v := range out {
			if v > out[best] {
				best = i
			}
		}
		h ^= uint64(best+1) * checksumFloats(out[:1])
		h *= 1099511628211
	}
	return h
}

// fir runs a 64-tap finite impulse response filter, the third application
// of the Figure 11 flexibility study.
type fir struct {
	signal []float64
	taps   []float64
}

// NewFIR builds the FIR-filter kernel.
func NewFIR() Kernel {
	rng := lcg(11)
	k := &fir{signal: rng.floats(32 << 10), taps: make([]float64, 64)}
	// Windowed-sinc low-pass taps.
	for i := range k.taps {
		x := float64(i) - 31.5
		sinc := 1.0
		if x != 0 {
			sinc = math.Sin(0.3*math.Pi*x) / (0.3 * math.Pi * x)
		}
		window := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/63)
		k.taps[i] = sinc * window
	}
	return k
}

func (f *fir) Name() string { return "fir-filter" }

func (f *fir) Run() uint64 {
	out := make([]float64, len(f.signal)-len(f.taps))
	for i := range out {
		var acc float64
		for j, t := range f.taps {
			acc += t * f.signal[i+j]
		}
		out[i] = acc
	}
	return checksumFloats(out)
}
