package workloads

import (
	"fmt"
	"math"
	"time"
)

// Scoring turns measured kernel runtimes into a Geekbench-style score so a
// live host can be placed on the same axes as the SoC catalog: a machine
// matching the reference durations scores 1000, one twice as fast scores
// 2000, and the aggregate is the geometric mean across kernels — the same
// aggregation the paper uses for its mobile suite.

// Reference maps kernel names to the per-run duration of the score-1000
// reference machine.
type Reference map[string]time.Duration

// DefaultReference returns a fixed reference calibrated to a mid-2010s
// mobile-class core, so typical hosts land in the catalog's score range.
func DefaultReference() Reference {
	return Reference{
		"html5-rendering":         2 * time.Millisecond,
		"aes-encryption":          1 * time.Millisecond,
		"text-compression":        6 * time.Millisecond,
		"image-compression":       25 * time.Millisecond,
		"face-detection":          1 * time.Millisecond,
		"speech-recognition":      8 * time.Millisecond,
		"ai-image-classification": 12 * time.Millisecond,
	}
}

// KernelScore returns one kernel's score against the reference.
func KernelScore(m Measurement, ref Reference) (float64, error) {
	want, ok := ref[m.Kernel]
	if !ok {
		return 0, fmt.Errorf("workloads: kernel %q has no reference duration", m.Kernel)
	}
	per := m.PerRun()
	if per <= 0 {
		return 0, fmt.Errorf("workloads: measurement for %q has no duration", m.Kernel)
	}
	return 1000 * float64(want) / float64(per), nil
}

// Score aggregates measurements into the suite score: the geometric mean
// of the per-kernel scores. Every measured kernel must have a reference.
func Score(ms []Measurement, ref Reference) (float64, error) {
	if len(ms) == 0 {
		return 0, fmt.Errorf("workloads: no measurements to score")
	}
	var logSum float64
	for _, m := range ms {
		s, err := KernelScore(m, ref)
		if err != nil {
			return 0, err
		}
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(ms))), nil
}
