package experiments

// Experiments comparing ACT with published LCAs: Figure 4, Table 12,
// Figures 16-17.

import (
	"fmt"

	"act/internal/platforms"
	"act/internal/report"
)

func init() {
	register(Experiment{ID: "fig4", Title: "iPhone 11 / iPad IC embodied carbon: ACT vs LCA", Run: figure4})
	register(Experiment{ID: "table12", Title: "Per-IC LCA vs ACT comparison", Run: table12})
	register(Experiment{ID: "fig16", Title: "Fairphone 3 LCA breakdown", Run: figure16})
	register(Experiment{ID: "fig17", Title: "Dell R740 LCA breakdown", Run: figure17})
}

func figure4() ([]*report.Table, error) {
	comps, err := platforms.Figure4()
	if err != nil {
		return nil, err
	}
	summary := report.NewTable("Figure 4: IC embodied carbon, top-down LCA vs bottom-up ACT",
		"platform", "LCA estimate (kg)", "ACT estimate (kg)", "gap")
	var tables []*report.Table
	for _, c := range comps {
		gap := (c.LCAEstimate.Grams() - c.ACTEstimate.Grams()) / c.ACTEstimate.Grams()
		summary.AddRow(c.Platform, report.Num(c.LCAEstimate.Kilograms()),
			report.Num(c.ACTEstimate.Kilograms()), fmt.Sprintf("%.0f%%", gap*100))

		b := report.NewTable(fmt.Sprintf("Figure 4: %s ACT breakdown", c.Platform),
			"category", "kg CO2", "share")
		for _, cat := range []platforms.Category{
			platforms.CategorySoC, platforms.CategoryCamera, platforms.CategoryOtherIC,
			platforms.CategoryPackaging, platforms.CategoryFlash, platforms.CategoryDRAM,
		} {
			m := c.Breakdown[cat]
			b.AddRow(string(cat), report.Num(m.Kilograms()),
				fmt.Sprintf("%.0f%%", m.Grams()/c.ACTEstimate.Grams()*100))
		}
		tables = append(tables, b)
	}
	summary.AddNote("paper: iPhone 23 vs 17 kg (28%), iPad 28 vs 21 kg (33%)")
	return append([]*report.Table{summary}, tables...), nil
}

func table12() ([]*report.Table, error) {
	rows, err := platforms.Table12()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 12: per-IC LCA vs ACT",
		"IC", "device", "actual node", "LCA node", "LCA (kg)",
		"ACT node 1", "ACT1 (kg)", "paper ACT1 (kg)",
		"ACT node 2", "ACT2 (kg)", "paper ACT2 (kg)")
	for _, r := range rows {
		lca := ""
		if r.LCACO2 > 0 {
			lca = report.Num(r.LCACO2.Kilograms())
		}
		t.AddRow(r.IC, r.Device, r.ActualNode, r.LCANode, lca,
			r.ACTNode1, report.Num(r.ACT1.Kilograms()), report.Num(r.PaperACT1.Kilograms()),
			r.ACTNode2, report.Num(r.ACT2.Kilograms()), report.Num(r.PaperACT2.Kilograms()))
	}
	t.AddNote("ACT columns computed by this library; paper columns as published. Gaps catalogued in EXPERIMENTS.md")
	return []*report.Table{t}, nil
}

func sharesTable(title string, shares []platforms.Share) *report.Table {
	t := report.NewTable(title, "component", "share")
	for _, s := range shares {
		t.AddRow(s.Label, fmt.Sprintf("%.0f%%", s.Fraction*100))
		for _, sub := range s.Sub {
			t.AddRow("  · "+sub.Label, fmt.Sprintf("%.0f%% of %s", sub.Fraction*100, s.Label))
		}
	}
	return t
}

func figure16() ([]*report.Table, error) {
	t := sharesTable("Figure 16: Fairphone 3 LCA breakdown", platforms.Fairphone3Breakdown())
	t.AddNote(fmt.Sprintf("ICs account for ≈%.0f%% of embodied emissions", platforms.Fairphone3ICShare*100))
	return []*report.Table{t}, nil
}

func figure17() ([]*report.Table, error) {
	t := sharesTable("Figure 17: Dell R740 LCA breakdown", platforms.DellR740Breakdown())
	t.AddNote(fmt.Sprintf("ICs account for ≈%.0f%% of embodied emissions", platforms.DellR740ICShare*100))
	return []*report.Table{t}, nil
}
