package experiments

// Experiments for the design-space and case-study artifacts: Figure 8,
// Table 4, Figures 9-15.

import (
	"fmt"
	"time"

	"act/internal/accel"
	"act/internal/intensity"
	"act/internal/metrics"
	"act/internal/provision"
	"act/internal/replace"
	"act/internal/report"
	"act/internal/soc"
	"act/internal/ssdlife"
	"act/internal/units"
)

func init() {
	register(Experiment{ID: "fig8", Title: "Mobile SoC carbon-optimization design space", Run: figure8})
	register(Experiment{ID: "table4", Title: "CPU/GPU/DSP mobile AI provisioning", Run: table4})
	register(Experiment{ID: "fig9", Title: "Provisioning under carbon metrics", Run: figure9})
	register(Experiment{ID: "fig10", Title: "Renewable energy during manufacturing and use", Run: figure10})
	register(Experiment{ID: "fig11", Title: "CPU vs ASIC vs FPGA flexibility study", Run: figure11})
	register(Experiment{ID: "fig12", Title: "NVDLA MAC sweep under PPA and carbon metrics", Run: figure12})
	register(Experiment{ID: "fig13", Title: "QoS-driven and area-constrained accelerator design", Run: figure13})
	register(Experiment{ID: "fig14", Title: "Mobile lifetime extension over a 10-year horizon", Run: figure14})
	register(Experiment{ID: "fig15", Title: "SSD over-provisioning, lifetime and second life", Run: figure15})
}

func figure8() ([]*report.Table, error) {
	chips := soc.Catalog()
	main := report.NewTable("Figure 8(a-c): mobile SoC characteristics",
		"SoC", "family", "node (nm)", "die (mm²)", "TDP (W)", "geomean score",
		"suite energy (J)", "embodied (kg CO2)")
	for _, s := range chips {
		e, err := s.Embodied()
		if err != nil {
			return nil, err
		}
		main.AddRow(s.Name, s.Family, report.Num(s.NodeNM), report.Num(s.Die.MM2()),
			report.Num(s.TDP.Watts()), report.Num(s.GeomeanScore()),
			report.Num(s.Energy().Joules()), report.Num(e.Kilograms()))
	}

	cands, err := soc.Candidates(chips)
	if err != nil {
		return nil, err
	}
	winners := report.NewTable("Figure 8(d): optimal SoC per metric", "metric", "winner", "paper")
	paper := map[metrics.Metric]string{
		metrics.EDP:  "Kirin 990",
		metrics.EDAP: "Snapdragon 865",
		metrics.CEP:  "Kirin 980",
		metrics.C2EP: "Kirin 980",
	}
	for _, m := range metrics.All() {
		best, err := metrics.Best(m, cands)
		if err != nil {
			return nil, err
		}
		winners.AddRow(string(m), best.Candidate.Name, paper[m])
	}
	sorted, err := soc.SortedByEmbodied()
	if err != nil {
		return nil, err
	}
	winners.AddRow("embodied carbon", sorted[0].Name, "Snapdragon 835")

	perWorkload := report.NewTable("Figure 8(a) detail: per-workload scores",
		append([]string{"SoC"}, workloadHeaders()...)...)
	for _, s := range chips {
		row := []string{s.Name}
		for _, w := range soc.Workloads() {
			score, err := s.WorkloadScore(w)
			if err != nil {
				return nil, err
			}
			row = append(row, report.Num(score))
		}
		perWorkload.AddRow(row...)
	}
	return []*report.Table{main, winners, perWorkload}, nil
}

// workloadHeaders returns the seven workload column labels.
func workloadHeaders() []string {
	var out []string
	for _, w := range soc.Workloads() {
		out = append(out, string(w))
	}
	return out
}

func table4() ([]*report.Table, error) {
	rows, err := provision.DefaultTable4()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 4: mobile AI provisioning (US grid, default fab)",
		"hardware", "latency (ms)", "power (W)", "OPCF (µg CO2)", "ECF (g CO2)")
	for _, r := range rows {
		ecf := report.Num(r.TotalECF().Grams())
		if r.CoproECF > 0 {
			ecf = fmt.Sprintf("%s (+%s host)", report.Num(r.CoproECF.Grams()), report.Num(r.HostECF.Grams()))
		}
		t.AddRow(r.Config.Name,
			report.Num(float64(r.Config.Latency)/float64(time.Millisecond)),
			report.Num(r.Config.Power.Watts()),
			report.Num(r.OPCF.Grams()*1e6),
			ecf)
	}
	t.AddNote("GPU/DSP rows follow the paper's prose (its Table 4 swaps the two labels); see EXPERIMENTS.md")

	f, err := provision.DefaultFab()
	if err != nil {
		return nil, err
	}
	be := report.NewTable("Break-even lifetime utilization (3-year lifetime)",
		"co-processor", "US grid", "solar")
	for _, name := range []string{provision.DSP, provision.GPU} {
		us, err := provision.BreakEvenUtilization(name, f, intensity.USGrid, units.Years(3))
		if err != nil {
			return nil, err
		}
		solar, err := provision.BreakEvenUtilization(name, f, intensity.Renewable, units.Years(3))
		if err != nil {
			return nil, err
		}
		be.AddRow(name, fmt.Sprintf("%.1f%%", us*100), fmt.Sprintf("%.1f%%", solar*100))
	}
	return []*report.Table{t, be}, nil
}

func figure9() ([]*report.Table, error) {
	f, err := provision.DefaultFab()
	if err != nil {
		return nil, err
	}
	cands, err := provision.Candidates(f, intensity.USGrid)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 9: carbon metrics normalized to the CPU design",
		"hardware", "CDP", "C2EP", "CEP", "CE2P")
	cols := []metrics.Metric{metrics.CDP, metrics.C2EP, metrics.CEP, metrics.CE2P}
	normalized := map[metrics.Metric][]metrics.Scored{}
	for _, m := range cols {
		n, err := metrics.Normalized(m, cands, provision.CPU)
		if err != nil {
			return nil, err
		}
		normalized[m] = n
	}
	for i, c := range cands {
		row := []string{c.Name}
		for _, m := range cols {
			row = append(row, report.Num(normalized[m][i].Value))
		}
		t.AddRow(row...)
	}
	t.AddNote("CPU optimal for embodied-centric CDP/C2EP; DSP optimal for operational-centric CEP/CE2P")
	return []*report.Table{t}, nil
}

func figure10() ([]*report.Table, error) {
	s := provision.DefaultScenario()
	mk := func(title string, sweep map[string][]provision.ScenarioPoint, steps []provision.IntensityStep) (*report.Table, error) {
		t := report.NewTable(title,
			"intensity", "hardware", "embodied/inf (µg)", "operational/inf (µg)", "total (µg)", "winner")
		for _, step := range steps {
			pts := sweep[step.Label]
			win, err := provision.Winner(pts)
			if err != nil {
				return nil, err
			}
			for _, p := range pts {
				mark := ""
				if p.Config.Name == win.Config.Name {
					mark = "*"
				}
				t.AddRow(step.Label, p.Config.Name,
					report.Num(p.EmbodiedPerInf.Grams()*1e6),
					report.Num(p.OperationalPerInf.Grams()*1e6),
					report.Num(p.Total().Grams()*1e6), mark)
			}
		}
		return t, nil
	}
	useSweep, err := s.SweepUse()
	if err != nil {
		return nil, err
	}
	top, err := mk("Figure 10 (top): varying use-phase carbon intensity (Taiwan-grid fab)", useSweep, provision.UseSteps())
	if err != nil {
		return nil, err
	}
	fabSweep, err := s.SweepFab()
	if err != nil {
		return nil, err
	}
	bottom, err := mk("Figure 10 (bottom): varying fab carbon intensity (renewable use)", fabSweep, provision.FabSteps())
	if err != nil {
		return nil, err
	}
	return []*report.Table{top, bottom}, nil
}

func figure11() ([]*report.Table, error) {
	results, err := provision.FlexStudy(nil)
	if err != nil {
		return nil, err
	}
	perApp := report.NewTable("Figure 11: CPU vs ASIC (Accel) vs FPGA",
		"substrate", "app", "latency (ms)", "energy (mJ)")
	for _, r := range results {
		for _, p := range r.Points {
			perApp.AddRow(string(r.Substrate), string(p.App),
				report.Num(float64(p.Latency)/float64(time.Millisecond)),
				report.Num(p.Energy.Millijoules()))
		}
	}
	summary := report.NewTable("Figure 11 summary",
		"substrate", "geomean latency (ms)", "geomean energy (mJ)", "embodied (g CO2)")
	for _, r := range results {
		summary.AddRow(string(r.Substrate),
			report.Num(float64(r.GeomeanLatency())/float64(time.Millisecond)),
			report.Num(r.GeomeanEnergy().Millijoules()),
			report.Num(r.Embodied.Grams()))
	}
	cands, err := provision.FlexCandidates(results)
	if err != nil {
		return nil, err
	}
	winners := report.NewTable("Figure 11: metric winners (multi-workload)", "metric", "winner")
	for _, m := range metrics.CarbonAware() {
		best, err := metrics.Best(m, cands)
		if err != nil {
			return nil, err
		}
		winners.AddRow(string(m), best.Candidate.Name)
	}
	winners.AddNote("FPGA wins every carbon metric for multi-workload SoCs; for AI-only designs the ASIC wins")
	return []*report.Table{perApp, summary, winners}, nil
}

func figure12() ([]*report.Table, error) {
	m, err := accel.NewModel()
	if err != nil {
		return nil, err
	}
	sweep, err := m.Sweep(accel.Process16nm)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 12: 16nm NVDLA-style NPU MAC sweep",
		"MACs", "area (mm²)", "FPS", "energy/frame (mJ)", "embodied (g CO2)")
	for _, d := range sweep {
		e, err := d.Embodied()
		if err != nil {
			return nil, err
		}
		t.AddRow(report.Num(float64(d.MACs)), report.Num(d.Area().MM2()),
			report.Num(d.FPS()), report.Num(d.EnergyPerFrame().Millijoules()),
			report.Num(e.Grams()))
	}

	optima := report.NewTable("Figure 12: optimal MAC count per target", "target", "MACs", "paper")
	perf, err := m.PerfOptimal(accel.Process16nm)
	if err != nil {
		return nil, err
	}
	optima.AddRow("performance", report.Num(float64(perf.MACs)), "2048")
	paper := map[metrics.Metric]string{
		metrics.EDP: "2048", metrics.CDP: "1024", metrics.CE2P: "512",
		metrics.CEP: "256", metrics.C2EP: "128",
	}
	for _, metric := range []metrics.Metric{metrics.EDP, metrics.CDP, metrics.CE2P, metrics.CEP, metrics.C2EP} {
		d, err := m.MetricOptimal(accel.Process16nm, metric)
		if err != nil {
			return nil, err
		}
		optima.AddRow(string(metric), report.Num(float64(d.MACs)), paper[metric])
	}
	return []*report.Table{t, optima}, nil
}

func figure13() ([]*report.Table, error) {
	m, err := accel.NewModel()
	if err != nil {
		return nil, err
	}
	qos, err := m.QoSOptimal(accel.Process16nm, 30)
	if err != nil {
		return nil, err
	}
	qosE, err := qos.Embodied()
	if err != nil {
		return nil, err
	}
	perf, err := m.PerfOptimal(accel.Process16nm)
	if err != nil {
		return nil, err
	}
	perfE, err := perf.Embodied()
	if err != nil {
		return nil, err
	}
	energy, err := m.EnergyOptimal(accel.Process16nm)
	if err != nil {
		return nil, err
	}
	energyE, err := energy.Embodied()
	if err != nil {
		return nil, err
	}
	left := report.NewTable("Figure 13 (left): 30 FPS QoS target, 16nm",
		"design", "MACs", "FPS", "embodied (g CO2)", "vs carbon-opt")
	left.AddRow("carbon-optimal @QoS", report.Num(float64(qos.MACs)), report.Num(qos.FPS()),
		report.Num(qosE.Grams()), "1.00x")
	left.AddRow("perf-optimal", report.Num(float64(perf.MACs)), report.Num(perf.FPS()),
		report.Num(perfE.Grams()), fmt.Sprintf("%.2fx", perfE.Grams()/qosE.Grams()))
	left.AddRow("energy-optimal", report.Num(float64(energy.MACs)), report.Num(energy.FPS()),
		report.Num(energyE.Grams()), fmt.Sprintf("%.2fx", energyE.Grams()/qosE.Grams()))
	left.AddNote("paper: 256 MACs at ≈16 g CO2; perf/energy optima incur 3.3x/1.4x")

	right := report.NewTable("Figure 13 (right): area budgets, 28nm vs 16nm (Jevons paradox)",
		"budget", "28nm pick", "28nm embodied (g)", "16nm pick", "16nm embodied (g)", "16nm/28nm")
	for _, budget := range []units.Area{units.MM2(1), units.MM2(2)} {
		d28, err := m.BudgetOptimal(accel.Process28nm, budget)
		if err != nil {
			return nil, err
		}
		e28, err := d28.Embodied()
		if err != nil {
			return nil, err
		}
		d16, err := m.BudgetOptimal(accel.Process16nm, budget)
		if err != nil {
			return nil, err
		}
		e16, err := d16.Embodied()
		if err != nil {
			return nil, err
		}
		right.AddRow(budget.String(),
			fmt.Sprintf("%d MACs", d28.MACs), report.Num(e28.Grams()),
			fmt.Sprintf("%d MACs", d16.MACs), report.Num(e16.Grams()),
			fmt.Sprintf("%.2fx", e16.Grams()/e28.Grams()))
	}
	right.AddNote("paper: +33% at 1mm², +28% at 2mm²")
	return []*report.Table{left, right}, nil
}

func figure14() ([]*report.Table, error) {
	left := report.NewTable("Figure 14 (left): annual energy-efficiency improvement",
		"family", "annual improvement")
	for _, fam := range soc.Families() {
		c, err := soc.EfficiencyCAGR(fam)
		if err != nil {
			return nil, err
		}
		left.AddRow(fam, fmt.Sprintf("%.2fx", c))
	}
	fleet, err := soc.FleetEfficiencyCAGR()
	if err != nil {
		return nil, err
	}
	left.AddRow("geomean", fmt.Sprintf("%.2fx", fleet))
	left.AddNote("paper: 1.21x average")

	s := replace.DefaultScenario()
	sweep, err := s.Sweep()
	if err != nil {
		return nil, err
	}
	right := report.NewTable("Figure 14 (right): 10-year footprint vs replacement lifetime",
		"lifetime (years)", "devices", "embodied (kg)", "operational (kg)", "total (kg)")
	for _, r := range sweep {
		right.AddRow(report.Num(r.LifetimeYears), report.Num(float64(r.Devices)),
			report.Num(r.Embodied.Kilograms()), report.Num(r.Operational.Kilograms()),
			report.Num(r.Total().Kilograms()))
	}
	opt, err := s.Optimal()
	if err != nil {
		return nil, err
	}
	imp2, err := s.ImprovementOver(2)
	if err != nil {
		return nil, err
	}
	imp3, err := s.ImprovementOver(3)
	if err != nil {
		return nil, err
	}
	right.AddNote(fmt.Sprintf("optimal lifetime %v years; %.2fx / %.2fx better than 2 / 3-year replacement (paper: ≈5 years, 1.26x)",
		opt.LifetimeYears, imp2, imp3))
	return []*report.Table{left, right}, nil
}

func figure15() ([]*report.Table, error) {
	d := ssdlife.DefaultDrive()
	grid := ssdlife.DefaultGrid()
	pts, err := d.Sweep(grid, 2)
	if err != nil {
		return nil, err
	}
	top := report.NewTable("Figure 15 (top): write amplification and lifetime vs over-provisioning",
		"over-provisioning", "write amplification", "lifetime (years)")
	for _, p := range pts {
		top.AddRow(fmt.Sprintf("%.0f%%", p.PF*100), report.Num(p.WA), report.Num(p.LifetimeYears))
	}

	bottom := report.NewTable("Figure 15 (bottom): effective embodied carbon per mission",
		"over-provisioning", "first life (2y) drives", "first life embodied (x)", "second life (4y) drives", "second life embodied (x)")
	base, err := d.Evaluate(0.04, 2)
	if err != nil {
		return nil, err
	}
	for _, pf := range grid {
		p2, err := d.Evaluate(pf, 2)
		if err != nil {
			return nil, err
		}
		p4, err := d.Evaluate(pf, 4)
		if err != nil {
			return nil, err
		}
		bottom.AddRow(fmt.Sprintf("%.0f%%", pf*100),
			report.Num(float64(p2.Replacements)),
			report.Num(p2.EffectiveEmbodied.Grams()/base.Embodied.Grams()),
			report.Num(float64(p4.Replacements)),
			report.Num(p4.EffectiveEmbodied.Grams()/base.Embodied.Grams()))
	}
	first, err := d.Optimal(grid, 2)
	if err != nil {
		return nil, err
	}
	second, err := d.Optimal(grid, 4)
	if err != nil {
		return nil, err
	}
	ratio := (first.EffectiveEmbodied.Grams() / 2) / (second.EffectiveEmbodied.Grams() / 4)
	bottom.AddNote(fmt.Sprintf("optimal OP: first life %.0f%%, second life %.0f%%; per-year embodied reduction %.2fx (paper: 16%%, 34%%, 1.8x)",
		first.PF*100, second.PF*100, ratio))
	return []*report.Table{top, bottom}, nil
}
