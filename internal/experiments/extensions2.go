package experiments

// Further extension experiments: gas-level GPA accounting and Monte Carlo
// uncertainty over the Table 1 parameter ranges.

import (
	"context"
	"fmt"

	"act/internal/fab"
	"act/internal/gases"
	"act/internal/report"
	"act/internal/uncertain"
	"act/internal/units"
)

func init() {
	register(Experiment{ID: "ext7", Title: "Per-gas inventory behind the GPA parameter", Run: extGases})
	register(Experiment{ID: "ext8", Title: "Monte Carlo uncertainty over Table 1 ranges", Run: extUncertainty})
}

func extGases() ([]*report.Table, error) {
	inv, err := gases.For(fab.Node7)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("7nm gas inventory (raw, pre-abatement)",
		"gas", "GWP100", "raw CO2e (g/cm²)", "physical mass (mg/cm²)", "abatable")
	for _, l := range inv.Lines {
		ab := "yes"
		if !l.Abatable {
			ab = "no"
		}
		t.AddRow(string(l.Gas), report.Num(gases.GWP100[l.Gas]),
			report.Num(l.RawCO2e.GramsPerCM2()),
			report.Num(l.RawMassGrams*1e3), ab)
	}
	t.AddNote(fmt.Sprintf("abatable share %.0f%%; raw total %s per cm²",
		inv.AbatableShare()*100, inv.RawCO2e()))

	bands := report.NewTable("Released CO2e per cm² vs abatement effectiveness",
		"node", "unabated", "90%", "95% (Table 7)", "99% (Table 7)")
	for _, n := range fab.ScalarNodes() {
		inv, err := gases.For(n.Node)
		if err != nil {
			return nil, err
		}
		row := []string{string(n.Node)}
		for _, alpha := range []float64{0, 0.90, 0.95, 0.99} {
			r, err := inv.CO2e(alpha)
			if err != nil {
				return nil, err
			}
			row = append(row, report.Num(r.GramsPerCM2()))
		}
		bands.AddRow(row...)
	}
	bands.AddNote("the 95%/99% columns reproduce Table 7 exactly; unabated fabs would emit an order of magnitude more")
	return []*report.Table{t, bands}, nil
}

func extUncertainty() ([]*report.Table, error) {
	t := report.NewTable("CPA uncertainty (20k Monte Carlo samples over Table 1 ranges)",
		"node", "P05 (g/cm²)", "median", "P95", "deterministic default", "P95/P05")
	for _, node := range []fab.Node{fab.Node28, fab.Node10, fab.Node7, fab.Node3} {
		study, err := uncertain.DefaultCPAStudy(node)
		if err != nil {
			return nil, err
		}
		// Per-sample RNG streams keep this bit-identical to a workers=1 run
		// no matter how many cores execute it.
		s, err := study.RunParallel(context.Background(), 0, 20000, 2022)
		if err != nil {
			return nil, err
		}
		f, err := fab.New(node)
		if err != nil {
			return nil, err
		}
		det, err := f.CPA(units.CM2(1))
		if err != nil {
			return nil, err
		}
		t.AddRow(string(node), report.Num(s.P05), report.Num(s.Median),
			report.Num(s.P95), report.Num(det.GramsPerCM2()),
			fmt.Sprintf("%.2fx", s.P95/s.P05))
	}
	t.AddNote("fab energy supply and yield dominate the band; point estimates hide a ≈1.5-2x spread")
	return []*report.Table{t}, nil
}
