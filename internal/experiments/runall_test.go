package experiments

import (
	"context"
	"strings"
	"testing"
)

// renderAll flattens results to one ASCII blob per experiment for byte
// comparison.
func renderAll(t *testing.T, results []Result) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, r := range results {
		var sb strings.Builder
		sb.WriteString(r.Experiment.ID + "\n")
		for _, tab := range r.Tables {
			s, err := tab.ASCII()
			if err != nil {
				t.Fatalf("%s: %v", r.Experiment.ID, err)
			}
			sb.WriteString(s + "\n")
		}
		out[i] = sb.String()
	}
	return out
}

// TestRunAllGolden pins the acceptance criterion for the experiment
// harness: the parallel RunAll renders byte-identically to a sequential
// loop over All(), in the same order.
func TestRunAllGolden(t *testing.T) {
	var seq []Result
	for _, e := range All() {
		tables, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		seq = append(seq, Result{Experiment: e, Tables: tables})
	}
	wantBlobs := renderAll(t, seq)

	for _, workers := range []int{1, 4} {
		got, err := RunAll(context.Background(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(seq))
		}
		gotBlobs := renderAll(t, got)
		for i := range wantBlobs {
			if gotBlobs[i] != wantBlobs[i] {
				t.Errorf("workers=%d: %s output differs from sequential run",
					workers, got[i].Experiment.ID)
			}
		}
	}
}

func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(ctx, 2); err == nil {
		t.Error("cancelled context: expected error")
	}
}
