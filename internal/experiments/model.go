package experiments

// Experiments over the model's data substrates: Figures 1, 6, 7 and
// Tables 1, 2, 5-11.

import (
	"fmt"

	"act/internal/fab"
	"act/internal/intensity"
	"act/internal/memdb"
	"act/internal/metrics"
	"act/internal/platforms"
	"act/internal/report"
	"act/internal/storagedb"
)

func init() {
	register(Experiment{ID: "fig1", Title: "iPhone 3 vs iPhone 11 life-cycle emission split", Run: figure1})
	register(Experiment{ID: "fig6", Title: "Fab energy, gas and carbon per area across 28nm-3nm", Run: figure6})
	register(Experiment{ID: "fig7", Title: "DRAM / SSD / HDD embodied carbon per GB", Run: figure7})
	register(Experiment{ID: "table1", Title: "ACT model input parameters", Run: table1})
	register(Experiment{ID: "table2", Title: "Sustainability optimization metrics and use cases", Run: table2})
	register(Experiment{ID: "table5", Title: "Carbon intensity of energy sources", Run: table5})
	register(Experiment{ID: "table6", Title: "Carbon intensity of regional grids", Run: table6})
	register(Experiment{ID: "table7", Title: "EPA and GPA per process node", Run: table7})
	register(Experiment{ID: "table8", Title: "Raw-material procurement carbon", Run: table8})
	register(Experiment{ID: "table9", Title: "DRAM embodied carbon per GB", Run: table9})
	register(Experiment{ID: "table10", Title: "SSD embodied carbon per GB", Run: table10})
	register(Experiment{ID: "table11", Title: "HDD embodied carbon per GB", Run: table11})
}

func figure1() ([]*report.Table, error) {
	t := report.NewTable("Figure 1: life-cycle emission shares",
		"device", "total (kg CO2)", "manufacturing", "use", "transport+EOL")
	for _, s := range []platforms.LifeCycleSplit{platforms.IPhone3Split(), platforms.IPhone11Split()} {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		t.AddRow(s.Name, report.Num(s.Total.Kilograms()),
			fmt.Sprintf("%.0f%%", s.Manufacturing*100),
			fmt.Sprintf("%.0f%%", s.Use*100),
			fmt.Sprintf("%.0f%%", s.TransportEOL*100))
	}
	t.AddNote("published Apple product environmental report splits; the dominating phase shifts from use to manufacturing")
	return []*report.Table{t}, nil
}

func figure6() ([]*report.Table, error) {
	top := report.NewTable("Figure 6 (top/middle): per-node fab intensities",
		"node", "EPA (kWh/cm²)", "GPA@95% (g/cm²)", "GPA@99% (g/cm²)")
	for _, n := range fab.ScalarNodes() {
		top.AddRow(string(n.Node), report.Num(n.EPA.KWhPerCM2()),
			report.Num(n.GPA95.GramsPerCM2()), report.Num(n.GPA99.GramsPerCM2()))
	}

	bottom := report.NewTable("Figure 6 (bottom): carbon per area across nodes",
		"node", "lower: solar fab (g/cm²)", "default: Taiwan+25% renewable (g/cm²)", "upper: Taiwan grid (g/cm²)")
	pts, err := fab.CPAAcrossNodes()
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		bottom.AddRow(string(p.Node.Node), report.Num(p.Lower.GramsPerCM2()),
			report.Num(p.Default.GramsPerCM2()), report.Num(p.Upper.GramsPerCM2()))
	}
	bottom.AddNote("abatement 99% for the lower bound, 95% otherwise; yield 0.875")
	return []*report.Table{top, bottom}, nil
}

func figure7() ([]*report.Table, error) {
	dram := report.NewTable("Figure 7 (left): DRAM carbon per GB",
		"technology", "g CO2/GB", "characterization")
	for _, e := range memdb.ByCPS() {
		src := "component-level"
		if e.DeviceLevel {
			src = "device-level"
		}
		dram.AddRow(e.Description, report.Num(e.CPS.GramsPerGB()), src)
	}

	ssd := report.NewTable("Figure 7 (center): SSD carbon per GB",
		"technology", "g CO2/GB", "characterization")
	for _, e := range storagedb.ByCPS(storagedb.SSD) {
		src := "component-level"
		if e.DeviceLevel {
			src = "device-level"
		}
		ssd.AddRow(e.Description, report.Num(e.CPS.GramsPerGB()), src)
	}

	hdd := report.NewTable("Figure 7 (right): HDD carbon per GB",
		"technology", "g CO2/GB", "class")
	for _, e := range storagedb.ByCPS(storagedb.HDD) {
		class := "consumer"
		if e.Enterprise {
			class = "enterprise"
		}
		hdd.AddRow(e.Description, report.Num(e.CPS.GramsPerGB()), class)
	}
	return []*report.Table{dram, ssd, hdd}, nil
}

func table1() ([]*report.Table, error) {
	t := report.NewTable("Table 1: ACT model input parameters",
		"parameter", "description", "range / default")
	rows := [][3]string{
		{"T", "application execution time", "from SW profiling (internal/workloads)"},
		{"LT", "hardware lifetime", "1-10 years"},
		{"Nr", "number of ICs", "from HW design (core.Device.ICCount)"},
		{"Kr", "IC packaging footprint", "0.15 kg CO2 per IC"},
		{"A", "IC area", "from HW design (cm²)"},
		{"p", "process node", "3-28 nm (internal/fab)"},
		{"MPA", "raw-material procurement", "0.50 kg CO2 per cm²"},
		{"EPA", "fab energy per area", "0.8-3.5 kWh per cm²"},
		{"CIuse", "use-phase carbon intensity", "30-700 g CO2 per kWh"},
		{"CIfab", "fab carbon intensity", "30-700 g CO2 per kWh"},
		{"GPA", "fab gas emissions per area", "0.1-0.5 kg CO2 per cm²"},
		{"Y", "fab yield", "0-1 (default 0.875)"},
		{"CPA", "fab carbon per area", "0.1-0.4 kg CO2 per cm² upward with EUV"},
		{"E_DRAM", "DRAM embodied carbon", "0-0.6 kg CO2 per GB"},
		{"E_SSD", "SSD embodied carbon", "0-0.03 kg CO2 per GB"},
		{"E_HDD", "HDD embodied carbon", "0-0.12 kg CO2 per GB"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2])
	}
	return []*report.Table{t}, nil
}

func table2() ([]*report.Table, error) {
	t := report.NewTable("Table 2: optimization metrics", "metric", "use case")
	for _, m := range metrics.All() {
		uc, err := metrics.UseCase(m)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(m), uc)
	}
	return []*report.Table{t}, nil
}

func table5() ([]*report.Table, error) {
	t := report.NewTable("Table 5: carbon intensity of energy sources",
		"source", "g CO2/kWh", "energy-payback (months)")
	for _, s := range intensity.Sources() {
		t.AddRow(string(s.Source), report.Num(s.Intensity.GramsPerKWh()), report.Num(s.PaybackMonths))
	}
	return []*report.Table{t}, nil
}

func table6() ([]*report.Table, error) {
	t := report.NewTable("Table 6: carbon intensity of regional grids",
		"region", "g CO2/kWh", "dominant source")
	for _, r := range intensity.Regions() {
		t.AddRow(string(r.Region), report.Num(r.Intensity.GramsPerKWh()), r.Dominant)
	}
	return []*report.Table{t}, nil
}

func table7() ([]*report.Table, error) {
	t := report.NewTable("Table 7: application-processor fab intensities",
		"node", "energy/area (kWh/cm²)", "gas@95% (g/cm²)", "gas@99% (g/cm²)")
	for _, n := range fab.Nodes() {
		t.AddRow(string(n.Node), report.Num(n.EPA.KWhPerCM2()),
			report.Num(n.GPA95.GramsPerCM2()), report.Num(n.GPA99.GramsPerCM2()))
	}
	return []*report.Table{t}, nil
}

func table8() ([]*report.Table, error) {
	t := report.NewTable("Table 8: raw-material procurement", "source", "g CO2/cm²")
	t.AddRow("semiconductor LCA (Boyd)", report.Num(fab.MPA.GramsPerCM2()))
	return []*report.Table{t}, nil
}

func table9() ([]*report.Table, error) {
	t := report.NewTable("Table 9: DRAM embodied carbon", "technology", "g CO2/GB")
	for _, e := range memdb.Entries() {
		t.AddRow(e.Description, report.Num(e.CPS.GramsPerGB()))
	}
	return []*report.Table{t}, nil
}

func table10() ([]*report.Table, error) {
	t := report.NewTable("Table 10: SSD embodied carbon", "technology", "g CO2/GB")
	for _, e := range storagedb.SSDs() {
		t.AddRow(e.Description, report.Num(e.CPS.GramsPerGB()))
	}
	return []*report.Table{t}, nil
}

func table11() ([]*report.Table, error) {
	t := report.NewTable("Table 11: HDD embodied carbon", "technology", "type", "g CO2/GB")
	for _, e := range storagedb.HDDs() {
		class := "Consumer"
		if e.Enterprise {
			class = "Enterprise"
		}
		t.AddRow(e.Description, class, report.Num(e.CPS.GramsPerGB()))
	}
	return []*report.Table{t}, nil
}
