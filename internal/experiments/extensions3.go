package experiments

// Battery-replacement extension experiment.

import (
	"fmt"

	"act/internal/battery"
	"act/internal/replace"
	"act/internal/report"
)

func init() {
	register(Experiment{ID: "ext9", Title: "Battery replacement vs device replacement", Run: extBattery})
}

func extBattery() ([]*report.Table, error) {
	s := replace.DefaultScenario()
	p := battery.DefaultPhone()

	aging := report.NewTable("Phone battery aging (15 Wh pack, 500 full cycles, k=1.3)",
		"depth of discharge", "cycles to EOL", "lifetime @ 9 Wh/day (years)")
	for _, dod := range []float64{0.3, 0.5, 0.6, 0.8, 1.0} {
		cycles, err := p.CyclesAt(dod)
		if err != nil {
			return nil, err
		}
		life, err := p.LifetimeYears(9, dod)
		if err != nil {
			return nil, err
		}
		aging.AddRow(fmt.Sprintf("%.0f%%", dod*100), report.Num(cycles), report.Num(life))
	}

	device, batt, err := battery.CompareReplacement(s, p, 9, 0.6, 5)
	if err != nil {
		return nil, err
	}
	cmp := report.NewTable("10-year fleet strategies (device 17 kg embodied, battery ≈1.1 kg)",
		"strategy", "device life (y)", "devices", "batteries/device", "total (kg)")
	for _, st := range []battery.Strategy{device, batt} {
		cmp.AddRow(st.Name, report.Num(st.DeviceLifetimeYears),
			report.Num(float64(st.Result.Devices)),
			report.Num(float64(st.BatteriesPerDevice)),
			report.Num(st.Total().Kilograms()))
	}
	cmp.AddNote(fmt.Sprintf("battery swaps reach the Figure 14 lifetime optimum at %.2fx lower footprint",
		device.Total().Grams()/batt.Total().Grams()))
	return []*report.Table{aging, cmp}, nil
}
