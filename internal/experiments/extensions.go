package experiments

// Extension experiments: the Figure 1 sustainability directions the paper
// names but does not evaluate, quantified with this library's extension
// substrates (wafer/chiplet/dvfs/grid/datacenter/usage).

import (
	"fmt"
	"time"

	"act/internal/chiplet"
	"act/internal/datacenter"
	"act/internal/dvfs"
	"act/internal/fab"
	"act/internal/grid"
	"act/internal/intensity"
	"act/internal/report"
	"act/internal/units"
	"act/internal/usage"
	"act/internal/wafer"
)

func init() {
	register(Experiment{ID: "ext1", Title: "Wafer-level packing overhead vs Eq. 4", Run: extWafer})
	register(Experiment{ID: "ext2", Title: "Chiplet vs monolithic embodied crossover", Run: extChiplet})
	register(Experiment{ID: "ext3", Title: "Carbon-aware DVFS operating points", Run: extDVFS})
	register(Experiment{ID: "ext4", Title: "Carbon-aware scheduling on a dispatched grid", Run: extScheduling})
	register(Experiment{ID: "ext5", Title: "Datacenter fleet right-sizing", Run: extFleet})
	register(Experiment{ID: "ext6", Title: "Duty-cycle profiles under time-varying intensity", Run: extUsage})
}

func extWafer() ([]*report.Table, error) {
	w := wafer.Default300()
	f, err := fab.New(fab.Node7)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Wafer-level accounting vs per-area Eq. 4 (7nm, 300mm wafer)",
		"die (mm²)", "dies/wafer", "packing eff.", "Eq. 4 (g)", "wafer model (g)", "overhead")
	for _, mm2 := range []float64{25, 50, 100, 200, 400, 800} {
		die := units.MM2(mm2)
		dpw, err := w.DiesPerWafer(die)
		if err != nil {
			return nil, err
		}
		eff, err := w.PackingEfficiency(die)
		if err != nil {
			return nil, err
		}
		flat, err := f.Embodied(die)
		if err != nil {
			return nil, err
		}
		per, err := w.EmbodiedPerGoodDie(f, die)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.Num(mm2), report.Num(float64(dpw)),
			fmt.Sprintf("%.0f%%", eff*100),
			report.Num(flat.Grams()), report.Num(per.Grams()),
			fmt.Sprintf("+%.0f%%", (per.Grams()/flat.Grams()-1)*100))
	}
	return []*report.Table{t}, nil
}

func extChiplet() ([]*report.Table, error) {
	p := chiplet.DefaultParams()
	f, err := fab.New(fab.Node7, fab.WithYield(fab.MurphyYield{D0: 0.2}))
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Chiplet vs monolithic (7nm, Murphy D0=0.2/cm²)",
		"logic (mm²)", "best split", "per-die yield", "best total (kg)", "monolithic (kg)", "saving")
	for _, mm2 := range []float64{100, 300, 500, 700, 900} {
		best, err := chiplet.Optimal(p, f, units.MM2(mm2), 8)
		if err != nil {
			return nil, err
		}
		mono, err := chiplet.Evaluate(p, f, units.MM2(mm2), 1)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.Num(mm2), fmt.Sprintf("%d", best.Chiplets),
			fmt.Sprintf("%.0f%%", best.Yield*100),
			report.Num(best.Total().Kilograms()), report.Num(mono.Total().Kilograms()),
			fmt.Sprintf("%.2fx", mono.Total().Grams()/best.Total().Grams()))
	}
	return []*report.Table{t}, nil
}

func extDVFS() ([]*report.Table, error) {
	p := dvfs.Default()
	t := report.NewTable("Carbon-optimal DVFS point by environment (100 Gcycle task)",
		"use-phase grid", "device embodied (kg)", "optimal GHz", "task carbon")
	for _, env := range []struct {
		label string
		ci    units.CarbonIntensity
		kg    float64
	}{
		{"coal (820)", intensity.CoalGrid, 2},
		{"US grid (300)", intensity.USGrid, 17},
		{"solar (41)", intensity.Renewable, 17},
		{"carbon-free (0)", intensity.CarbonFree, 40},
	} {
		ctx := dvfs.CarbonContext{
			Intensity:      env.ci,
			DeviceEmbodied: units.Kilograms(env.kg),
			Lifetime:       units.Years(3),
		}
		f, c, err := p.CarbonOptimalFrequency(ctx, 100, 221)
		if err != nil {
			return nil, err
		}
		t.AddRow(env.label, report.Num(env.kg), report.Num(f), c.String())
	}
	fE, _, err := p.EnergyOptimalFrequency(100, 221)
	if err != nil {
		return nil, err
	}
	t.AddNote(fmt.Sprintf("energy-optimal frequency (carbon-blind): %.2f GHz", fE))
	return []*report.Table{t}, nil
}

func extScheduling() ([]*report.Table, error) {
	tr, err := grid.NewTrace(grid.Default(), grid.DiurnalDemand(9000, 2000))
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Deferrable 100 kWh job on the dispatched grid",
		"job slots (h)", "immediate (kg)", "carbon-aware (kg)", "savings")
	for _, hours := range []int{2, 4, 8, 12, 18} {
		naive, err := grid.Immediate(tr, units.KilowattHours(100), hours, 24*time.Hour)
		if err != nil {
			return nil, err
		}
		aware, err := grid.CarbonAware(tr, units.KilowattHours(100), hours, 24*time.Hour)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.Num(float64(hours)),
			report.Num(naive.Emissions.Kilograms()),
			report.Num(aware.Emissions.Kilograms()),
			fmt.Sprintf("%.2fx", naive.Emissions.Grams()/aware.Emissions.Grams()))
	}
	return []*report.Table{t}, nil
}

func extFleet() ([]*report.Table, error) {
	load := datacenter.DiurnalLoad(5000, 3000)
	spec := datacenter.DefaultServer()
	best, sweep, err := datacenter.OptimalFleet(load, spec, 1.3, intensity.USGrid, 24)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fleet right-sizing (8k rps peak, PUE 1.3, US grid, 4-year life)",
		"servers", "mean utilization", "embodied (t)", "operational (t)", "total (t)")
	for _, a := range sweep {
		t.AddRow(report.Num(float64(a.Servers)),
			fmt.Sprintf("%.0f%%", a.MeanUtilization*100),
			report.Num(a.Embodied.Tonnes()),
			report.Num(a.Operational.Tonnes()),
			report.Num(a.Total().Tonnes()))
	}
	t.AddNote(fmt.Sprintf("optimal fleet: %d servers", best.Servers))
	return []*report.Table{t}, nil
}

func extUsage() ([]*report.Table, error) {
	tr, err := grid.NewTrace(grid.Default(), grid.DiurnalDemand(9000, 2000))
	if err != nil {
		return nil, err
	}
	t := report.NewTable("One year of a mobile duty cycle under grid traces",
		"trace", "operational CO2")
	mobile := usage.Mobile()
	flat, err := mobile.Usage(units.Years(1), intensity.USGrid)
	if err != nil {
		return nil, err
	}
	t.AddRow("flat US grid", intensity.USGrid.Emitted(flat.Energy).String())
	year := units.Years(1)
	traced, err := mobile.OperationalOverTrace(year, tr, time.Hour)
	if err != nil {
		return nil, err
	}
	t.AddRow("dispatched diurnal grid", traced.String())
	t.AddNote("flat averages and dispatched traces disagree materially; when the active window aligns with solar output the traced footprint falls well below the flat-grid estimate")
	return []*report.Table{t}, nil
}
