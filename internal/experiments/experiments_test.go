package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"table1", "table2", "table4", "table5", "table6", "table7",
		"table8", "table9", "table10", "table11", "table12",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9", "ext10",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("registry missing %s", w)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	// Figures first (prefix "fig" < "table"), numeric within a prefix.
	var figs, tables []string
	for _, id := range ids {
		switch {
		case strings.HasPrefix(id, "fig"):
			figs = append(figs, id)
		case strings.HasPrefix(id, "table"):
			tables = append(tables, id)
		}
	}
	if len(figs) == 0 || len(tables) == 0 {
		t.Fatal("expected both figures and tables")
	}
	if ids[0] != "ext1" {
		t.Errorf("first id = %s, want ext1 (alphabetical prefix order)", ids[0])
	}
	if figs[len(figs)-1] != "fig17" {
		t.Errorf("last figure = %s, want fig17", figs[len(figs)-1])
	}
	if tables[0] != "table1" || tables[len(tables)-1] != "table12" {
		t.Errorf("table ordering wrong: %v", tables)
	}
	// fig10 sorts after fig9 (numeric, not lexicographic).
	idx := map[string]int{}
	for i, id := range ids {
		idx[id] = i
	}
	if idx["fig10"] < idx["fig9"] {
		t.Error("fig10 should sort after fig9")
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig8")
	if err != nil || e.ID != "fig8" {
		t.Errorf("ByID(fig8) = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("ByID(unknown): expected error")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	// Every registered experiment runs without error and produces at
	// least one non-empty, renderable table.
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tab.Title)
				}
				out, err := tab.ASCII()
				if err != nil {
					t.Errorf("%s: table %q does not render: %v", e.ID, tab.Title, err)
				}
				if len(out) == 0 {
					t.Errorf("%s: table %q renders empty", e.ID, tab.Title)
				}
				if _, err := tab.CSV(); err != nil {
					t.Errorf("%s: table %q CSV: %v", e.ID, tab.Title, err)
				}
				if _, err := tab.Markdown(); err != nil {
					t.Errorf("%s: table %q Markdown: %v", e.ID, tab.Title, err)
				}
			}
		})
	}
}

func TestFigure8WinnersMatchPaper(t *testing.T) {
	e, err := ByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The winners table pairs our winner with the paper's; whenever the
	// paper column is non-empty the two must agree.
	winners := tables[1]
	for _, row := range winners.Rows {
		if len(row) >= 3 && row[2] != "" && row[1] != row[2] {
			t.Errorf("fig8 %s winner %q disagrees with paper %q", row[0], row[1], row[2])
		}
	}
}

func TestFigure12OptimaMatchPaper(t *testing.T) {
	e, err := ByID("fig12")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	optima := tables[1]
	for _, row := range optima.Rows {
		if len(row) >= 3 && row[2] != "" && row[1] != row[2] {
			t.Errorf("fig12 %s optimum %q disagrees with paper %q", row[0], row[1], row[2])
		}
	}
}
