// Package experiments regenerates every table and figure of the paper's
// evaluation from this library's models. Each experiment is registered
// under the paper's artifact id (e.g. "fig8", "table4") and produces
// report tables whose rows mirror what the paper presents; EXPERIMENTS.md
// records the paper-vs-measured comparison for each.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"act/internal/parsweep"
	"act/internal/report"
)

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the artifact id: "fig1".."fig17", "table1".."table12".
	ID string
	// Title is the artifact's one-line description.
	Title string
	// Run produces the artifact's tables.
	Run func() ([]*report.Table, error)
}

// registry is populated by the init functions of the sibling files.
var registry = map[string]Experiment{}

// register adds an experiment; duplicate ids are a programming error.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by id (figures first, then tables,
// each numerically).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

// Result pairs an experiment with the tables one run produced.
type Result struct {
	Experiment Experiment
	Tables     []*report.Table
}

// RunAll runs every registered experiment across a bounded worker pool and
// returns the results in All() order, so output is deterministic no matter
// how the work was scheduled. The first experiment error cancels the
// remaining work and is returned, tagged with the artifact id. workers ≤ 0
// selects GOMAXPROCS.
func RunAll(ctx context.Context, workers int) ([]Result, error) {
	all := All()
	tables, err := parsweep.MapErr(ctx, workers, all, func(_ context.Context, _ int, e Experiment) ([]*report.Table, error) {
		ts, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		return ts, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(all))
	for i, e := range all {
		out[i] = Result{Experiment: e, Tables: tables[i]}
	}
	return out, nil
}

// ByID returns one experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs returns the sorted registry keys.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i], out[j]) })
	return out
}

// lessID orders "figN" before "tableN" and both numerically.
func lessID(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitID(id string) (prefix string, n int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	prefix = id[:i]
	for _, c := range id[i:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return prefix, n
}
