// Package experiments regenerates every table and figure of the paper's
// evaluation from this library's models. Each experiment is registered
// under the paper's artifact id (e.g. "fig8", "table4") and produces
// report tables whose rows mirror what the paper presents; EXPERIMENTS.md
// records the paper-vs-measured comparison for each.
package experiments

import (
	"fmt"
	"sort"

	"act/internal/report"
)

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the artifact id: "fig1".."fig17", "table1".."table12".
	ID string
	// Title is the artifact's one-line description.
	Title string
	// Run produces the artifact's tables.
	Run func() ([]*report.Table, error)
}

// registry is populated by the init functions of the sibling files.
var registry = map[string]Experiment{}

// register adds an experiment; duplicate ids are a programming error.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by id (figures first, then tables,
// each numerically).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

// ByID returns one experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs returns the sorted registry keys.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i], out[j]) })
	return out
}

// lessID orders "figN" before "tableN" and both numerically.
func lessID(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitID(id string) (prefix string, n int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	prefix = id[:i]
	for _, c := range id[i:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return prefix, n
}
