package experiments

// Organization-level pledge trajectory experiment.

import (
	"fmt"

	"act/internal/pledge"
	"act/internal/report"
	"act/internal/units"
)

func init() {
	register(Experiment{ID: "ext10", Title: "Supply-chain pledge trajectory", Run: extPledge})
}

func extPledge() ([]*report.Table, error) {
	org := pledge.Org{
		DevicesPerYear:   100e6,
		DeviceEmbodied:   units.Kilograms(60),
		FleetOperational: units.Tonnes(1.5e6),
		FabDecarbRate:    0.04,
		GridDecarbRate:   0.10,
	}
	traj, err := org.Trajectory(11)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fleet trajectory: 100M devices/yr, fabs -4%/yr, grids -10%/yr",
		"year", "embodied (Mt)", "operational (Mt)", "total (Mt)", "embodied share")
	for _, y := range traj {
		t.AddRow(report.Num(float64(y.Year)),
			report.Num(y.Embodied.Tonnes()/1e6),
			report.Num(y.Operational.Tonnes()/1e6),
			report.Num(y.Total().Tonnes()/1e6),
			fmt.Sprintf("%.0f%%", y.EmbodiedShare()*100))
	}
	half, err := org.YearsToReduce(0.5, 40)
	if err != nil {
		return nil, err
	}
	fast := org
	fast.FabDecarbRate = 0.15
	halfFast, err := fast.YearsToReduce(0.5, 40)
	if err != nil {
		return nil, err
	}
	t.AddNote(fmt.Sprintf("halving takes %d years; accelerating fab decarbonization to 15%%/yr cuts that to %d — manufacturing is the binding constraint (Section 2.1)",
		half, halfFast))
	return []*report.Table{t}, nil
}
