package serve

// The /v1/export/config contract: GET answers the live exporter tuning,
// PUT retunes it under optimistic concurrency, and a server without an
// exporter attached answers 404 on both. The validation failure classes
// live in TestErrorContractAllRoutes; these tests pin the happy paths and
// the version discipline.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// fakeExporter is an in-memory exporterControl for tests.
type fakeExporter struct {
	interval time.Duration
	rate     int
	urls     []string
}

func (f *fakeExporter) Interval() time.Duration           { return f.interval }
func (f *fakeExporter) SetInterval(d time.Duration) error { f.interval = d; return nil }
func (f *fakeExporter) RateBytesPerSec() int              { return f.rate }
func (f *fakeExporter) SetRateBytesPerSec(n int) error    { f.rate = n; return nil }
func (f *fakeExporter) URLs() []string                    { return f.urls }

func getExportConfig(t *testing.T, url string) (int, exportConfigJSON) {
	t.Helper()
	resp, err := http.Get(url + "/v1/export/config")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	var doc exportConfigJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("decoding config: %v (body %s)", err, body)
		}
	}
	return resp.StatusCode, doc
}

func putExportConfig(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/v1/export/config", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, readAll(t, resp)
}

func TestExportConfigNotConfigured(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _ := getExportConfig(t, ts.URL); code != http.StatusNotFound {
		t.Errorf("GET without exporter = %d, want 404", code)
	}
	resp, body := putExportConfig(t, ts.URL, `{"version":1,"interval_ms":1000}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("PUT without exporter = %d, want 404 (body %s)", resp.StatusCode, body)
	}
}

func TestExportConfigRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	fake := &fakeExporter{
		interval: 10 * time.Second,
		rate:     4096,
		urls:     []string{"http://collector-a:9009", "http://collector-b:9009"},
	}
	s.AttachExporter(fake)

	code, doc := getExportConfig(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("GET = %d, want 200", code)
	}
	if doc.Version != 1 || doc.IntervalMS != 10000 || doc.RateBytesPerSec != 4096 || len(doc.URLs) != 2 {
		t.Fatalf("GET doc = %+v", doc)
	}

	// A PUT echoing the read version applies and bumps.
	resp, body := putExportConfig(t, ts.URL,
		`{"version":1,"interval_ms":30000,"rate_bytes_per_sec":8192}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT = %d (body %s)", resp.StatusCode, body)
	}
	var after exportConfigJSON
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if after.Version != 2 || after.IntervalMS != 30000 || after.RateBytesPerSec != 8192 {
		t.Fatalf("PUT answered %+v", after)
	}
	if fake.interval != 30*time.Second || fake.rate != 8192 {
		t.Fatalf("exporter not retuned: interval=%v rate=%d", fake.interval, fake.rate)
	}

	// Replaying the same version loses the race: the document moved on.
	resp, body = putExportConfig(t, ts.URL,
		`{"version":1,"interval_ms":5000}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale PUT = %d, want 409 (body %s)", resp.StatusCode, body)
	}
	e := decodeError(t, []byte(body))
	if e.Code != codeConflict || e.Field != "version" {
		t.Errorf("stale PUT envelope = %+v", e)
	}
	if fake.interval != 30*time.Second {
		t.Errorf("stale PUT retuned the exporter to %v", fake.interval)
	}

	// GET reflects the bumped version; the next well-versioned PUT works.
	if _, doc := getExportConfig(t, ts.URL); doc.Version != 2 {
		t.Fatalf("version after PUT = %d, want 2", doc.Version)
	}
	resp, body = putExportConfig(t, ts.URL, `{"version":2,"interval_ms":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second PUT = %d (body %s)", resp.StatusCode, body)
	}
}
