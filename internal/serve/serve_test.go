package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"act/internal/scenario"
)

// discardLogger keeps test output quiet.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// testSpec builds a valid scenario whose footprint varies with area.
func testSpec(area float64) *scenario.Spec {
	return &scenario.Spec{
		Name:  fmt.Sprintf("device-%g", area),
		Logic: []scenario.LogicSpec{{Name: "soc", AreaMM2: area, Node: "7nm"}},
		DRAM:  []scenario.DRAMSpec{{Name: "ram", Technology: "lpddr4", CapacityGB: 4}},
		Usage: scenario.UsageSpec{PowerW: 2, AppHours: 876.6},
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// expectedResult renders the result document exactly the way the service
// (and cmd/act -format json) does.
func expectedResult(t *testing.T, spec *scenario.Spec) []byte {
	t.Helper()
	res, err := spec.Result()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeError(t *testing.T, data []byte) errorDetail {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body %q is not JSON: %v", data, err)
	}
	if e.Error.Code == "" {
		t.Fatalf("error body %q missing the machine-readable code", data)
	}
	return e.Error
}

func TestFootprintSingle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := scenario.Example()
	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, spec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	if want := expectedResult(t, spec); !bytes.Equal(body, want) {
		t.Errorf("single response differs from the canonical result document:\n%s\nwant:\n%s", body, want)
	}
}

func TestFootprintBatchMirrorsOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	specs := []*scenario.Spec{testSpec(50), testSpec(120), testSpec(50)}
	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, specs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var results []json.RawMessage
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatalf("batch response is not an array: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, spec := range specs {
		want := bytes.TrimRight(expectedResult(t, spec), "\n")
		if !bytes.Equal(bytes.TrimSpace(results[i]), bytes.TrimSpace(want)) {
			t.Errorf("result[%d] differs from sequential evaluation", i)
		}
	}
	// Identical specs at [0] and [2] must produce identical bytes.
	if !bytes.Equal(results[0], results[2]) {
		t.Error("duplicate specs returned different bytes")
	}
}

func TestFootprintMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/footprint", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Message == "" {
		t.Error("error body missing the error message")
	}
}

func TestFootprintEmptyBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/footprint", []byte("  \n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
}

func TestFootprintUnsupportedVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := testSpec(50)
	spec.Version = 9
	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, spec))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); !strings.Contains(e.Message, "version 9") {
		t.Errorf("error %q does not name the bad version", e.Message)
	}
}

func TestFootprintBatchFieldPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := testSpec(50)
	bad.Logic[0].AreaMM2 = -1 // valid JSON, fails at evaluation
	specs := []*scenario.Spec{testSpec(50), bad}
	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, specs))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
	}
	e := decodeError(t, body)
	if !strings.HasPrefix(e.Field, "[1].") {
		t.Errorf("field = %q, want a path rooted at batch index [1]", e.Field)
	}
	if !strings.Contains(e.Field, "area_mm2") {
		t.Errorf("field = %q, want the offending leaf field", e.Field)
	}
}

func TestFootprintBatchTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	specs := []*scenario.Spec{testSpec(1), testSpec(2), testSpec(3)}
	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, specs))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %s", resp.StatusCode, body)
	}
}

func TestFootprintTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(50)))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); !strings.Contains(e.Message, "timed out") {
		t.Errorf("error %q does not mention the timeout", e.Message)
	}
}

func TestSweepRankAndPareto(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := []byte(`{
		"candidates": [
			{"name": "small", "embodied_g": 100, "energy_j": 10, "delay_s": 2, "area_mm2": 50},
			{"name": "big",   "embodied_g": 300, "energy_j": 30, "delay_s": 1, "area_mm2": 150},
			{"name": "worst", "embodied_g": 400, "energy_j": 40, "delay_s": 3, "area_mm2": 200}
		],
		"rank": ["CDP"],
		"pareto": ["embodied", "delay"]
	}`)
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr sweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Rankings) != 1 || sr.Rankings[0].Metric != "CDP" {
		t.Fatalf("rankings = %+v", sr.Rankings)
	}
	// CDP = embodied × delay: small 200, big 300, worst 1200.
	if got := sr.Rankings[0].Ranked[0].Name; got != "small" {
		t.Errorf("CDP winner = %s, want small", got)
	}
	if len(sr.Pareto) != 2 || sr.Pareto[0] == "worst" || sr.Pareto[1] == "worst" {
		t.Errorf("pareto = %v, want small and big only", sr.Pareto)
	}
}

func TestSweepRankAllShorthand(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := []byte(`{
		"candidates": [{"name": "a", "embodied_g": 1, "energy_j": 1, "delay_s": 1, "area_mm2": 1}],
		"rank": ["all"]
	}`)
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr sweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Rankings) != 6 {
		t.Errorf("got %d rankings for \"all\", want 6 (Table 2)", len(sr.Rankings))
	}
}

func TestSweepBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := map[string]struct {
		body      string
		wantField string
	}{
		"unknown metric": {
			body: `{"candidates": [{"name":"a","embodied_g":1,"energy_j":1,"delay_s":1}], "rank": ["XXX"]}`,
		},
		"one pareto axis": {
			body:      `{"candidates": [{"name":"a","embodied_g":1,"energy_j":1,"delay_s":1}], "pareto": ["embodied"]}`,
			wantField: "pareto",
		},
		"unknown pareto axis": {
			body:      `{"candidates": [{"name":"a","embodied_g":1,"energy_j":1,"delay_s":1}], "pareto": ["embodied","frobs"]}`,
			wantField: "pareto[1]",
		},
		"no candidates": {
			body:      `{"candidates": [], "rank": ["CDP"]}`,
			wantField: "candidates",
		},
		"nothing requested": {
			body: `{"candidates": [{"name":"a","embodied_g":1,"energy_j":1,"delay_s":1}]}`,
		},
		"unnamed candidate": {
			body:      `{"candidates": [{"embodied_g":1,"energy_j":1,"delay_s":1}], "rank": ["CDP"]}`,
			wantField: "candidates[0].name",
		},
		"invalid candidate": {
			body:      `{"candidates": [{"name":"a","embodied_g":1,"energy_j":1,"delay_s":0}], "rank": ["CDP"]}`,
			wantField: "candidates[0]",
		},
		"unknown top-level field": {
			body: `{"candidates": [{"name":"a","embodied_g":1,"energy_j":1,"delay_s":1}], "rnak": ["CDP"]}`,
		},
		"bad version": {
			body: `{"version": 3, "candidates": [{"name":"a","embodied_g":1,"energy_j":1,"delay_s":1}], "rank": ["CDP"]}`,
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/sweep", []byte(tc.body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
			}
			if e := decodeError(t, body); tc.wantField != "" && e.Field != tc.wantField {
				t.Errorf("field = %q, want %q (error: %s)", e.Field, tc.wantField, e.Message)
			}
		})
	}
}

func TestHealthzAndMethodRouting(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	// GET on a POST route is a method error, not a handler invocation.
	resp, err = http.Get(ts.URL + "/v1/footprint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET footprint = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz = %d, want 200", resp.StatusCode)
	}

	// Draining flips readiness but never liveness: the process is still
	// alive and finishing in-flight work.
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", resp.StatusCode)
	}
}

// TestBatchByteIdentityAndHitRatio is the acceptance check for the cache:
// a 1000-scenario batch with 50 distinct specs must return, per element,
// exactly the bytes a sequential evaluation produces, and the cache
// counters must show 950 hits / 50 misses.
func TestBatchByteIdentityAndHitRatio(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const total, distinct = 1000, 50
	specs := make([]*scenario.Spec, total)
	for i := range specs {
		specs[i] = testSpec(float64(10 + i%distinct))
	}
	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, specs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %.200s", resp.StatusCode, body)
	}
	var results []json.RawMessage
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != total {
		t.Fatalf("got %d results, want %d", len(results), total)
	}
	// Sequential ground truth, computed once per distinct spec.
	want := make(map[string][]byte, distinct)
	for i, spec := range specs {
		key := spec.CanonicalKey()
		w, ok := want[key]
		if !ok {
			w = bytes.TrimRight(expectedResult(t, spec), "\n")
			want[key] = w
		}
		if !bytes.Equal(bytes.TrimSpace(results[i]), bytes.TrimSpace(w)) {
			t.Fatalf("result[%d] differs from sequential evaluation:\n%s\nwant:\n%s", i, results[i], w)
		}
	}

	hits, misses := s.mCacheHits.Value(), s.mCacheMisses.Value()
	if hits+misses != total {
		t.Errorf("hits+misses = %d, want %d", hits+misses, total)
	}
	if misses != distinct {
		t.Errorf("misses = %d, want %d (one per distinct spec)", misses, distinct)
	}
	if hits != total-distinct {
		t.Errorf("hits = %d, want %d", hits, total-distinct)
	}

	// The ratio must be visible on /metrics in exposition format.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metricsText, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		fmt.Sprintf("actd_cache_hits_total %d", hits),
		fmt.Sprintf("actd_cache_misses_total %d", misses),
		fmt.Sprintf("actd_scenarios_total %d", total),
		`actd_requests_total{handler="footprint",code="200"} 1`,
		"actd_inflight_requests 0",
		"# TYPE actd_request_duration_seconds histogram",
		"actd_request_duration_seconds_count 1",
	} {
		if !strings.Contains(string(metricsText), line+"\n") {
			t.Errorf("/metrics missing %q", line)
		}
	}
}

// TestGracefulDrain starts the server on a real listener, shuts it down
// while requests are in flight, and checks that every accepted request got
// a complete, valid response while post-drain requests get 503.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Logger: discardLogger()})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String() + "/v1/footprint"

	// Hammer with batch requests so some are in flight when the drain
	// starts. Workers stop at the first transport-level error (the closed
	// listener); every response they did receive must be complete.
	batch := make([]*scenario.Spec, 200)
	for i := range batch {
		batch[i] = testSpec(float64(10 + i))
	}
	payload, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		complete int
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
				if err != nil {
					return // listener closed mid-connect: fine
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("truncated response during drain: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var results []json.RawMessage
					if err := json.Unmarshal(body, &results); err != nil || len(results) != len(batch) {
						t.Errorf("incomplete 200 body during drain: err=%v len=%d", err, len(results))
						return
					}
					mu.Lock()
					complete++
					mu.Unlock()
				case http.StatusServiceUnavailable:
					return // drain rejection: also a complete response
				default:
					t.Errorf("unexpected status %d during drain", resp.StatusCode)
					return
				}
			}
		}()
	}

	// Wait until traffic is genuinely flowing, then drain. The in-flight
	// gauge alone is flaky to sample: with warm caches a whole batch can
	// finish inside the poll sleep, so a completed request counts too.
	deadline := time.Now().Add(5 * time.Second)
	for s.mInflight.Value() == 0 {
		mu.Lock()
		done := complete
		mu.Unlock()
		if done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no request went in flight")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v after clean shutdown", err)
	}
	if complete == 0 {
		t.Error("no request completed before the drain")
	}
	if s.mInflight.Value() != 0 {
		t.Errorf("inflight = %d after drain, want 0", s.mInflight.Value())
	}

	// The handler itself rejects once draining, independent of the
	// (now closed) listener.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/footprint", bytes.NewReader(payload)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request = %d, want 503", rec.Code)
	}
}

// The acceptance benchmark pair: a cache hit must be at least an order of
// magnitude cheaper than a cold evaluation (model + JSON encoding).
// Compare with:
//
//	go test -bench 'Footprint(Cold|Cached)' -benchtime 2s ./internal/serve/

func BenchmarkFootprintCold(b *testing.B) {
	s := New(Config{CacheSize: -1, Logger: discardLogger()}) // no residency: every call evaluates
	spec := scenario.Example()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.evalOne(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFootprintCached(b *testing.B) {
	s := New(Config{Logger: discardLogger()})
	spec := scenario.Example()
	ctx := context.Background()
	if _, err := s.evalOne(ctx, spec); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.evalOne(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFootprintBatchColumnar drives the batch handler's columnar path
// with 512 distinct scenarios per iteration and residency disabled, so
// every item is a fresh columnar evaluation (the batch analog of
// BenchmarkFootprintCold).
func BenchmarkFootprintBatchColumnar(b *testing.B) {
	s := New(Config{CacheSize: -1, Logger: discardLogger()})
	specs := make([]*scenario.Spec, 512)
	for i := range specs {
		specs[i] = testSpec(float64(10 + i))
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.evalBatchColumnar(ctx, specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(specs))/b.Elapsed().Seconds(), "scenarios/s")
}

// TestBatchHandlerAllocsDropped pins the batch handler's allocation win:
// the scalar path costs dozens of heap allocations per cold evaluation
// (result structs, encoder state, buffers); the columnar path's steady
// state is the per-item response clone plus amortized batch bookkeeping.
func TestBatchHandlerAllocsDropped(t *testing.T) {
	s := New(Config{CacheSize: -1, Logger: discardLogger()})
	specs := make([]*scenario.Spec, 256)
	for i := range specs {
		specs[i] = testSpec(float64(10 + i))
	}
	ctx := context.Background()
	if _, err := s.evalBatchColumnar(ctx, specs); err != nil { // warm pools + resolver caches
		t.Fatal(err)
	}
	perBatch := testing.AllocsPerRun(10, func() {
		if _, err := s.evalBatchColumnar(ctx, specs); err != nil {
			t.Fatal(err)
		}
	})
	perItem := perBatch / float64(len(specs))
	if perItem >= 16 {
		t.Fatalf("columnar batch path allocates %.1f allocs/item (%.0f per %d-item batch); want well under the scalar path's ~54", perItem, perBatch, len(specs))
	}
}
