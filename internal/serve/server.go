// Package serve implements actd, the carbon-assessment HTTP service: the
// ACT model (Gupta et al., ISCA 2022) behind a long-lived, observable
// endpoint instead of a one-shot CLI. The service speaks the same
// version-1 scenario wire format as cmd/act and returns the same JSON
// results byte-for-byte, so a fleet assessment can move between the two
// freely.
//
// Endpoints:
//
//	POST /v1/footprint  one scenario object or a batch array of them
//	POST /v1/sweep      metric rankings / Pareto frontier over candidates
//	GET  /healthz       liveness (503 while draining)
//	GET  /metrics       Prometheus text exposition
//
// Batch requests fan out across the parsweep worker pool under a
// per-request concurrency bound; every scenario evaluation goes through an
// LRU + singleflight cache keyed on the canonical scenario encoding
// (scenario.CanonicalKey), so a fleet batch of identical BoMs costs one
// model evaluation. Requests carry a server-imposed timeout (exceeded →
// 504) and shutdown is graceful: in-flight requests drain, new ones are
// rejected with 503.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"act/internal/acterr"
)

// Config tunes a Server. Zero fields take the documented defaults.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// Workers bounds the per-request scenario fan-out (default GOMAXPROCS).
	Workers int
	// MaxBatch caps scenarios per request (default 10000; exceeded → 413).
	MaxBatch int
	// CacheSize is the footprint LRU capacity in entries (default 4096;
	// negative disables residency).
	CacheSize int
	// RequestTimeout bounds each API request (default 30s; exceeded → 504).
	RequestTimeout time.Duration
	// MaxBodyBytes caps the request body (default 32 MiB).
	MaxBodyBytes int64
	// Logger receives structured request logs (default JSON to stderr).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 10000
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return c
}

// Server is the actd HTTP service.
type Server struct {
	cfg      Config
	log      *slog.Logger
	cache    *Cache[json.RawMessage]
	reg      *Registry
	mux      *http.ServeMux
	httpSrv  *http.Server
	draining atomic.Bool

	mRequests    *CounterVec // actd_requests_total{handler,code}
	mLatency     *Histogram  // actd_request_duration_seconds
	mCacheHits   *Counter    // actd_cache_hits_total
	mCacheMisses *Counter    // actd_cache_misses_total
	mInflight    *Gauge      // actd_inflight_requests
	mPoolDepth   *Gauge      // actd_pool_depth
	mScenarios   *Counter    // actd_scenarios_total
}

// New builds a Server from the config. Call ListenAndServe (or Serve on an
// existing listener) to run it, Handler to mount it under a test server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		log:   cfg.Logger,
		cache: NewCache[json.RawMessage](cfg.CacheSize),
		reg:   NewRegistry(),
		mux:   http.NewServeMux(),
	}
	s.mRequests = s.reg.NewCounterVec("actd_requests_total",
		"API requests served, by handler and HTTP status code.", "handler", "code")
	s.mLatency = s.reg.NewHistogram("actd_request_duration_seconds",
		"API request latency in seconds.", DefaultLatencyBuckets)
	s.mCacheHits = s.reg.NewCounter("actd_cache_hits_total",
		"Scenario evaluations answered from the footprint cache.")
	s.mCacheMisses = s.reg.NewCounter("actd_cache_misses_total",
		"Scenario evaluations that ran the model.")
	s.mInflight = s.reg.NewGauge("actd_inflight_requests",
		"API requests currently being served.")
	s.mPoolDepth = s.reg.NewGauge("actd_pool_depth",
		"Scenario evaluations queued or running on the worker pool.")
	s.mScenarios = s.reg.NewCounter("actd_scenarios_total",
		"Scenarios evaluated across all requests, cached or not.")

	s.mux.Handle("POST /v1/footprint", s.api("footprint", s.handleFootprint))
	s.mux.Handle("POST /v1/sweep", s.api("sweep", s.handleSweep))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	s.httpSrv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the service's HTTP handler, for mounting under httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on the configured address until Shutdown. A clean
// shutdown returns nil.
func (s *Server) ListenAndServe() error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on l until Shutdown. A clean shutdown returns nil.
func (s *Server) Serve(l net.Listener) error {
	s.log.Info("actd serving", "addr", l.Addr().String())
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server gracefully: new API requests are rejected
// with 503 immediately, listeners close, and in-flight requests run to
// completion (bounded by ctx — a lapsed ctx abandons stragglers the way
// net/http.Server.Shutdown does).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.log.Info("actd draining")
	return s.httpSrv.Shutdown(ctx)
}

// api wraps an API handler with the service middleware: drain rejection,
// in-flight accounting, the per-request timeout, metrics and structured
// request logging.
func (s *Server) api(name string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.mRequests.With(name, "503").Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
			return
		}
		s.mInflight.Inc()
		defer s.mInflight.Dec()

		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}

		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r.WithContext(ctx))
		dur := time.Since(start)

		s.mRequests.With(name, strconv.Itoa(rec.code)).Add(1)
		s.mLatency.Observe(dur.Seconds())
		s.log.Info("request",
			"handler", name,
			"method", r.Method,
			"path", r.URL.Path,
			"code", rec.code,
			"duration_ms", float64(dur.Microseconds())/1e3,
			"remote", r.RemoteAddr,
		)
	})
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// errorResponse is the JSON error body for every non-2xx API response.
type errorResponse struct {
	Error string `json:"error"`
	// Field is the offending scenario field path when the failure is a
	// validation error ("logic[0].node", "[3].usage.app_hours").
	Field string `json:"field,omitempty"`
}

// writeJSON writes v as the response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError classifies err into an HTTP status and writes the error body:
// client-fixable spec problems are 400, timeouts 504, everything else 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	resp := errorResponse{Error: err.Error()}
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
		resp.Error = "request timed out: " + err.Error()
	case acterr.IsInvalid(err):
		code = http.StatusBadRequest
		var inv *acterr.InvalidSpecError
		if errors.As(err, &inv) {
			resp.Field = inv.Field
		}
	}
	writeJSON(w, code, resp)
}

// handleHealthz is the liveness probe: 200 while serving, 503 once
// draining so load balancers stop routing here during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.reg.Render()))
}
