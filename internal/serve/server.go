// Package serve implements actd, the carbon-assessment HTTP service: the
// ACT model (Gupta et al., ISCA 2022) behind a long-lived, observable
// endpoint instead of a one-shot CLI. The service speaks the same
// version-1 scenario wire format as cmd/act and returns the same JSON
// results byte-for-byte, so a fleet assessment can move between the two
// freely.
//
// Endpoints:
//
//	POST /v1/footprint  one scenario object or a batch array of them
//	POST /v1/sweep      metric rankings / Pareto frontier over candidates
//	POST /v1/script     a sandboxed scenario program under hard budgets
//	GET  /healthz       liveness (always 200 while the process serves)
//	GET  /readyz        readiness (503 while draining or a breaker is open)
//	GET  /metrics       Prometheus text exposition
//
// Batch requests fan out across the parsweep worker pool under a
// per-request concurrency bound; every scenario evaluation goes through an
// LRU + singleflight cache keyed on the canonical scenario encoding
// (scenario.CanonicalKey), so a fleet batch of identical BoMs costs one
// model evaluation. Requests carry a server-imposed timeout (exceeded →
// 504) and shutdown is graceful: in-flight requests drain, new ones are
// rejected with 503.
//
// The resilience layer sits between the router and the handlers. The full
// status taxonomy a client can observe:
//
//	200  evaluated
//	400  the request is the client's to fix (validation, parse, version)
//	413  body or batch over the configured limit
//	429  shed before any work was accepted (admission queue full, or the
//	     deadline could not survive the queue) — carries Retry-After
//	500  internal fault (a panic, or a transient fault that survived the
//	     retry budget)
//	503  draining, or the handler's circuit breaker is open — Retry-After
//	504  the request deadline lapsed after work was accepted; the deadline
//	     propagates so in-flight workers stop rather than run for nobody
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"act/internal/cluster"
	"act/internal/fleet"
	"act/internal/resilience"
)

// Config tunes a Server. Zero fields take the documented defaults.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// Workers bounds the per-request scenario fan-out (default GOMAXPROCS).
	Workers int
	// MaxBatch caps scenarios per request (default 10000; exceeded → 413).
	MaxBatch int
	// CacheSize is the footprint LRU capacity in entries (default 4096;
	// negative disables residency).
	CacheSize int
	// RequestTimeout bounds each API request (default 30s; exceeded → 504).
	RequestTimeout time.Duration
	// MaxBodyBytes caps the request body (default 32 MiB).
	MaxBodyBytes int64
	// Logger receives structured request logs (default JSON to stderr).
	Logger *slog.Logger

	// MaxInFlight bounds concurrently admitted API requests (default 256;
	// negative disables admission control entirely).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an admission slot (default
	// 2×MaxInFlight); beyond it requests shed immediately with 429.
	MaxQueue int
	// RetryAttempts is the total attempts (first try included) given to a
	// scenario evaluation or batch fan-out that fails with a transient
	// fault (default 3; 1 disables retries). Validation errors are never
	// retried.
	RetryAttempts int
	// BreakerThreshold is the run of consecutive 5xx responses that trips
	// a handler's circuit breaker (default 5; negative disables breakers).
	BreakerThreshold int
	// BreakerOpenFor is how long a tripped breaker rejects with 503 before
	// probing (default 5s).
	BreakerOpenFor time.Duration

	// FleetShards is the fleet registry's lock-domain count (default 64).
	FleetShards int
	// FleetResolver maps fleet device regions to operational grid
	// intensity (default the paper's Table 6 averages).
	FleetResolver fleet.IntensityResolver

	// ScriptMaxSteps caps evaluator steps per /v1/script program
	// (default script.DefaultMaxSteps; negative disables the cap).
	ScriptMaxSteps int64
	// ScriptMaxBytes caps a script's allocation estimate in bytes
	// (default script.DefaultMaxAllocBytes; negative disables the cap).
	ScriptMaxBytes int64
	// ScriptTimeout is the per-script wall-clock budget, independent of
	// (and bounded by) RequestTimeout (default script.DefaultTimeout).
	ScriptTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 10000
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerOpenFor == 0 {
		c.BreakerOpenFor = 5 * time.Second
	}
	return c
}

// Server is the actd HTTP service.
type Server struct {
	cfg      Config
	log      *slog.Logger
	cache    *Cache[json.RawMessage]
	reg      *Registry
	mux      *http.ServeMux
	httpSrv  *http.Server
	draining atomic.Bool

	admit    *resilience.Admission          // nil when disabled
	breakers map[string]*resilience.Breaker // per API handler; nil when disabled
	reqIDs   *reqIDSource

	fleet      *fleet.Registry
	fleetStore atomic.Pointer[fleet.Store] // nil until OpenFleet attaches durability
	compactor  *fleetCompactor             // nil unless OpenFleet started one
	cluster    atomic.Pointer[cluster.Cluster] // nil until EnableCluster

	mRequests     *CounterVec // actd_requests_total{handler,code}
	mLatency      *Histogram  // actd_request_duration_seconds
	mCacheHits    *Counter    // actd_cache_hits_total
	mCacheMisses  *Counter    // actd_cache_misses_total
	mInflight     *Gauge      // actd_inflight_requests
	mPoolDepth    *Gauge      // actd_pool_depth
	mScenarios    *Counter    // actd_scenarios_total
	mShed         *CounterVec // actd_shed_total{reason}
	mRetries      *Counter    // actd_retries_total
	mBreakerState *GaugeVec   // actd_breaker_state{handler}

	mFleetIngest    *CounterVec // actd_fleet_ingest_total{code}
	mFleetRecompute *Histogram  // actd_fleet_recompute_seconds
	mEncodeErrors   *Counter    // actd_response_encode_errors_total

	mClusterPeerState *GaugeVec   // actd_cluster_peer_breaker_state{peer}
	mClusterScatter   *CounterVec // actd_cluster_scatter_total{outcome}

	mScriptEvals    *CounterVec // actd_script_evals_total{code}
	mScriptSteps    *Histogram  // actd_script_steps
	mScriptDuration *Histogram  // actd_script_duration_seconds

	exporter         exporterControl // nil unless AttachExporter
	exportCfgVersion atomic.Int64
}

// New builds a Server from the config. Call ListenAndServe (or Serve on an
// existing listener) to run it, Handler to mount it under a test server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		log:    cfg.Logger,
		cache:  NewCache[json.RawMessage](cfg.CacheSize),
		reg:    NewRegistry(),
		mux:    http.NewServeMux(),
		reqIDs: newReqIDSource(),
	}
	s.fleet = fleet.New(fleet.Config{
		Shards:   cfg.FleetShards,
		Resolver: cfg.FleetResolver,
		Workers:  cfg.Workers,
	})
	s.mRequests = s.reg.NewCounterVec("actd_requests_total",
		"API requests served, by handler and HTTP status code.", "handler", "code")
	s.mLatency = s.reg.NewHistogram("actd_request_duration_seconds",
		"API request latency in seconds.", DefaultLatencyBuckets)
	s.mCacheHits = s.reg.NewCounter("actd_cache_hits_total",
		"Scenario evaluations answered from the footprint cache.")
	s.mCacheMisses = s.reg.NewCounter("actd_cache_misses_total",
		"Scenario evaluations that ran the model.")
	s.mInflight = s.reg.NewGauge("actd_inflight_requests",
		"API requests currently being served.")
	s.mPoolDepth = s.reg.NewGauge("actd_pool_depth",
		"Scenario evaluations queued or running on the worker pool.")
	s.mScenarios = s.reg.NewCounter("actd_scenarios_total",
		"Scenarios evaluated across all requests, cached or not.")
	s.mShed = s.reg.NewCounterVec("actd_shed_total",
		"Requests turned away before any work was accepted, by reason.", "reason")
	s.mRetries = s.reg.NewCounter("actd_retries_total",
		"Transient-fault retries across scenario evaluations and batch fan-outs.")
	s.mBreakerState = s.reg.NewGaugeVec("actd_breaker_state",
		"Circuit breaker position per handler (0 closed, 1 open, 2 half-open).", "handler")
	s.reg.NewGaugeFunc("actd_fleet_devices",
		"Devices registered in the fleet registry.", func() int64 {
			return int64(s.fleet.Len())
		})
	s.reg.NewGaugeFunc("actd_fleet_wal_segments",
		"Write-ahead log segments on disk (0 when the fleet is in-memory).", func() int64 {
			if st := s.fleetStore.Load(); st != nil {
				return int64(st.WALSegments())
			}
			return 0
		})
	s.reg.NewGaugeFunc("actd_fleet_wal_bytes",
		"Total bytes across write-ahead log segments.", func() int64 {
			if st := s.fleetStore.Load(); st != nil {
				return st.WALBytes()
			}
			return 0
		})
	s.reg.NewCounterFunc("actd_fleet_recovery_quarantined_total",
		"Corrupt write-ahead log segments quarantined by recovery since boot.", func() int64 {
			if st := s.fleetStore.Load(); st != nil {
				return st.QuarantinedTotal()
			}
			return 0
		})
	s.reg.NewGaugeFunc("actd_fleet_degraded",
		"1 while fleet persistence is degraded and writes are rejected, else 0.", func() int64 {
			if st := s.fleetStore.Load(); st != nil {
				if down, _ := st.Degraded(); down {
					return 1
				}
			}
			return 0
		})
	s.mFleetIngest = s.reg.NewCounterVec("actd_fleet_ingest_total",
		"Fleet ingest outcomes, by device disposition.", "code")
	s.mFleetRecompute = s.reg.NewHistogram("actd_fleet_recompute_seconds",
		"Latency of full fleet recomputations in seconds.", DefaultLatencyBuckets)
	s.mEncodeErrors = s.reg.NewCounter("actd_response_encode_errors_total",
		"Response bodies that failed to encode after the status line was committed.")
	s.mClusterPeerState = s.reg.NewGaugeVec("actd_cluster_peer_breaker_state",
		"Per-peer cluster RPC breaker position (0 closed, 1 open, 2 half-open).", "peer")
	s.mClusterScatter = s.reg.NewCounterVec("actd_cluster_scatter_total",
		"Cluster scatter-gather summaries, by outcome (full, partial, error).", "outcome")
	s.mScriptEvals = s.reg.NewCounterVec("actd_script_evals_total",
		"Sandboxed script evaluations, by outcome code.", "code")
	s.mScriptSteps = s.reg.NewHistogram("actd_script_steps",
		"Evaluator steps consumed per successful script.",
		[]float64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000})
	s.mScriptDuration = s.reg.NewHistogram("actd_script_duration_seconds",
		"Sandboxed script evaluation latency in seconds.", DefaultLatencyBuckets)

	if cfg.MaxInFlight > 0 {
		s.admit = resilience.NewAdmission(resilience.AdmissionConfig{
			MaxInFlight: cfg.MaxInFlight,
			MaxQueue:    cfg.MaxQueue,
		})
	}
	s.reg.NewGaugeFunc("actd_queue_depth",
		"Requests waiting for an admission slot.", func() int64 {
			if s.admit == nil {
				return 0
			}
			return s.admit.Queued()
		})

	if cfg.BreakerThreshold > 0 {
		s.breakers = map[string]*resilience.Breaker{}
		for _, name := range []string{"footprint", "sweep", "script", "fleet_ingest", "fleet_recompute"} {
			name := name
			s.mBreakerState.With(name).Store(int64(resilience.Closed))
			s.breakers[name] = resilience.NewBreaker(resilience.BreakerConfig{
				FailureThreshold: cfg.BreakerThreshold,
				OpenFor:          cfg.BreakerOpenFor,
				OnStateChange: func(from, to resilience.State) {
					s.mBreakerState.With(name).Store(int64(to))
					s.log.Warn("breaker state change", "handler", name,
						"from", from.String(), "to", to.String())
				},
			})
		}
	}

	s.mux.Handle("POST /v1/footprint", s.api("footprint", s.handleFootprint))
	s.mux.Handle("POST /v1/sweep", s.api("sweep", s.handleSweep))
	s.mux.Handle("POST /v1/script", s.api("script", s.handleScript))
	s.mux.Handle("POST /v1/fleet/devices", s.api("fleet_ingest", s.handleFleetIngest))
	s.mux.Handle("GET /v1/fleet/summary", s.api("fleet_summary", s.handleFleetSummary))
	s.mux.Handle("DELETE /v1/fleet/devices/{id}", s.api("fleet_delete", s.handleFleetDelete))
	s.mux.Handle("POST /v1/fleet/recompute", s.api("fleet_recompute", s.handleFleetRecompute))
	s.mux.Handle("GET /v1/cluster/partial", s.api("cluster_partial", s.handleClusterPartial))
	s.mux.Handle("GET /v1/cluster/snapshot", s.api("cluster_snapshot", s.handleClusterSnapshot))
	s.mux.Handle("POST /v1/cluster/recompute/prepare", s.api("cluster_prepare", s.handleClusterPrepare))
	s.mux.Handle("POST /v1/cluster/recompute/commit", s.api("cluster_commit", s.handleClusterCommit))
	s.mux.Handle("POST /v1/cluster/recompute/abort", s.api("cluster_abort", s.handleClusterAbort))
	s.mux.Handle("GET /v1/export/config", s.api("export_config", s.handleExportConfigGet))
	s.mux.Handle("PUT /v1/export/config", s.api("export_config", s.handleExportConfigPut))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	s.httpSrv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the service's HTTP handler, for mounting under httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on the configured address until Shutdown. A clean
// shutdown returns nil.
func (s *Server) ListenAndServe() error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on l until Shutdown. A clean shutdown returns nil.
func (s *Server) Serve(l net.Listener) error {
	s.log.Info("actd serving", "addr", l.Addr().String())
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server gracefully: new API requests are rejected
// with 503 immediately, listeners close, and in-flight requests run to
// completion (bounded by ctx — a lapsed ctx abandons stragglers the way
// net/http.Server.Shutdown does).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.log.Info("actd draining")
	return s.httpSrv.Shutdown(ctx)
}

// api wraps an API handler with the service middleware, outermost first:
// request-id propagation, drain rejection, in-flight accounting, the
// per-request timeout, admission control (shed with 429 before any work),
// the handler's circuit breaker (503 while open), a panic barrier (500),
// metrics and structured request logging.
func (s *Server) api(name string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := s.reqIDs.requestID(r)
		w.Header().Set("X-Request-Id", reqID)
		r = r.WithContext(withRequestID(r.Context(), reqID))

		s.mInflight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		s.dispatch(name, rec, r, h)
		dur := time.Since(start)
		s.mInflight.Dec()

		s.mRequests.With(name, strconv.Itoa(rec.code)).Add(1)
		s.mLatency.Observe(dur.Seconds())
		s.log.Info("request",
			"handler", name,
			"method", r.Method,
			"path", r.URL.Path,
			"code", rec.code,
			"duration_ms", float64(dur.Microseconds())/1e3,
			"remote", r.RemoteAddr,
			"request_id", reqID,
		)
	})
}

// dispatch runs one admitted-or-shed request through the resilience layers
// and the handler. It always writes a complete response to rec.
func (s *Server) dispatch(name string, rec *statusRecorder, r *http.Request, h func(http.ResponseWriter, *http.Request)) {
	if s.draining.Load() {
		s.writeErrorCode(rec, r, http.StatusServiceUnavailable, codeUnavailable, "", "server is draining")
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}

	// Admission: shed before any work is accepted, so an overloaded server
	// answers cheaply instead of queueing work it cannot finish.
	if s.admit != nil {
		release, err := s.admit.Acquire(ctx)
		if err != nil {
			shed, _ := resilience.IsShed(err)
			s.mShed.With(shed.Reason).Add(1)
			rec.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
			s.writeErrorCode(rec, r, http.StatusTooManyRequests, codeOverloaded, "",
				"overloaded: "+shed.Error())
			return
		}
		defer release()
	}

	// Circuit breaker around everything the handler computes.
	if brk := s.breakers[name]; brk != nil {
		done, err := brk.Allow()
		if err != nil {
			s.mShed.With(resilience.ShedBreaker).Add(1)
			if ra := brk.RetryAfter(); ra > 0 {
				rec.Header().Set("Retry-After", retryAfterSeconds(ra))
			}
			s.writeErrorCode(rec, r, http.StatusServiceUnavailable, codeUnavailable, "",
				"service temporarily unavailable: "+err.Error())
			return
		}
		// The panic barrier below runs first (deferred later), so rec.code
		// is final — a panic counts as the 500 it produced.
		defer func() { done(rec.code < 500) }()
	}

	// Panic barrier: a crashing evaluation answers 500 with the request id
	// instead of killing the connection (or, unrecovered, the process).
	defer func() {
		if p := recover(); p != nil {
			s.log.Error("handler panic",
				"handler", name,
				"request_id", RequestIDFrom(r.Context()),
				"panic", fmt.Sprint(p),
				"stack", string(debug.Stack()),
			)
			if !rec.wrote {
				s.writeErrorCode(rec, r, http.StatusInternalServerError, codeInternal, "",
					"internal error")
			} else {
				rec.code = http.StatusInternalServerError // for metrics/breaker
			}
		}
	}()

	h(rec, r)
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// at least 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// writeJSON writes v as the response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// handleHealthz is the liveness probe: 200 for as long as the process can
// answer at all — even while draining, the process is alive. Routability
// is /readyz's job.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 while draining, while fleet
// persistence is degraded (the store is read-only until a probe heals
// it), or while any handler's circuit breaker is open, so load balancers
// route around a server that would only shed or reject; 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if st := s.fleetStore.Load(); st != nil {
		if down, reason := st.Degraded(); down {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status": "degraded",
				"reason": reason,
			})
			return
		}
	}
	for name, brk := range s.breakers {
		if brk.State() == resilience.Open {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"status":  "breaker-open",
				"handler": name,
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.reg.Render()))
}
