// The footprint cache: a bounded LRU with singleflight admission. Fleet
// assessments ("Chasing Carbon" style) batch thousands of device BoMs of
// which only a handful are distinct, so the common case is that a
// scenario's result is already resident — or being computed right now by
// another request's worker. The LRU answers the first case, the flight
// table the second: concurrent callers of the same key coalesce onto one
// computation instead of evaluating the model N times.

package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"act/internal/faultinject"
)

// Cache is a bounded LRU keyed by string with singleflight admission. The
// zero value is not usable; see NewCache. All methods are safe for
// concurrent use.
type Cache[V any] struct {
	capacity int

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight[V]
}

type lruEntry[V any] struct {
	key string
	val V
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewCache creates a cache holding at most capacity entries. A capacity
// below 1 disables residency — every Do computes (still coalesced by the
// flight table), nothing is stored.
func NewCache[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		flights:  map[string]*flight[V]{},
	}
}

// Do returns the value for key, computing it with fn on a miss. Concurrent
// calls for the same key run fn exactly once: latecomers block until the
// leader finishes (or their ctx is done, in which case they abandon the
// wait — the leader still completes and populates the cache). hit reports
// whether this call avoided running fn, i.e. the value came from residency
// or a coalesced flight. Errors are propagated to every waiter and are not
// cached, so a transiently failing key can be retried.
//
// fn receives the leader's ctx so the computation can honor the request
// deadline: a leader whose deadline lapses fails its flight with the ctx
// error (not cached — the next request recomputes) instead of holding a
// worker on a result nobody is waiting for.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func(ctx context.Context) (V, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v = el.Value.(*lruEntry[V]).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			// hit only when the flight produced a usable value.
			return f.val, f.err == nil, f.err
		case <-ctx.Done():
			return v, false, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// Leader path. The deferred cleanup keeps waiters from blocking forever
	// if fn panics: the flight finishes with an error so waiters fail
	// cleanly, then the panic continues on the leader's goroutine.
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("serve: cache compute panicked: %v", r)
			c.finish(key, f)
			panic(r)
		}
	}()
	if ierr := faultinject.Visit(ctx, faultinject.SiteCacheCompute); ierr != nil {
		f.err = ierr
	} else {
		f.val, f.err = fn(ctx)
	}
	v, err = f.val, f.err
	if err == nil {
		c.store(key, v)
	}
	c.finish(key, f)
	return v, false, err
}

// Get returns the resident value for key, bumping its recency. Unlike Do
// it never waits on a flight — the columnar batch path probes residency
// up front and dedupes the misses itself.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put stores a computed value without flight coordination, for callers
// that evaluated the key outside Do (the columnar batch path).
func (c *Cache[V]) Put(key string, v V) { c.store(key, v) }

// finish removes the flight and wakes its waiters.
func (c *Cache[V]) finish(key string, f *flight[V]) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
}

// store inserts a computed value, evicting from the cold end when full.
func (c *Cache[V]) store(key string, v V) {
	if c.capacity < 1 {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		// A concurrent leader for the same key can race us here; keep the
		// freshest value and bump it.
		el.Value.(*lruEntry[V]).val = v
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry[V]).key)
		}
	}
	c.mu.Unlock()
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
