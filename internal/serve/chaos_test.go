//go:build faultinject

// The chaos suite: actd under seeded fault injection. Build and run with
//
//	go test -race -tags faultinject ./internal/serve/
//
// (make verify-chaos). Hooks at the four injection sites — cache compute,
// pool worker, memdb lookup, script eval — throw latency, transient errors and panics
// from a deterministic PRNG while concurrent clients hammer the API. The
// assertions are the resilience contract: every request answers with a
// status from the taxonomy, nothing deadlocks, no goroutine outlives the
// storm, and once faults clear the service returns byte-identical results.

package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"act/internal/acterr"
	"act/internal/faultinject"
	"act/internal/scenario"
	"act/internal/script"
)

// chaosRNG is a splitmix64 stream behind a mutex: hooks fire from many
// goroutines but the fault sequence stays reproducible for one seed.
type chaosRNG struct {
	mu sync.Mutex
	s  uint64
}

func (r *chaosRNG) next() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pct draws a number in [0,100).
func (r *chaosRNG) pct() uint64 { return r.next() % 100 }

// registerStorm installs hooks at every injection site. Rates are per
// visit: a mix of clean passes, short latency, transient errors, and (at
// the cache site) the occasional panic to exercise the panic barrier.
func registerStorm(rng *chaosRNG) {
	faultinject.Register(faultinject.SiteCacheCompute, func(string) faultinject.Fault {
		switch p := rng.pct(); {
		case p < 10:
			return faultinject.Fault{Err: acterr.Transient(errors.New("injected cache fault"))}
		case p < 12:
			return faultinject.Fault{Panic: "injected cache panic"}
		case p < 30:
			return faultinject.Fault{Latency: 200 * time.Microsecond}
		}
		return faultinject.Fault{}
	})
	faultinject.Register(faultinject.SitePoolWorker, func(string) faultinject.Fault {
		switch p := rng.pct(); {
		case p < 5:
			return faultinject.Fault{Err: acterr.Transient(errors.New("injected pool fault"))}
		case p < 20:
			return faultinject.Fault{Latency: 100 * time.Microsecond}
		}
		return faultinject.Fault{}
	})
	faultinject.Register(faultinject.SiteMemdbLookup, func(string) faultinject.Fault {
		if rng.pct() < 5 {
			return faultinject.Fault{Err: acterr.Transient(errors.New("injected memdb fault"))}
		}
		return faultinject.Fault{}
	})
	faultinject.Register(faultinject.SiteScriptEval, func(string) faultinject.Fault {
		switch p := rng.pct(); {
		case p < 10:
			return faultinject.Fault{Err: acterr.Transient(errors.New("injected script fault"))}
		case p < 25:
			return faultinject.Fault{Latency: 150 * time.Microsecond}
		}
		return faultinject.Fault{}
	})
}

// TestChaosStorm is the headline chaos run. Faults are injected at every
// site while concurrent clients send single and batch requests; then the
// storm stops and the same requests must evaluate cleanly and
// byte-identically.
func TestChaosStorm(t *testing.T) {
	if !faultinject.Enabled {
		t.Skip("not built with -tags faultinject")
	}
	t.Cleanup(faultinject.Reset)

	s, ts := newTestServer(t, Config{
		Workers:        2,
		RetryAttempts:  3,
		BreakerOpenFor: 30 * time.Millisecond, // recover fast once faults clear
	})
	_ = s

	// Leak baseline: after the test server is up and has served once, so
	// httptest's accept loop and keep-alive conns are part of the floor.
	if resp, _ := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(49))); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup request failed: %d", resp.StatusCode)
	}
	baseline := runtime.NumGoroutine()

	rng := &chaosRNG{s: 42}
	registerStorm(rng)

	// The storm: concurrent clients, mixed shapes, every response drained.
	const clients, rounds = 8, 12
	codeCount := make([]map[int]int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		codeCount[c] = map[int]int{}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				url := ts.URL + "/v1/footprint"
				var body []byte
				switch i % 3 {
				case 0:
					body = mustJSON(t, testSpec(float64(50+c)))
				case 1:
					specs := make([]*scenario.Spec, 20)
					for j := range specs {
						specs[j] = testSpec(float64(100 + c*100 + j))
					}
					body = mustJSON(t, specs)
				default:
					url = ts.URL + "/v1/script"
					body = scriptBody(t, fmt.Sprintf("sum(range(%d))", 10+c))
				}
				resp, err := http.Post(url, "application/json",
					strings.NewReader(string(body)))
				if err != nil {
					t.Errorf("client %d: transport error: %v", c, err)
					return
				}
				readAll(t, resp)
				resp.Body.Close()
				codeCount[c][resp.StatusCode]++
			}
		}(c)
	}
	wg.Wait()

	// Status taxonomy: under injected faults the only legal answers are
	// 200 (retries absorbed the fault), 500 (fault survived the budget or a
	// panic), 503 (breaker opened on a 5xx streak), 429/504 under load.
	legal := map[int]bool{200: true, 429: true, 500: true, 503: true, 504: true}
	saw := map[int]int{}
	for c := range codeCount {
		for code, n := range codeCount[c] {
			saw[code] += n
			if !legal[code] {
				t.Errorf("illegal status %d during fault storm (client %d, %d times)", code, c, n)
			}
		}
	}
	t.Logf("storm statuses: %v; fired: cache=%d pool=%d memdb=%d script=%d",
		saw,
		faultinject.Fired(faultinject.SiteCacheCompute),
		faultinject.Fired(faultinject.SitePoolWorker),
		faultinject.Fired(faultinject.SiteMemdbLookup),
		faultinject.Fired(faultinject.SiteScriptEval))
	if faultinject.Fired(faultinject.SiteCacheCompute) == 0 ||
		faultinject.Fired(faultinject.SitePoolWorker) == 0 ||
		faultinject.Fired(faultinject.SiteScriptEval) == 0 {
		t.Error("fault storm never fired at a primary site — the chaos run tested nothing")
	}

	// Storm over: faults clear, the breaker (if tripped) relaxes, and the
	// service must answer byte-identically to a clean evaluation.
	faultinject.Reset()
	spec := testSpec(77)
	want := expectedResult(t, spec)
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, spec))
		if resp.StatusCode == http.StatusOK {
			if string(body) != string(want) {
				t.Fatalf("post-storm result not byte-identical:\n got %.200q\nwant %.200q", body, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not recover after faults cleared: status %d, body %.200s",
				resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The script surface recovers the same way: once faults clear the
	// envelope must match a direct library evaluation byte for byte.
	src := "sum(range(10))"
	res, err := script.Eval(context.Background(), src, script.Options{})
	if err != nil {
		t.Fatalf("clean library eval: %v", err)
	}
	var wantScript bytes.Buffer
	if err := res.Encode(&wantScript); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, src))
		if resp.StatusCode == http.StatusOK {
			if string(body) != wantScript.String() {
				t.Fatalf("post-storm script result not byte-identical:\n got %.200q\nwant %.200q", body, wantScript.Bytes())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("script surface did not recover after faults cleared: status %d, body %.200s",
				resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// No goroutine outlives the storm (allow scheduler/keep-alive slack).
	leakDeadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= baseline+4 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Errorf("goroutines leaked through the storm: baseline=%d now=%d", baseline, runtime.NumGoroutine())
}

// TestChaosRetryAbsorbsOccasionalFault pins the happy path of the retry
// budget: a site that fails exactly once per key still yields 200, and the
// retry counter records the absorbed faults.
func TestChaosRetryAbsorbsOccasionalFault(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s, ts := newTestServer(t, Config{RetryAttempts: 3})

	var mu sync.Mutex
	failedOnce := false
	faultinject.Register(faultinject.SiteCacheCompute, func(string) faultinject.Fault {
		mu.Lock()
		defer mu.Unlock()
		if !failedOnce {
			failedOnce = true
			return faultinject.Fault{Err: acterr.Transient(errors.New("first attempt fails"))}
		}
		return faultinject.Fault{}
	})

	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(88)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (retry should absorb one fault); body %.200s",
			resp.StatusCode, body)
	}
	if got := s.mRetries.Value(); got == 0 {
		t.Error("actd_retries_total did not record the absorbed fault")
	}
	if want := expectedResult(t, testSpec(88)); string(body) != string(want) {
		t.Error("retried result not byte-identical to a clean evaluation")
	}
}

// TestChaosExhaustedRetriesAnswer500 pins the other side: a site that
// always fails burns the whole budget and answers 500 — never a hang, and
// never a 400 (transient faults are not the client's fault).
func TestChaosExhaustedRetriesAnswer500(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{RetryAttempts: 2, BreakerThreshold: -1})

	faultinject.Register(faultinject.SiteCacheCompute, func(string) faultinject.Fault {
		return faultinject.Fault{Err: acterr.Transient(errors.New("persistent fault"))}
	})

	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(99)))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %.200s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "request_id") {
		t.Error("500 body missing request_id")
	}
}

// TestChaosPanicBecomesContained500 pins the panic barrier end to end: an
// injected panic in the cache compute path answers 500 on that request and
// the very next request (faults cleared) evaluates normally.
func TestChaosPanicBecomesContained500(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{RetryAttempts: 1, BreakerThreshold: -1})

	faultinject.Register(faultinject.SiteCacheCompute, func(string) faultinject.Fault {
		return faultinject.Fault{Panic: fmt.Sprintf("injected panic")}
	})
	resp, _ := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(64)))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}

	faultinject.Reset()
	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(64)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status %d, want 200; body %.200s", resp.StatusCode, body)
	}
}

// TestChaosDeadlineCutsInjectedLatency pins cancellable fault latency: a
// hook that injects latency far beyond the request timeout must not pin
// workers — the request answers 504 promptly and workers unwind.
func TestChaosDeadlineCutsInjectedLatency(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := newTestServer(t, Config{
		RequestTimeout:   25 * time.Millisecond,
		RetryAttempts:    1,
		Workers:          2,
		BreakerThreshold: -1,
	})
	if resp, _ := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(63))); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup request failed: %d", resp.StatusCode)
	}
	baseline := runtime.NumGoroutine()

	faultinject.Register(faultinject.SiteCacheCompute, func(string) faultinject.Fault {
		return faultinject.Fault{Latency: 10 * time.Second}
	})

	start := time.Now()
	resp, _ := postJSON(t, ts.URL+"/v1/footprint", distinctBatch(t, 8, 0))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("504 took %s — injected latency was not cut by the deadline", el)
	}

	faultinject.Reset()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+4 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Errorf("workers pinned by injected latency: baseline=%d now=%d", baseline, runtime.NumGoroutine())
}
