// Cluster mode. EnableCluster attaches a cluster.Cluster to the server,
// after which the public fleet routes behave cluster-wide: ingest
// scatters to owners, summaries scatter-gather-and-fold, deletes proxy
// to the owner, and recompute runs the two-phase protocol across the
// membership. The private /v1/cluster/* routes are the inter-node
// surface — always registered, answering 404 until cluster mode is on.
//
// Partial quorum: when some members are unreachable, a summary still
// answers — HTTP 206 with the closed envelope code "partial" riding
// next to the reachable-node fold — so operators keep visibility into
// the surviving fleet during an outage instead of getting nothing.

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"act/internal/acterr"
	"act/internal/cluster"
	"act/internal/fleet"
	"act/internal/report"
	"act/internal/resilience"
)

// ClusterConfig is the actd-facing cluster configuration (cmd/actd
// flags; everything else — registry, resilience settings, metrics — is
// wired from the server's own config).
type ClusterConfig struct {
	// Self is this node's base URL as the membership names it.
	Self string
	// Peers is the full static membership, self included.
	Peers []string
	// Vnodes is the consistent-hash replication factor (0 = default).
	Vnodes int
}

// EnableCluster switches the server into cluster mode. Call it before
// serving traffic (cmd/actd does, and the conformance harness enables it
// before the first request).
func (s *Server) EnableCluster(cc ClusterConfig) error {
	c, err := cluster.New(cluster.Config{
		Self:             cc.Self,
		Peers:            cc.Peers,
		Vnodes:           cc.Vnodes,
		Registry:         s.fleet,
		RetryAttempts:    s.cfg.RetryAttempts,
		BreakerThreshold: s.cfg.BreakerThreshold,
		BreakerOpenFor:   s.cfg.BreakerOpenFor,
		OnPeerBreakerChange: func(peer string, from, to resilience.State) {
			s.mClusterPeerState.With(peer).Store(int64(to))
			s.log.Warn("cluster peer breaker state change",
				"peer", peer, "from", from.String(), "to", to.String())
		},
		Logf: func(format string, args ...any) {
			s.log.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return err
	}
	for _, m := range c.Members() {
		if m != c.Self() {
			s.mClusterPeerState.With(m).Store(int64(resilience.Closed))
		}
	}
	s.cluster.Store(c)
	s.log.Info("cluster mode enabled",
		"self", c.Self(), "members", len(c.Members()), "vnodes", c.Ring().Vnodes())
	return nil
}

// Cluster returns the attached cluster engine, nil in single-node mode.
func (s *Server) Cluster() *cluster.Cluster { return s.cluster.Load() }

// forwarded reports whether r is a routed member-to-member hop; such
// requests must be handled locally, never re-forwarded.
func forwarded(r *http.Request) bool { return r.Header.Get(cluster.ForwardedHeader) != "" }

// clusterFor returns the cluster engine when this request should take
// the cluster path: cluster mode on and not already a forwarded hop.
func (s *Server) clusterFor(r *http.Request) *cluster.Cluster {
	c := s.cluster.Load()
	if c == nil || forwarded(r) {
		return nil
	}
	return c
}

// partialSummaryResponse is the 206 body: the error envelope naming the
// unreachable members next to the reachable-node fold.
type partialSummaryResponse struct {
	Error   errorDetail             `json:"error"`
	Summary report.FleetSummaryJSON `json:"summary"`
}

// writePartialSummary answers a degraded scatter-gather.
func (s *Server) writePartialSummary(w http.ResponseWriter, r *http.Request, doc report.FleetSummaryJSON, missing []string) {
	s.mClusterScatter.With("partial").Add(1)
	writeJSON(w, http.StatusPartialContent, partialSummaryResponse{
		Error: errorDetail{
			Code:      codePartial,
			Message:   fmt.Sprintf("summary folded without %d unreachable member(s): %v", len(missing), missing),
			RequestID: RequestIDFrom(r.Context()),
		},
		Summary: doc,
	})
}

// writeClusterError classifies a cluster-path failure: typed conflicts
// are 409, transient faults (dead peers, open breakers, injected chaos)
// are 503 unavailable, everything else takes the standard taxonomy.
func (s *Server) writeClusterError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case cluster.IsConflict(err):
		s.writeErrorCode(w, r, http.StatusConflict, codeConflict, "", err.Error())
	case errors.Is(err, cluster.ErrEpochMixed):
		s.writeErrorCode(w, r, http.StatusServiceUnavailable, codeUnavailable, "", err.Error())
	case acterr.IsTransient(err):
		s.writeErrorCode(w, r, http.StatusServiceUnavailable, codeUnavailable, "", err.Error())
	default:
		s.writeError(w, r, err)
	}
}

// requireCluster 404s the private inter-node routes while cluster mode
// is off.
func (s *Server) requireCluster(w http.ResponseWriter, r *http.Request) *cluster.Cluster {
	c := s.cluster.Load()
	if c == nil {
		s.writeErrorCode(w, r, http.StatusNotFound, codeNotFound, "", "cluster mode is not enabled")
	}
	return c
}

// handleClusterPartial serves this node's scatter-gather contribution:
// GET /v1/cluster/partial?top=K&by=DIM. The partial carries only the
// group dimension named by `by` — the fold reads exactly one, so the
// coordinator asks for exactly one.
func (s *Server) handleClusterPartial(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w, r)
	if c == nil {
		return
	}
	topK := 0
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeErrorCode(w, r, http.StatusBadRequest, codeInvalidArgument, "top",
				fmt.Sprintf("cannot parse top-K %q", v))
			return
		}
		topK = n
	}
	groupBy := r.URL.Query().Get("by")
	if err := (fleet.Query{GroupBy: groupBy}).Validate(); err != nil {
		s.writeErrorCode(w, r, http.StatusBadRequest, codeInvalidArgument, "by",
			fmt.Sprintf("unknown group dimension %q", groupBy))
		return
	}
	p, err := c.LocalPartial(topK, groupBy)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// handleClusterSnapshot ships this node's full fleet state inside the
// durable-store envelope — the node-replacement transfer. With a store
// mounted it checkpoints first so the shipped WAL floor is honest.
func (s *Server) handleClusterSnapshot(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w, r)
	if c == nil {
		return
	}
	var floor uint64
	if st := s.fleetStore.Load(); st != nil {
		if err := s.CheckpointFleet(); err != nil {
			s.writeError(w, r, err)
			return
		}
		floor = st.Floor()
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(cluster.EpochHeader, strconv.FormatUint(c.Epoch(), 10))
	if err := s.fleet.WriteShip(w, floor); err != nil {
		// The status line is committed; all we can do is count and log.
		s.mEncodeErrors.Inc()
		s.log.Warn("cluster snapshot ship failed mid-stream",
			"request_id", RequestIDFrom(r.Context()), "error", err)
	}
}

// clusterRecomputeBody decodes the prepare/commit/abort control message.
func clusterRecomputeBody(r *http.Request) (epoch, fingerprint uint64, err error) {
	var msg struct {
		Epoch       uint64 `json:"epoch"`
		Fingerprint uint64 `json:"fingerprint"`
	}
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		return 0, 0, err
	}
	return msg.Epoch, msg.Fingerprint, nil
}

// handleClusterPrepare stages a repricing: phase one of the two-phase
// recompute.
func (s *Server) handleClusterPrepare(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w, r)
	if c == nil {
		return
	}
	epoch, fp, err := clusterRecomputeBody(r)
	if err != nil {
		s.writeErrorCode(w, r, http.StatusBadRequest, codeInvalidArgument, "", err.Error())
		return
	}
	if err := c.PrepareLocal(r.Context(), epoch, fp); err != nil {
		s.writeClusterError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"prepared": epoch})
}

// handleClusterCommit installs a staged repricing: phase two.
func (s *Server) handleClusterCommit(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w, r)
	if c == nil {
		return
	}
	epoch, _, err := clusterRecomputeBody(r)
	if err != nil {
		s.writeErrorCode(w, r, http.StatusBadRequest, codeInvalidArgument, "", err.Error())
		return
	}
	if err := c.CommitLocal(r.Context(), epoch); err != nil {
		s.writeClusterError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"committed": epoch})
}

// handleClusterAbort discards a staged repricing.
func (s *Server) handleClusterAbort(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w, r)
	if c == nil {
		return
	}
	epoch, _, err := clusterRecomputeBody(r)
	if err != nil {
		s.writeErrorCode(w, r, http.StatusBadRequest, codeInvalidArgument, "", err.Error())
		return
	}
	c.AbortLocal(epoch)
	writeJSON(w, http.StatusOK, map[string]any{"aborted": epoch})
}

// clusterSummary runs the scatter-gather-fold path for the public
// summary route (and the recompute route's response document).
func (s *Server) clusterSummary(w http.ResponseWriter, r *http.Request, c *cluster.Cluster, q fleet.Query) {
	doc, missing, err := c.Summary(r.Context(), q)
	if err != nil {
		s.mClusterScatter.With("error").Add(1)
		s.writeClusterError(w, r, err)
		return
	}
	if len(missing) > 0 {
		s.writePartialSummary(w, r, doc, missing)
		return
	}
	s.mClusterScatter.With("full").Add(1)
	w.Header().Set("Content-Type", "application/json")
	s.encodeBody(w, r, doc)
}
