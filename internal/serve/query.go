// The shared query binder: every v1 route that accepts the fleet query
// parameters (top=K, by=dimension) parses them through bindFleetQuery, so
// the parameter names, the typed 400s and the field paths in the error
// envelope ("query.top", "query.by") cannot drift between routes.

package serve

import (
	"net/url"
	"strconv"

	"act/internal/acterr"
	"act/internal/fleet"
)

// bindFleetQuery parses top= and by= into a validated fleet.Query. Every
// failure is a typed acterr.InvalidSpecError rooted at "query.", so the
// HTTP layer answers 400 with the offending parameter named.
func bindFleetQuery(vals url.Values) (fleet.Query, error) {
	var q fleet.Query
	if v := vals.Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return q, acterr.Invalid("query.top", "cannot parse top-K %q", v)
		}
		q.TopK = n
	}
	q.GroupBy = vals.Get("by")
	if err := q.Validate(); err != nil {
		// Validate's field paths are bare parameter names; re-root them
		// under "query." so the envelope points at the request surface.
		return q, acterr.Prefix("query", err)
	}
	return q, nil
}
