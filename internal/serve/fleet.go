// The /v1/fleet API: streaming NDJSON ingest into the fleet registry,
// O(shards) summaries, device removal, and model-table recomputation —
// plus the snapshot/write-ahead-log persistence glue actd uses across
// restarts. Summary responses are written through report.Encode, the same
// encoder `act fleet` uses, so the service body and the CLI output are
// byte-identical.

package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"time"

	"act/internal/acterr"
	"act/internal/fleet"
	"act/internal/report"
)

// Fleet exposes the server's fleet registry (tests and cmd/actd).
func (s *Server) Fleet() *fleet.Registry { return s.fleet }

// handleFleetIngest streams NDJSON device objects into the registry.
// Ingest is incremental: records apply in order and stay applied when a
// later record fails, and the error names the failing record's index.
// Outcome counts land in actd_fleet_ingest_total{code}: created, replaced,
// invalid (a 4xx the client can fix), error (an internal fault).
func (s *Server) handleFleetIngest(w http.ResponseWriter, r *http.Request) {
	res, err := s.fleet.IngestNDJSON(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.MaxBatch)
	if created := res.Upserted - res.Replaced; created > 0 {
		s.mFleetIngest.With("created").Add(uint64(created))
	}
	if res.Replaced > 0 {
		s.mFleetIngest.With("replaced").Add(uint64(res.Replaced))
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.mFleetIngest.With("invalid").Add(1)
			s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		case errors.Is(err, fleet.ErrTooMany):
			s.mFleetIngest.With("invalid").Add(1)
			s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "", err.Error())
		case acterr.IsInvalid(err):
			s.mFleetIngest.With("invalid").Add(1)
			s.writeError(w, r, err)
		default:
			s.mFleetIngest.With("error").Add(1)
			s.writeError(w, r, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleFleetSummary answers the aggregate fleet document. Optional query
// parameters: top=K adds the K largest per-device emitters, by=region|node|class
// adds per-group rows.
func (s *Server) handleFleetSummary(w http.ResponseWriter, r *http.Request) {
	q, err := bindFleetQuery(r.URL.Query())
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	doc, err := s.fleet.Query(q)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.encodeBody(w, r, doc)
}

// handleFleetDelete unregisters one device by id; 404 when absent.
func (s *Server) handleFleetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, err := s.fleet.Remove(id)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if !found {
		s.writeErrorCode(w, r, http.StatusNotFound, codeNotFound, "",
			fmt.Sprintf("no device %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": id})
}

// handleFleetRecompute re-evaluates every registered BoM against the
// current model tables and answers with the fresh summary. Latency lands
// in actd_fleet_recompute_seconds.
func (s *Server) handleFleetRecompute(w http.ResponseWriter, r *http.Request) {
	if err := s.recomputeFleet(r.Context()); err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.encodeBody(w, r, s.fleet.Summary())
}

// encodeBody writes a canonical result document onto a response whose
// status line is already committed (implicitly 200 on first write). A
// failure here cannot change the status anymore — it means the client went
// away or the connection broke mid-body — so it is logged and counted
// (actd_response_encode_errors_total) rather than discarded.
func (s *Server) encodeBody(w http.ResponseWriter, r *http.Request, doc any) {
	if err := report.Encode(w, doc); err != nil {
		s.mEncodeErrors.Inc()
		s.log.Warn("response body encode failed",
			"path", r.URL.Path,
			"request_id", RequestIDFrom(r.Context()),
			"error", err)
	}
}

// recomputeFleet runs one observed recomputation.
func (s *Server) recomputeFleet(ctx context.Context) error {
	start := time.Now()
	err := s.fleet.Recompute(ctx)
	s.mFleetRecompute.Observe(time.Since(start).Seconds())
	return err
}

// OpenFleet loads fleet state from disk and arranges durability for
// everything that follows: restore the snapshot (if one exists), replay
// the write-ahead log's tail (truncating a torn final frame), attach the
// log appender, and — when the snapshot was written against different
// model tables than this binary carries — recompute. Either path may be
// "" to skip it; with both "" the fleet is purely in-memory.
func (s *Server) OpenFleet(ctx context.Context, snapshotPath, walPath string) error {
	if snapshotPath != "" {
		f, err := os.Open(snapshotPath)
		switch {
		case err == nil:
			stale, rerr := s.fleet.Restore(f)
			f.Close()
			if rerr != nil {
				return rerr
			}
			s.log.Info("fleet snapshot restored",
				"path", snapshotPath, "devices", s.fleet.Len(), "stale", stale)
			if stale {
				defer func() {
					// Deferred so the WAL is attached first: the recompute is
					// then logged and survives a crash before the next snapshot.
					if err := s.recomputeFleet(ctx); err != nil {
						s.log.Error("fleet recompute after stale restore", "error", err)
					}
				}()
			}
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing to restore.
		default:
			return err
		}
	}
	if walPath != "" {
		f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		applied, offset, err := s.fleet.Replay(ctx, f)
		if err != nil {
			f.Close()
			return err
		}
		// Drop a torn final frame so the appender continues from the last
		// complete one.
		if err := f.Truncate(offset); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		s.fleetWAL = f
		s.fleet.AttachLog(f)
		if applied > 0 {
			s.log.Info("fleet write-ahead log replayed",
				"path", walPath, "operations", applied, "devices", s.fleet.Len())
		}
	}
	return nil
}

// SaveFleetSnapshot checkpoints the fleet to path: the snapshot is written
// to a temporary sibling, synced, renamed into place, and the write-ahead
// log truncated — the last three under the registry lock, so no operation
// slips between the snapshot and the log reset.
func (s *Server) SaveFleetSnapshot(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = s.fleet.Checkpoint(f, func() error {
		if err := f.Sync(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			return err
		}
		if s.fleetWAL == nil {
			return nil
		}
		if err := s.fleetWAL.Truncate(0); err != nil {
			return err
		}
		_, err := s.fleetWAL.Seek(0, io.SeekStart)
		return err
	})
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	s.log.Info("fleet snapshot saved", "path", path, "devices", s.fleet.Len())
	return nil
}

// CloseFleet releases the write-ahead log handle (after SaveFleetSnapshot
// on shutdown).
func (s *Server) CloseFleet() error {
	if s.fleetWAL == nil {
		return nil
	}
	err := s.fleetWAL.Close()
	s.fleetWAL = nil
	s.fleet.AttachLog(nil)
	return err
}
