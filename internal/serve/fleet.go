// The /v1/fleet API: streaming NDJSON ingest into the fleet registry,
// O(shards) summaries, device removal, and model-table recomputation —
// plus the snapshot/write-ahead-log persistence glue actd uses across
// restarts. Summary responses are written through report.Encode, the same
// encoder `act fleet` uses, so the service body and the CLI output are
// byte-identical.

package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"act/internal/acterr"
	"act/internal/cluster"
	"act/internal/fleet"
	"act/internal/report"
	"act/internal/vfs"
)

// Fleet exposes the server's fleet registry (tests and cmd/actd).
func (s *Server) Fleet() *fleet.Registry { return s.fleet }

// handleFleetIngest streams NDJSON device objects into the registry.
// Ingest is incremental: records apply in order and stay applied when a
// later record fails, and the error names the failing record's index.
// Outcome counts land in actd_fleet_ingest_total{code}: created, replaced,
// invalid (a 4xx the client can fix), error (an internal fault).
func (s *Server) handleFleetIngest(w http.ResponseWriter, r *http.Request) {
	var (
		res       fleet.IngestResult
		err       error
		clustered bool
	)
	if c := s.clusterFor(r); c != nil {
		clustered = true
		// Cluster coordinator: decode here, scatter each record to its
		// owning member (this node included). Forwarded hops fall through
		// to the local path below — a member never re-forwards.
		res, err = c.Ingest(r.Context(), http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.MaxBatch)
	} else {
		res, err = s.fleet.IngestNDJSON(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.MaxBatch)
	}
	if created := res.Upserted - res.Replaced; created > 0 {
		s.mFleetIngest.With("created").Add(uint64(created))
	}
	if res.Replaced > 0 {
		s.mFleetIngest.With("replaced").Add(uint64(res.Replaced))
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.mFleetIngest.With("invalid").Add(1)
			s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		case errors.Is(err, fleet.ErrTooMany):
			s.mFleetIngest.With("invalid").Add(1)
			s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "", err.Error())
		case acterr.IsInvalid(err):
			s.mFleetIngest.With("invalid").Add(1)
			s.writeError(w, r, err)
		default:
			s.mFleetIngest.With("error").Add(1)
			if clustered {
				// A dead owner or open peer breaker is the cluster's
				// unavailability, not an internal fault.
				s.writeClusterError(w, r, err)
			} else {
				s.writeError(w, r, err)
			}
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleFleetSummary answers the aggregate fleet document. Optional query
// parameters: top=K adds the K largest per-device emitters, by=region|node|class
// adds per-group rows.
func (s *Server) handleFleetSummary(w http.ResponseWriter, r *http.Request) {
	q, err := bindFleetQuery(r.URL.Query())
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if c := s.clusterFor(r); c != nil {
		s.clusterSummary(w, r, c, q)
		return
	}
	doc, err := s.fleet.Query(q)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.encodeBody(w, r, doc)
}

// handleFleetDelete unregisters one device by id; 404 when absent.
func (s *Server) handleFleetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if c := s.cluster.Load(); c != nil && !c.IsLocal(id) {
		if forwarded(r) {
			// The sender thought we own this device; we disagree. A second
			// hop could loop forever, so answer conflict instead.
			s.writeClusterError(w, r, cluster.ErrNotOwner)
			return
		}
		status, body, err := c.ProxyDelete(r.Context(), c.OwnerOf(id), id)
		if err != nil {
			s.writeClusterError(w, r, err)
			return
		}
		// Relay the owner's verbatim answer. The forwarded request carried
		// our X-Request-Id, so the relayed body's request_id matches ours.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write(body)
		return
	}
	found, err := s.fleet.Remove(id)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if !found {
		s.writeErrorCode(w, r, http.StatusNotFound, codeNotFound, "",
			fmt.Sprintf("no device %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": id})
}

// handleFleetRecompute re-evaluates every registered BoM against the
// current model tables and answers with the fresh summary. Latency lands
// in actd_fleet_recompute_seconds.
func (s *Server) handleFleetRecompute(w http.ResponseWriter, r *http.Request) {
	if c := s.clusterFor(r); c != nil {
		// Two-phase coordinator: prepare on every member, then commit, then
		// answer the cluster-wide summary.
		start := time.Now()
		err := c.Recompute(r.Context())
		s.mFleetRecompute.Observe(time.Since(start).Seconds())
		if err != nil {
			s.writeClusterError(w, r, err)
			return
		}
		s.clusterSummary(w, r, c, fleet.Query{})
		return
	}
	if err := s.recomputeFleet(r.Context()); err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.encodeBody(w, r, s.fleet.Summary())
}

// encodeBody writes a canonical result document onto a response whose
// status line is already committed (implicitly 200 on first write). A
// failure here cannot change the status anymore — it means the client went
// away or the connection broke mid-body — so it is logged and counted
// (actd_response_encode_errors_total) rather than discarded.
func (s *Server) encodeBody(w http.ResponseWriter, r *http.Request, doc any) {
	if err := report.Encode(w, doc); err != nil {
		s.mEncodeErrors.Inc()
		s.log.Warn("response body encode failed",
			"path", r.URL.Path,
			"request_id", RequestIDFrom(r.Context()),
			"error", err)
	}
}

// recomputeFleet runs one observed recomputation.
func (s *Server) recomputeFleet(ctx context.Context) error {
	start := time.Now()
	err := s.fleet.Recompute(ctx)
	s.mFleetRecompute.Observe(time.Since(start).Seconds())
	return err
}

// FleetDurability configures the fleet store actd mounts under the
// registry: a snapshot file plus a directory of checksummed write-ahead
// log segments. The zero value (both paths empty) keeps the fleet purely
// in-memory.
type FleetDurability struct {
	// SnapshotPath is the checkpoint file ("" with WALDir also "" =
	// in-memory fleet).
	SnapshotPath string
	// WALDir is the segment directory. A pre-segmentation single-file WAL
	// at this path is migrated into it on first boot.
	WALDir string
	// SegmentBytes rotates the active segment past this size (0 = the
	// store default).
	SegmentBytes int64
	// CompactInterval runs background checkpoints (and degraded-mode
	// probes) this often; 0 disables the compactor — checkpoints then
	// happen only on shutdown or via CheckpointFleet.
	CompactInterval time.Duration
	// FS overrides the filesystem (tests inject vfs.MemFS; nil = the
	// real disk).
	FS vfs.FS
}

// OpenFleet mounts durable storage under the fleet registry: restore the
// snapshot, replay the write-ahead log segments (quarantining corrupt
// ones), attach the appender, and — when the snapshot was written against
// different model tables than this binary carries — recompute. With
// CompactInterval set it also starts the background compactor.
func (s *Server) OpenFleet(ctx context.Context, d FleetDurability) error {
	if d.SnapshotPath == "" && d.WALDir == "" {
		return nil
	}
	if d.SnapshotPath == "" || d.WALDir == "" {
		return errors.New("fleet durability needs both a snapshot path and a WAL directory")
	}
	st, err := fleet.OpenStore(ctx, s.fleet, fleet.StoreConfig{
		FS:           d.FS,
		SnapshotPath: d.SnapshotPath,
		WALDir:       d.WALDir,
		SegmentBytes: d.SegmentBytes,
		Logf: func(format string, args ...any) {
			s.log.Warn("fleet store: " + fmt.Sprintf(format, args...))
		},
		OnQuarantine: func(name, reason string) {
			s.log.Error("fleet wal segment quarantined", "segment", name, "reason", reason)
		},
	})
	if err != nil {
		return err
	}
	s.fleetStore.Store(st)
	s.log.Info("fleet store opened",
		"snapshot", d.SnapshotPath, "wal_dir", d.WALDir,
		"devices", s.fleet.Len(), "wal_segments", st.WALSegments(),
		"quarantined", st.QuarantinedTotal(), "stale", st.Stale())
	if st.Stale() {
		// The WAL is already attached, so the recompute is logged and
		// survives a crash before the next checkpoint.
		if err := s.recomputeFleet(ctx); err != nil {
			s.log.Error("fleet recompute after stale restore", "error", err)
		}
	}
	if d.CompactInterval > 0 {
		s.compactor = startFleetCompactor(s, st, d.CompactInterval)
	}
	return nil
}

// FleetStore exposes the mounted fleet store (nil while in-memory) for
// tests and cmd/actd.
func (s *Server) FleetStore() *fleet.Store { return s.fleetStore.Load() }

// CheckpointFleet folds the write-ahead log into a fresh snapshot and
// drops the covered segments. A no-op without a mounted store.
func (s *Server) CheckpointFleet() error {
	st := s.fleetStore.Load()
	if st == nil {
		return nil
	}
	if err := st.Checkpoint(); err != nil {
		return err
	}
	s.log.Info("fleet checkpoint saved",
		"devices", s.fleet.Len(), "wal_segments", st.WALSegments())
	return nil
}

// CloseFleet stops the compactor and releases the store (after
// CheckpointFleet on shutdown). A no-op without a mounted store.
func (s *Server) CloseFleet() error {
	if s.compactor != nil {
		s.compactor.stop()
		s.compactor = nil
	}
	st := s.fleetStore.Load()
	if st == nil {
		return nil
	}
	s.fleetStore.Store(nil)
	return st.Close()
}

// fleetCompactor periodically checkpoints the store so the WAL directory
// stays bounded, and — while the store is degraded — probes for recovery
// so a transient full disk or failed fsync heals without a restart.
type fleetCompactor struct {
	stopc chan struct{}
	done  chan struct{}
}

func startFleetCompactor(s *Server, st *fleet.Store, every time.Duration) *fleetCompactor {
	c := &fleetCompactor{stopc: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-c.stopc:
				return
			case <-t.C:
				if down, reason := st.Degraded(); down {
					if err := st.Probe(); err != nil {
						s.log.Warn("fleet persistence still degraded",
							"reason", reason, "probe_error", err.Error())
						continue
					}
					s.log.Info("fleet persistence recovered", "was", reason)
				}
				if err := st.Checkpoint(); err != nil {
					s.log.Error("fleet compaction", "error", err)
				}
			}
		}
	}()
	return c
}

func (c *fleetCompactor) stop() {
	close(c.stopc)
	<-c.done
}
