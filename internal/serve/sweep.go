package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"act/internal/acterr"
	"act/internal/dse"
	"act/internal/metrics"
	"act/internal/scenario"
	"act/internal/units"
)

// sweepRequest asks for metric rankings and/or a Pareto frontier over a set
// of candidate design points — the API form of cmd/actsweep.
type sweepRequest struct {
	Version    int              `json:"version,omitempty"`
	Candidates []sweepCandidate `json:"candidates"`
	// Rank lists Table 2 metrics to rank by (e.g. "CDP", "CEP"); "all"
	// expands to every metric.
	Rank []string `json:"rank,omitempty"`
	// Pareto lists candidate axes ("embodied", "energy", "delay", "area")
	// to build a Pareto frontier over; needs at least two.
	Pareto []string `json:"pareto,omitempty"`
}

type sweepCandidate struct {
	Name      string  `json:"name"`
	EmbodiedG float64 `json:"embodied_g"`
	EnergyJ   float64 `json:"energy_j"`
	DelayS    float64 `json:"delay_s"`
	AreaMM2   float64 `json:"area_mm2,omitempty"`
}

type sweepResponse struct {
	Rankings []sweepRanking `json:"rankings,omitempty"`
	Pareto   []string       `json:"pareto,omitempty"`
}

type sweepRanking struct {
	Metric string       `json:"metric"`
	Ranked []sweepScore `json:"ranked"`
}

type sweepScore struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// builtinObjectives maps the Pareto axis names to the dse objectives.
var builtinObjectives = map[string]dse.Objective{
	"embodied": dse.Embodied,
	"energy":   dse.Energy,
	"delay":    dse.Delay,
	"area":     dse.Area,
}

// handleSweep ranks candidate design points under the requested Table 2
// metrics and/or reduces them to a Pareto frontier.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeBadRequest(w, r, fmt.Errorf("reading request body: %w", err))
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeBadRequest(w, r, fmt.Errorf("parsing sweep request: %w", err))
		return
	}
	if req.Version != 0 && req.Version != scenario.Version {
		s.writeError(w, r, &acterr.UnsupportedVersionError{Version: req.Version})
		return
	}
	if len(req.Candidates) == 0 {
		s.writeError(w, r, acterr.Invalid("candidates", "at least one candidate is required"))
		return
	}
	if len(req.Rank) == 0 && len(req.Pareto) == 0 {
		s.writeError(w, r, acterr.Invalid("rank", `request asks for nothing: set "rank" and/or "pareto"`))
		return
	}

	cands := make([]metrics.Candidate, len(req.Candidates))
	for i, c := range req.Candidates {
		cands[i] = metrics.Candidate{
			Name:     c.Name,
			Embodied: units.Grams(c.EmbodiedG),
			Energy:   units.Joules(c.EnergyJ),
			Delay:    time.Duration(c.DelayS * float64(time.Second)),
			Area:     units.MM2(c.AreaMM2),
		}
		if cands[i].Name == "" {
			s.writeError(w, r, acterr.Invalid(fmt.Sprintf("candidates[%d].name", i), "name is required"))
			return
		}
		if err := cands[i].Validate(); err != nil {
			s.writeError(w, r, acterr.Prefix(fmt.Sprintf("candidates[%d]", i), err))
			return
		}
	}

	var resp sweepResponse

	for _, name := range expandMetrics(req.Rank) {
		m := metrics.Metric(strings.ToUpper(strings.TrimSpace(name)))
		ranked, err := metrics.Rank(m, cands)
		if err != nil {
			s.writeError(w, r, acterr.Invalid("rank", "%v", err))
			return
		}
		sr := sweepRanking{Metric: string(m), Ranked: make([]sweepScore, len(ranked))}
		for i, sc := range ranked {
			sr.Ranked[i] = sweepScore{Name: sc.Candidate.Name, Value: sc.Value}
		}
		resp.Rankings = append(resp.Rankings, sr)
	}

	if len(req.Pareto) > 0 {
		if len(req.Pareto) < 2 {
			s.writeError(w, r, acterr.Invalid("pareto", "a Pareto frontier needs at least two objectives, got %d", len(req.Pareto)))
			return
		}
		objectives := make([]dse.Objective, len(req.Pareto))
		for i, axis := range req.Pareto {
			o, ok := builtinObjectives[strings.ToLower(strings.TrimSpace(axis))]
			if !ok {
				s.writeError(w, r, acterr.Invalid(fmt.Sprintf("pareto[%d]", i),
					"unknown objective %q (want embodied, energy, delay or area)", axis))
				return
			}
			objectives[i] = o
		}
		frontier, err := dse.ParetoFrontierCtx(r.Context(), cands, objectives)
		if err != nil {
			// A lapsed request deadline must surface as 504, not as a
			// candidate-validation 400.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.writeError(w, r, err)
				return
			}
			s.writeError(w, r, acterr.Invalid("pareto", "%v", err))
			return
		}
		resp.Pareto = make([]string, len(frontier))
		for i, c := range frontier {
			resp.Pareto[i] = c.Name
		}
	}

	writeJSON(w, http.StatusOK, resp)
}

// expandMetrics resolves the "all" shorthand.
func expandMetrics(names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if strings.EqualFold(strings.TrimSpace(n), "all") {
			for _, m := range metrics.All() {
				out = append(out, string(m))
			}
			continue
		}
		out = append(out, n)
	}
	return out
}
