// The unified v1 error envelope. Every non-2xx API response carries the
// same JSON shape:
//
//	{"error": {"code": "...", "field": "...", "message": "...", "request_id": "..."}}
//
// code is a stable machine-readable class (the closed set below), field is
// the offending request field when the failure is a validation error, and
// request_id attributes the failure to one request in the server logs.
// Every handler funnels through writeError (typed-error classification) or
// writeErrorCode (explicit status), so the envelope cannot drift between
// routes.

package serve

import (
	"context"
	"errors"
	"net/http"

	"act/internal/acterr"
	"act/internal/fleet"
)

// The closed set of machine-readable error codes the v1 API serves.
const (
	// codeInvalidArgument: the request is the client's to fix (400).
	codeInvalidArgument = "invalid_argument"
	// codeUnsupportedVersion: a wire-envelope version this binary does not
	// speak (400).
	codeUnsupportedVersion = "unsupported_version"
	// codeTooLarge: body, batch or ingest over the configured limit (413).
	codeTooLarge = "too_large"
	// codeNotFound: the named resource does not exist (404).
	codeNotFound = "not_found"
	// codeConflict: a versioned update lost the race (409).
	codeConflict = "conflict"
	// codeOverloaded: shed before any work was accepted (429).
	codeOverloaded = "overloaded"
	// codeUnavailable: draining or a circuit breaker is open (503).
	codeUnavailable = "unavailable"
	// codeDegraded: fleet persistence is degraded — the store is
	// read-only until a probe heals it, and writes are rejected (503).
	codeDegraded = "degraded"
	// codeTimeout: the request deadline lapsed after work was accepted (504).
	codeTimeout = "timeout"
	// codeInternal: an internal fault — a panic, or a transient fault that
	// survived the retry budget (500).
	codeInternal = "internal"
	// codePartial: a cluster scatter-gather answered from the reachable
	// members only — some nodes were unreachable, so the document under-
	// counts their devices (206). The envelope rides next to the folded
	// summary; a client that needs the full fleet retries once the
	// missing members heal.
	codePartial = "partial"
	// codeInvalidScript: a /v1/script program failed to parse or faulted
	// at runtime — the program is the client's to fix (400).
	codeInvalidScript = "invalid_script"
	// codeScriptBudget: a /v1/script program was cut off at a hard
	// resource budget (steps, allocation, deadline, depth). Determinis-
	// tic, so also the client's to fix: shrink the program (400).
	codeScriptBudget = "script_budget"
)

// errorDetail is the envelope's inner object.
type errorDetail struct {
	Code string `json:"code"`
	// Field is the offending request field path when the failure is a
	// validation error ("logic[0].node", "query.top").
	Field     string `json:"field,omitempty"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// errorResponse is the JSON error body for every non-2xx API response.
type errorResponse struct {
	Error errorDetail `json:"error"`
}

// writeErrorCode writes the envelope with an explicit status and code —
// the path for failures that are not typed errors (limits, routing,
// middleware rejections).
func (s *Server) writeErrorCode(w http.ResponseWriter, r *http.Request, status int, code, field, message string) {
	writeJSON(w, status, errorResponse{Error: errorDetail{
		Code:      code,
		Field:     field,
		Message:   message,
		RequestID: RequestIDFrom(r.Context()),
	}})
}

// writeError classifies a typed error into its status and code: deadline
// lapses are 504/timeout, degraded-persistence rejections are
// 503/degraded, client-fixable spec problems are 400 with
// invalid_argument (or unsupported_version), everything else — including
// transient faults that survived the retry budget — is 500/internal.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	det := errorDetail{Code: codeInternal, Message: err.Error()}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		det.Code = codeTimeout
		det.Message = "request timed out: " + err.Error()
	case errors.Is(err, fleet.ErrDegraded):
		status = http.StatusServiceUnavailable
		det.Code = codeDegraded
	case acterr.IsInvalid(err):
		status = http.StatusBadRequest
		det.Code = codeInvalidArgument
		if errors.Is(err, acterr.ErrUnsupportedVersion) {
			det.Code = codeUnsupportedVersion
		}
		var inv *acterr.InvalidSpecError
		if errors.As(err, &inv) {
			det.Field = inv.Field
		}
	}
	det.RequestID = RequestIDFrom(r.Context())
	writeJSON(w, status, errorResponse{Error: det})
}

// writeBadRequest answers 400 for a request that failed before any typed
// validation could run (unparseable body, unknown wire field): whatever
// the error, it is the client's to fix. A typed error in the chain still
// contributes its field path and version code.
func (s *Server) writeBadRequest(w http.ResponseWriter, r *http.Request, err error) {
	det := errorDetail{
		Code:      codeInvalidArgument,
		Message:   err.Error(),
		RequestID: RequestIDFrom(r.Context()),
	}
	if errors.Is(err, acterr.ErrUnsupportedVersion) {
		det.Code = codeUnsupportedVersion
	}
	var inv *acterr.InvalidSpecError
	if errors.As(err, &inv) {
		det.Field = inv.Field
	}
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: det})
}
