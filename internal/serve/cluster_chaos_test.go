//go:build faultinject

// Cluster chaos: the scatter-gather path under seeded fault injection at
// the two cluster sites — the inter-node RPC (cluster.rpc) and the
// coordinator fold (cluster.fold). Build and run with
//
//	go test -race -tags faultinject ./internal/serve/
//
// (make verify-chaos). Concurrent clients hammer summaries and scattered
// ingests while the hooks throw latency and transient errors; the
// assertions are the cluster resilience contract: every answer comes from
// the closed taxonomy (full, partial, or a typed failure — never a hang
// or an untyped status), and once the faults clear the cluster refolds
// byte-identically to its pre-storm answer.

package serve

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"act/internal/acterr"
	"act/internal/faultinject"
)

// registerClusterStorm installs the cluster-site hooks: transient errors
// and short latency at the RPC boundary, occasional transient errors in
// the fold.
func registerClusterStorm(rng *chaosRNG) {
	faultinject.Register(faultinject.SiteClusterRPC, func(string) faultinject.Fault {
		switch p := rng.pct(); {
		case p < 12:
			return faultinject.Fault{Err: acterr.Transient(errors.New("injected cluster rpc fault"))}
		case p < 30:
			return faultinject.Fault{Latency: 150 * time.Microsecond}
		}
		return faultinject.Fault{}
	})
	faultinject.Register(faultinject.SiteClusterFold, func(string) faultinject.Fault {
		if rng.pct() < 8 {
			return faultinject.Fault{Err: acterr.Transient(errors.New("injected fold fault"))}
		}
		return faultinject.Fault{}
	})
}

// TestChaosClusterStorm is the cluster chaos headline run.
func TestChaosClusterStorm(t *testing.T) {
	if !faultinject.Enabled {
		t.Skip("not built with -tags faultinject")
	}
	t.Cleanup(faultinject.Reset)

	_, _, urls := newTestCluster(t, 2, Config{
		Workers:        2,
		RetryAttempts:  3,
		BreakerOpenFor: 30 * time.Millisecond,
	})

	lines := clusterFleetLines(t, 80)
	resp, err := http.Post(urls[0]+"/v1/fleet/devices", "application/x-ndjson", bytes.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed ingest: %d", resp.StatusCode)
	}

	// The clean answer every storm survivor must refold to.
	resp, err = http.Get(urls[0] + "/v1/fleet/summary?top=5&by=region")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean summary: %d %.200s", resp.StatusCode, want)
	}

	rng := &chaosRNG{s: 77}
	registerClusterStorm(rng)

	// The storm: summaries from both coordinators and re-ingests of the
	// same fleet (idempotent upserts) racing the injected faults.
	const clients, rounds = 6, 15
	codeCount := make([]map[int]int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		codeCount[c] = map[int]int{}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var resp *http.Response
				var err error
				switch i % 3 {
				case 0:
					resp, err = http.Get(urls[c%2] + "/v1/fleet/summary")
				case 1:
					resp, err = http.Get(urls[c%2] + "/v1/fleet/summary?top=3&by=region")
				default:
					resp, err = http.Post(urls[c%2]+"/v1/fleet/devices",
						"application/x-ndjson", bytes.NewReader(lines))
				}
				if err != nil {
					t.Errorf("client %d: transport error: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				codeCount[c][resp.StatusCode]++
			}
		}(c)
	}
	wg.Wait()

	// The closed cluster taxonomy under injected faults: 200 (retries
	// absorbed it), 206 (a peer was unreachable, reachable members folded),
	// 500 (a fault survived the budget), 503 (breaker open or fold fault),
	// 429/504 under load.
	legal := map[int]bool{200: true, 206: true, 429: true, 500: true, 503: true, 504: true}
	saw := map[int]int{}
	for c := range codeCount {
		for code, n := range codeCount[c] {
			saw[code] += n
			if !legal[code] {
				t.Errorf("illegal status %d during cluster storm (client %d, %d times)", code, c, n)
			}
		}
	}
	t.Logf("cluster storm statuses: %v; fired: rpc=%d fold=%d",
		saw,
		faultinject.Fired(faultinject.SiteClusterRPC),
		faultinject.Fired(faultinject.SiteClusterFold))
	if faultinject.Fired(faultinject.SiteClusterRPC) == 0 {
		t.Error("the storm never fired at cluster.rpc — the chaos run tested nothing")
	}
	if faultinject.Fired(faultinject.SiteClusterFold) == 0 {
		t.Error("the storm never fired at cluster.fold")
	}

	// Faults clear; the refold must return to the pre-storm bytes. The
	// re-ingested lines are idempotent upserts, so the fleet state — and
	// therefore the document — is unchanged.
	faultinject.Reset()
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(urls[1] + "/v1/fleet/summary?top=5&by=region")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if !bytes.Equal(got, want) {
				t.Fatalf("post-storm refold not byte-identical:\n got %.300s\nwant %.300s", got, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not recover after faults cleared: %d %.200s", resp.StatusCode, got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
