package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"act/internal/resilience"
	"act/internal/scenario"
)

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, b.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// distinctBatch builds n specs with n distinct canonical keys.
func distinctBatch(t *testing.T, n, offset int) []byte {
	t.Helper()
	specs := make([]*scenario.Spec, n)
	for i := range specs {
		specs[i] = testSpec(float64(1000 + offset + i))
	}
	return mustJSON(t, specs)
}

// TestRequestIDMinting checks every API response carries an X-Request-Id,
// a sane client-provided id is echoed, a hostile one is replaced, and
// error bodies carry the id for log correlation.
func TestRequestIDMinting(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, _ := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(11)))
	minted := resp.Header.Get("X-Request-Id")
	if minted == "" {
		t.Fatal("no X-Request-Id on a minted response")
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/footprint", strings.NewReader(`{"name":`))
	req.Header.Set("X-Request-Id", "client-abc-123")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp2)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "client-abc-123" {
		t.Errorf("sane client id not echoed: got %q", got)
	}
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body: status %d, want 400", resp2.StatusCode)
	}
	var e errorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("error body not JSON: %v (%s)", err, body)
	}
	if e.Error.RequestID != "client-abc-123" {
		t.Errorf("error body request_id = %q, want the request's id", e.Error.RequestID)
	}

	req, _ = http.NewRequest("POST", ts.URL+"/v1/footprint", strings.NewReader("{}"))
	req.Header.Set("X-Request-Id", "bad id with spaces\"")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-Id"); got == "" || strings.Contains(got, " ") {
		t.Errorf("hostile client id not replaced: got %q", got)
	}
}

// TestSaturationSheds429 is the acceptance check for admission control:
// under a burst far beyond capacity, some requests complete (200) while
// the rest are shed with 429 + Retry-After before any work was accepted —
// and nothing else in the taxonomy appears.
func TestSaturationSheds429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlight: 1,
		MaxQueue:    -1, // no wait queue: overflow sheds immediately
		Workers:     1,
		CacheSize:   -1, // every scenario runs the model, lengthening each request
	})

	const clients = 20
	codes := make([]int, clients)
	retryAfter := make([]string, clients)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer done.Done()
			body := distinctBatch(t, 3000, c*3000)
			start.Wait()
			resp, err := http.Post(ts.URL+"/v1/footprint", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Error(err)
				return
			}
			readAll(t, resp)
			resp.Body.Close()
			codes[c] = resp.StatusCode
			retryAfter[c] = resp.Header.Get("Retry-After")
		}(c)
	}
	start.Done()
	done.Wait()

	var ok200, shed429 int
	for c, code := range codes {
		switch code {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
			if secs, err := strconv.Atoi(retryAfter[c]); err != nil || secs < 1 {
				t.Errorf("429 without a usable Retry-After: %q", retryAfter[c])
			}
		default:
			t.Errorf("client %d: status %d, want 200 or 429", c, code)
		}
	}
	if ok200 == 0 {
		t.Error("no request completed under saturation")
	}
	if shed429 == 0 {
		t.Error("no request was shed under saturation")
	}
	if got := s.mShed.Value(resilience.ShedQueueFull); got < uint64(shed429) {
		t.Errorf("actd_shed_total{queue_full} = %d, want >= %d", got, shed429)
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, `actd_shed_total{reason="queue_full"}`) {
		t.Error("shed counter missing from /metrics exposition")
	}
	if !strings.Contains(metrics, "actd_queue_depth 0") {
		t.Error("queue depth gauge missing or non-zero at rest")
	}
}

// TestCancelledBatchReleasesWorkers is the acceptance check for deadline
// propagation: a batch that cannot finish inside the request timeout
// answers 504 and every pool worker unwinds — no goroutine keeps
// evaluating scenarios for a request nobody is waiting on.
func TestCancelledBatchReleasesWorkers(t *testing.T) {
	_, ts := newTestServer(t, Config{
		RequestTimeout: 15 * time.Millisecond,
		Workers:        1,
		CacheSize:      -1,
		RetryAttempts:  1,
	})
	// Warm up so httptest's accept loop and the keep-alive conn goroutines
	// are part of the leak baseline.
	if resp, _ := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(9))); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup failed: %d", resp.StatusCode)
	}
	before := runtime.NumGoroutine()

	resp, body := postJSON(t, ts.URL+"/v1/footprint", distinctBatch(t, 10000, 0))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %.200s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error.RequestID == "" {
		t.Errorf("504 body missing request_id: %s", body)
	}

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 { // +2: httptest keep-alive slack
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after 504: before=%d now=%d", before, runtime.NumGoroutine())
}

// TestBreakerOpensRejectsAndRecovers trips the footprint breaker the way a
// fault streak would, then checks the full surface: 503 + Retry-After on
// the API, 503 on /readyz, the state gauge at open — and after OpenFor
// plus one successful probe, full recovery.
func TestBreakerOpensRejectsAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, Config{
		BreakerThreshold: 5,
		BreakerOpenFor:   50 * time.Millisecond,
	})
	brk := s.breakers["footprint"]
	if brk == nil {
		t.Fatal("footprint breaker not wired")
	}
	for i := 0; i < 5; i++ {
		done, err := brk.Allow()
		if err != nil {
			t.Fatalf("breaker rejected before threshold: %v", err)
		}
		done(false)
	}

	resp, _ := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(12)))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-breaker 503 missing Retry-After")
	}
	if got := s.mShed.Value(resilience.ShedBreaker); got == 0 {
		t.Error("breaker rejection not counted in actd_shed_total")
	}
	if got := s.mBreakerState.Value("footprint"); got != int64(resilience.Open) {
		t.Errorf("breaker gauge = %d, want open (%d)", got, resilience.Open)
	}
	if r, _ := getBody(t, ts.URL+"/readyz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz with open breaker = %d, want 503", r.StatusCode)
	}
	if r, _ := getBody(t, ts.URL+"/healthz"); r.StatusCode != http.StatusOK {
		t.Errorf("healthz with open breaker = %d, want 200 (liveness is not readiness)", r.StatusCode)
	}

	time.Sleep(60 * time.Millisecond)
	resp, body := postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(12)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe: status %d, want 200; body %.200s", resp.StatusCode, body)
	}
	if r, _ := getBody(t, ts.URL+"/readyz"); r.StatusCode != http.StatusOK {
		t.Errorf("readyz after recovery = %d, want 200", r.StatusCode)
	}
	if got := s.mBreakerState.Value("footprint"); got != int64(resilience.Closed) {
		t.Errorf("breaker gauge after recovery = %d, want closed", got)
	}
}

// TestResilienceMetricsExposed pins the new instruments' presence and
// shape in the exposition output.
func TestResilienceMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, _ = postJSON(t, ts.URL+"/v1/footprint", mustJSON(t, testSpec(13)))
	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"# TYPE actd_shed_total counter",
		"# TYPE actd_retries_total counter",
		"actd_retries_total 0",
		"# TYPE actd_breaker_state gauge",
		`actd_breaker_state{handler="footprint"} 0`,
		`actd_breaker_state{handler="sweep"} 0`,
		"# TYPE actd_queue_depth gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
