// Request-ID propagation. Every API request carries an X-Request-Id: the
// client's own (when it sends a sane one) or a server-generated id,
// minted ONCE per inbound request. The id rides the request context
// (internal/reqid, so the cluster and export layers can forward it on
// their outbound calls without importing serve), appears in the response
// headers, in every structured log line, and in every JSON error body —
// which is what makes a failure in a thousand-request chaos run, or a
// proxied cross-node ingest hop, attributable to one request.

package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"

	"act/internal/reqid"
)

// RequestIDFrom returns the request id carried by ctx, or "" outside a
// request.
func RequestIDFrom(ctx context.Context) string { return reqid.From(ctx) }

func withRequestID(ctx context.Context, id string) context.Context {
	return reqid.With(ctx, id)
}

// reqIDSource mints process-unique request ids: a random per-server nonce
// plus a sequence number. Cheaper than per-request crypto randomness and
// trivially greppable in logs.
type reqIDSource struct {
	nonce string
	seq   atomic.Uint64
}

func newReqIDSource() *reqIDSource {
	var b [4]byte
	_, _ = rand.Read(b[:])
	return &reqIDSource{nonce: hex.EncodeToString(b[:])}
}

func (g *reqIDSource) next() string {
	return fmt.Sprintf("%s-%06d", g.nonce, g.seq.Add(1))
}

// requestID returns the client's X-Request-Id when it is sane (non-empty,
// bounded, printable ASCII without spaces), else a freshly minted id.
func (g *reqIDSource) requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > 64 {
		return g.next()
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' || id[i] == '"' {
			return g.next()
		}
	}
	return id
}
