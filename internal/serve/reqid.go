// Request-ID propagation. Every API request carries an X-Request-Id: the
// client's own (when it sends a sane one) or a server-generated id. The id
// rides the request context, appears in the response headers, in every
// structured log line, and in every JSON error body — which is what makes
// a failure in a thousand-request chaos run attributable to one request.

package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

type reqIDKey struct{}

// RequestIDFrom returns the request id carried by ctx, or "" outside a
// request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// reqIDSource mints process-unique request ids: a random per-server nonce
// plus a sequence number. Cheaper than per-request crypto randomness and
// trivially greppable in logs.
type reqIDSource struct {
	nonce string
	seq   atomic.Uint64
}

func newReqIDSource() *reqIDSource {
	var b [4]byte
	_, _ = rand.Read(b[:])
	return &reqIDSource{nonce: hex.EncodeToString(b[:])}
}

func (g *reqIDSource) next() string {
	return fmt.Sprintf("%s-%06d", g.nonce, g.seq.Add(1))
}

// requestID returns the client's X-Request-Id when it is sane (non-empty,
// bounded, printable ASCII without spaces), else a freshly minted id.
func (g *reqIDSource) requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > 64 {
		return g.next()
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' || id[i] == '"' {
			return g.next()
		}
	}
	return id
}
