// Cluster harness for the serve-side tests: real Servers behind
// swappable httptest fronts, plus the breaker observability test that
// pins the actd_cluster_peer_breaker_state gauge through a peer's death
// and recovery. The chaos storm in cluster_chaos_test.go (faultinject
// builds only) reuses the harness.

package serve

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"act/internal/scenario"
)

// peerFront is a mutable HTTP front for one cluster member: mark it down
// to answer 503 on everything, heal it to restore the real handler.
type peerFront struct {
	mu   sync.RWMutex
	h    http.Handler
	down bool
}

func (f *peerFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.RLock()
	h, down := f.h, f.down
	f.mu.RUnlock()
	if down {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":{"code":"unavailable","message":"peer down (test)"}}`))
		return
	}
	h.ServeHTTP(w, r)
}

func (f *peerFront) setDown(d bool) { f.mu.Lock(); f.down = d; f.mu.Unlock() }

// newTestCluster builds an n-member loopback cluster of real Servers.
func newTestCluster(t *testing.T, n int, cfg Config) ([]*Server, []*peerFront, []string) {
	t.Helper()
	srvs := make([]*Server, n)
	fronts := make([]*peerFront, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		c := cfg
		if c.Logger == nil {
			c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
		}
		srvs[i] = New(c)
		fronts[i] = &peerFront{h: srvs[i].Handler()}
		ts := httptest.NewServer(fronts[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	for i, s := range srvs {
		if err := s.EnableCluster(ClusterConfig{Self: urls[i], Peers: urls}); err != nil {
			t.Fatal(err)
		}
	}
	return srvs, fronts, urls
}

// clusterFleetLines renders n valid device lines.
func clusterFleetLines(t *testing.T, n int) []byte {
	t.Helper()
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		raw, err := scenario.Marshal(&scenario.Spec{
			Name:  fmt.Sprintf("bom-%d", i%7),
			Logic: []scenario.LogicSpec{{Name: "soc", AreaMM2: float64(10 + i%7), Node: "7nm"}},
			Usage: scenario.UsageSpec{PowerW: 2, AppHours: 876.6},
		})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, `{"id":"dev-%05d","region":"europe","deployed":"2024-01-01","scenario":%s}`+"\n", i, raw)
	}
	return b.Bytes()
}

// metricsBody fetches /metrics from a base URL.
func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterPeerBreakerMetrics pins the operational surface of a peer
// outage: the coordinator's per-peer breaker opens after the failure
// threshold and the actd_cluster_peer_breaker_state gauge shows it; while
// the peer is dead, summaries degrade and actd_cluster_scatter_total
// counts partial outcomes; after the peer heals the breaker closes again
// and full scatters resume.
func TestClusterPeerBreakerMetrics(t *testing.T) {
	srvs, fronts, urls := newTestCluster(t, 2, Config{
		Workers:          2,
		BreakerThreshold: 2,
		BreakerOpenFor:   80 * time.Millisecond,
	})
	_ = srvs

	lines := clusterFleetLines(t, 40)
	resp, err := http.Post(urls[0]+"/v1/fleet/devices", "application/x-ndjson", bytes.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}

	peerGauge := fmt.Sprintf("actd_cluster_peer_breaker_state{peer=%q}", urls[1])
	if m := metricsBody(t, urls[0]); !strings.Contains(m, peerGauge+" 0") {
		t.Fatalf("healthy cluster: %s not 0 in metrics", peerGauge)
	}

	// Kill the peer and summarize until the breaker crosses its threshold.
	fronts[1].setDown(true)
	sawPartial := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(urls[0] + "/v1/fleet/summary")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusPartialContent {
			sawPartial = true
		}
		if strings.Contains(metricsBody(t, urls[0]), peerGauge+" 1") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawPartial {
		t.Error("no summary degraded to 206 while the peer was dead")
	}
	m := metricsBody(t, urls[0])
	if !strings.Contains(m, peerGauge+" 1") {
		t.Fatalf("breaker never opened: %s not 1 in metrics", peerGauge)
	}
	if !strings.Contains(m, `actd_cluster_scatter_total{outcome="partial"}`) {
		t.Error("actd_cluster_scatter_total did not count partial outcomes")
	}

	// Heal. The next probes after the open window close the breaker and
	// the gauge returns to 0 with full scatters resuming.
	fronts[1].setDown(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(urls[0] + "/v1/fleet/summary")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK &&
			strings.Contains(metricsBody(t, urls[0]), peerGauge+" 0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker did not close after the peer healed (last status %d)", resp.StatusCode)
		}
		time.Sleep(15 * time.Millisecond)
	}
	if !strings.Contains(metricsBody(t, urls[0]), `actd_cluster_scatter_total{outcome="full"}`) {
		t.Error("actd_cluster_scatter_total did not count full outcomes")
	}
}
