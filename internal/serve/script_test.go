package serve

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"act/internal/scenario"
	"act/internal/script"
)

// scriptBody builds the POST /v1/script request body around a program.
func scriptBody(t *testing.T, source string) []byte {
	t.Helper()
	return mustJSON(t, map[string]any{"source": source})
}

func TestScriptOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := `let xs = [1, 2, 3]
emit("total", sum(xs))
sum(xs) * 10`
	resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, src))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	// The service answer must be byte-identical to direct library use.
	res, err := script.Eval(context.Background(), src, script.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("service response differs from library Eval:\n%s\nwant:\n%s", body, want.Bytes())
	}
}

// TestScriptFootprintDoc proves the byte-identity chain through the host
// API: a program that returns footprint_doc(spec) carries the canonical
// result document (as a JSON string) through the HTTP surface unchanged.
func TestScriptFootprintDoc(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := scenario.Example()
	specJSON, err := scenario.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := "footprint_doc(" + string(specJSON) + ")"
	resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, src))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	res, err := script.Eval(context.Background(), src, script.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("footprint_doc over HTTP differs from library Eval:\n%s\nwant:\n%s", body, want.Bytes())
	}
	doc := expectedResult(t, spec)
	if !bytes.Contains(body, mustJSON(t, string(doc))) {
		t.Errorf("response does not embed the canonical result document:\n%s", body)
	}
}

func TestScriptParseError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, "let = 3"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if det := decodeError(t, body); det.Code != codeInvalidScript {
		t.Errorf("code = %q, want %q (body %s)", det.Code, codeInvalidScript, body)
	}
}

func TestScriptRuntimeError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, `1 / 0`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if det := decodeError(t, body); det.Code != codeInvalidScript {
		t.Errorf("code = %q, want %q (body %s)", det.Code, codeInvalidScript, body)
	}
}

func TestScriptBudgetSteps(t *testing.T) {
	_, ts := newTestServer(t, Config{ScriptMaxSteps: 1000})
	src := `let n = 0
for i in range(1000000) { n = n + 1 }
n`
	resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, src))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if det := decodeError(t, body); det.Code != codeScriptBudget {
		t.Errorf("code = %q, want %q (body %s)", det.Code, codeScriptBudget, body)
	}
}

func TestScriptBudgetDeadline(t *testing.T) {
	// The script's own wall-clock budget lapses while the request deadline
	// is still comfortable: that is the program's fault, so 400.
	_, ts := newTestServer(t, Config{
		ScriptTimeout:  30 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
	})
	resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, `let n = 0
for n < 1 { }`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if det := decodeError(t, body); det.Code != codeScriptBudget {
		t.Errorf("code = %q, want %q (body %s)", det.Code, codeScriptBudget, body)
	}
}

func TestScriptRequestTimeoutOutranksBudget(t *testing.T) {
	// The request deadline lapses before the script budget: the infra is
	// answering for its own deadline, so 504/timeout, not script_budget.
	_, ts := newTestServer(t, Config{
		RequestTimeout: 30 * time.Millisecond,
		ScriptTimeout:  10 * time.Second,
	})
	resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, `let n = 0
for n < 1 { }`))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if det := decodeError(t, body); det.Code != codeTimeout {
		t.Errorf("code = %q, want %q (body %s)", det.Code, codeTimeout, body)
	}
}

func TestScriptBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name     string
		body     []byte
		wantCode string
	}{
		{"not json", []byte(`{{`), codeInvalidArgument},
		{"unknown field", []byte(`{"source": "1", "bogus": true}`), codeInvalidArgument},
		{"missing source", []byte(`{}`), codeInvalidArgument},
		{"bad version", []byte(`{"version": 99, "source": "1"}`), codeUnsupportedVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/script", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s", resp.StatusCode, body)
			}
			if det := decodeError(t, body); det.Code != tc.wantCode {
				t.Errorf("code = %q, want %q (body %s)", det.Code, tc.wantCode, body)
			}
		})
	}
}

func TestScriptBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	big := bytes.Repeat([]byte("1"), 256)
	resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, string(big)))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if det := decodeError(t, body); det.Code != codeTooLarge {
		t.Errorf("code = %q, want %q (body %s)", det.Code, codeTooLarge, body)
	}
}

func TestScriptInvalidScenarioInProgram(t *testing.T) {
	// A broken scenario handed to footprint() is the program's fault:
	// invalid_script, not invalid_argument.
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/script", scriptBody(t, `footprint({"version": 1})`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if det := decodeError(t, body); det.Code != codeInvalidScript {
		t.Errorf("code = %q, want %q (body %s)", det.Code, codeInvalidScript, body)
	}
}
