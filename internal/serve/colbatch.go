// The columnar batch path for /v1/footprint: array requests decode once,
// probe the footprint cache per canonical key, and evaluate only the
// distinct misses through internal/colbatch in chunked column batches
// fanned across the worker pool. Single-object requests keep the scalar
// evalOne path untouched — it is the oracle the columnar engine is
// conformance-tested against.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"act/internal/acterr"
	"act/internal/colbatch"
	"act/internal/faultinject"
	"act/internal/parsweep"
	"act/internal/scenario"
)

// errScenarioFailed is the sentinel a chunk returns when one of its
// scenarios fails: the pool sees a non-ctx error (so it cancels and wins
// over ctx-induced sibling failures), while the real per-scenario error
// is recorded out of band and re-wrapped with the scenario index — the
// same "parsweep: item i" shape the scalar batch path reports.
var errScenarioFailed = errors.New("scenario failed")

// maxPooledBufBytes caps the capacity of response buffers returned to the
// pool, so one huge batch response does not pin its buffer forever.
const maxPooledBufBytes = 1 << 20

// bufPool holds response-encoding buffers: the per-result document buffer
// in evalOne and the batch join buffer in handleFootprint.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBufBytes {
		bufPool.Put(b)
	}
}

// missChunk is one contiguous run of the deduped miss list, the unit of
// work fanned across the pool.
type missChunk struct{ start, end int }

// evalBatchColumnar answers a whole batch: cache probes for residency,
// batch-local dedup by canonical key, columnar evaluation of the distinct
// misses. Metrics match the scalar path item for item — every scenario
// counts, a resident or batch-coalesced item is a hit, every distinct
// evaluation is a miss — and item errors carry the same "[i]"-prefixed
// field paths the scalar batch path reports.
func (s *Server) evalBatchColumnar(ctx context.Context, specs []*scenario.Spec) ([]json.RawMessage, error) {
	results := make([]json.RawMessage, len(specs))
	keyOf := make([]string, len(specs))
	first := make(map[string]int, len(specs)) // key → first non-resident index
	miss := make([]int, 0, len(specs))
	for i, spec := range specs {
		s.mScenarios.Inc()
		key := spec.CanonicalKey()
		keyOf[i] = key
		if raw, ok := s.cache.Get(key); ok {
			s.mCacheHits.Inc()
			results[i] = raw
			continue
		}
		if _, seen := first[key]; seen {
			// Coalesced onto the first occurrence's evaluation — the
			// batch-local equivalent of joining a cache flight.
			s.mCacheHits.Inc()
			continue
		}
		first[key] = i
		s.mCacheMisses.Inc()
		miss = append(miss, i)
	}

	if len(miss) > 0 {
		nChunks := (len(miss) + colbatch.DefaultChunk - 1) / colbatch.DefaultChunk
		chunks := make([]missChunk, nChunks)
		for c := range chunks {
			start := c * colbatch.DefaultChunk
			chunks[c] = missChunk{start, min(start+colbatch.DefaultChunk, len(miss))}
		}
		// The pool indexes chunks, but failures must report the scenario
		// index. record keeps the lowest-index scenario error; the chunk
		// hands the pool the sentinel instead.
		var (
			errMu  sync.Mutex
			errIdx = -1
			errVal error
		)
		record := func(gi int, err error) error {
			errMu.Lock()
			if errIdx == -1 || gi < errIdx {
				errIdx, errVal = gi, err
			}
			errMu.Unlock()
			return errScenarioFailed
		}
		if _, err := parsweep.MapErrCtx(ctx, s.cfg.Workers, chunks,
			func(ctx context.Context, _ int, ch missChunk) (struct{}, error) {
				s.mPoolDepth.Inc()
				defer s.mPoolDepth.Dec()
				chunkSpecs := make([]*scenario.Spec, ch.end-ch.start)
				for j := range chunkSpecs {
					// Every evaluated scenario passes the injected-fault
					// site the scalar cache-miss path passes, honoring
					// the request deadline.
					if err := faultinject.Visit(ctx, faultinject.SiteCacheCompute); err != nil {
						return struct{}{}, record(miss[ch.start+j],
							acterr.Prefix(fmt.Sprintf("[%d]", miss[ch.start+j]), err))
					}
					chunkSpecs[j] = specs[miss[ch.start+j]]
				}
				r := colbatch.Eval(chunkSpecs)
				defer r.Close()
				for j := 0; j < r.Len(); j++ {
					gi := miss[ch.start+j]
					if err := r.Err(j); err != nil {
						return struct{}{}, record(gi, acterr.Prefix(fmt.Sprintf("[%d]", gi), err))
					}
					// Copy out of the pooled arena before caching: the
					// cache and the response outlive the batch columns.
					raw := json.RawMessage(bytes.Clone(r.Doc(j)))
					s.cache.Put(keyOf[gi], raw)
					results[gi] = raw
				}
				return struct{}{}, nil
			}); err != nil {
			// Substitute the recorded scenario error only when the pool's
			// winner is our sentinel: a parent-ctx cancellation or an
			// injected pool-worker fault passes through unchanged.
			if errors.Is(err, errScenarioFailed) && errIdx >= 0 {
				return nil, parsweep.ItemError(errIdx, errVal)
			}
			return nil, err
		}
	}

	// Batch-local duplicates read their key's evaluated first occurrence.
	for i := range results {
		if results[i] == nil {
			results[i] = results[first[keyOf[i]]]
		}
	}
	return results, nil
}
