// The service's metric instruments live in internal/prom so other
// subsystems (the telemetry exporter, tests) can register into the same
// hand-rolled registry actd renders at /metrics. These aliases keep the
// serve API spelled the way the rest of the package (and its tests)
// always spelled it.

package serve

import "act/internal/prom"

// Instrument aliases: the serve names are the prom types.
type (
	Registry    = prom.Registry
	Counter     = prom.Counter
	CounterFunc = prom.CounterFunc
	CounterVec  = prom.CounterVec
	Gauge       = prom.Gauge
	GaugeVec    = prom.GaugeVec
	GaugeFunc   = prom.GaugeFunc
	Histogram   = prom.Histogram
)

// NewRegistry creates an empty instrument registry.
func NewRegistry() *Registry { return prom.NewRegistry() }

// DefaultLatencyBuckets are the upper bounds (seconds) of the request
// latency histograms — the Prometheus client default spread.
var DefaultLatencyBuckets = prom.DefaultLatencyBuckets
