// The /v1/export/config API: runtime inspection and retuning of the push
// telemetry exporter. The document is versioned for optimistic
// concurrency — a PUT must carry the version it read, and a lost race
// answers 409/conflict — so two operators retuning the interval cannot
// silently clobber each other.

package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"act/internal/acterr"
)

// exporterControl is the slice of the exporter the config API drives. An
// interface so serve stays decoupled from internal/export; cmd/actd wires
// the real *export.Exporter through AttachExporter.
type exporterControl interface {
	Interval() time.Duration
	SetInterval(time.Duration) error
	RateBytesPerSec() int
	SetRateBytesPerSec(int) error
	URLs() []string
}

// AttachExporter wires the running exporter into the config API. Call
// before serving; a server without one answers 404 on /v1/export/config.
func (s *Server) AttachExporter(e exporterControl) {
	s.exporter = e
	s.exportCfgVersion.Store(1)
}

// MetricsRegistry exposes the server's instrument registry so sidecar
// subsystems (the telemetry exporter) register self-metrics into the same
// /metrics exposition.
func (s *Server) MetricsRegistry() *Registry { return s.reg }

// exportConfigJSON is the versioned config document GET returns and PUT
// accepts (URLs are read-only: delivery targets are a deployment decision,
// not a runtime retune).
type exportConfigJSON struct {
	Version         int64    `json:"version"`
	IntervalMS      int64    `json:"interval_ms"`
	RateBytesPerSec int      `json:"rate_bytes_per_sec"`
	URLs            []string `json:"urls,omitempty"`
}

// handleExportConfigGet answers the current exporter configuration.
func (s *Server) handleExportConfigGet(w http.ResponseWriter, r *http.Request) {
	if s.exporter == nil {
		s.writeErrorCode(w, r, http.StatusNotFound, codeNotFound, "",
			"telemetry export is not configured on this server")
		return
	}
	writeJSON(w, http.StatusOK, exportConfigJSON{
		Version:         s.exportCfgVersion.Load(),
		IntervalMS:      s.exporter.Interval().Milliseconds(),
		RateBytesPerSec: s.exporter.RateBytesPerSec(),
		URLs:            s.exporter.URLs(),
	})
}

// handleExportConfigPut retunes the exporter. The request must echo the
// version it read; on success the version bumps and the new document is
// returned.
func (s *Server) handleExportConfigPut(w http.ResponseWriter, r *http.Request) {
	if s.exporter == nil {
		s.writeErrorCode(w, r, http.StatusNotFound, codeNotFound, "",
			"telemetry export is not configured on this server")
		return
	}
	var req exportConfigJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeBadRequest(w, r, err)
		return
	}
	if req.IntervalMS <= 0 {
		s.writeError(w, r, acterr.Invalid("interval_ms", "non-positive interval %d", req.IntervalMS))
		return
	}
	if req.RateBytesPerSec < 0 {
		s.writeError(w, r, acterr.Invalid("rate_bytes_per_sec", "negative rate %d", req.RateBytesPerSec))
		return
	}
	if len(req.URLs) > 0 {
		s.writeError(w, r, acterr.Invalid("urls", "endpoint URLs are read-only"))
		return
	}
	// Optimistic concurrency: apply-and-bump only if the caller's version
	// is still current.
	if !s.exportCfgVersion.CompareAndSwap(req.Version, req.Version+1) {
		s.writeErrorCode(w, r, http.StatusConflict, codeConflict, "version",
			"export config changed since it was read; GET it again")
		return
	}
	if err := s.exporter.SetInterval(time.Duration(req.IntervalMS) * time.Millisecond); err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := s.exporter.SetRateBytesPerSec(req.RateBytesPerSec); err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, exportConfigJSON{
		Version:         s.exportCfgVersion.Load(),
		IntervalMS:      s.exporter.Interval().Milliseconds(),
		RateBytesPerSec: s.exporter.RateBytesPerSec(),
		URLs:            s.exporter.URLs(),
	})
}
