package serve

// The 400-vs-500 contract, pinned twice: writeError's classification of
// raw error values, and the HTTP status + field path actually served for a
// representative request of each failure class. The conformance harness
// (internal/conform) exercises the same contract generatively; this table
// is the human-readable specification of it.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"act/internal/acterr"
)

func TestWriteErrorClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		wantCode  int
		wantField string
	}{
		{"plain-error", errors.New("disk on fire"), http.StatusInternalServerError, ""},
		{"transient-after-retries", acterr.Transient(errors.New("pool sick")), http.StatusInternalServerError, ""},
		{"wrapped-transient", fmt.Errorf("eval: %w", acterr.Transient(errors.New("x"))), http.StatusInternalServerError, ""},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, ""},
		{"wrapped-deadline", fmt.Errorf("batch: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, ""},
		{"invalid-field", acterr.Invalid("usage.app_hours", "non-positive"), http.StatusBadRequest, "usage.app_hours"},
		{"invalid-no-field", acterr.Invalid("", "empty request"), http.StatusBadRequest, ""},
		{"prefixed-batch-element", acterr.Prefix("[2]", acterr.Invalid("node", "unknown")), http.StatusBadRequest, "[2].node"},
		{"unknown-node-sentinel", fmt.Errorf("fab: %w", acterr.ErrUnknownNode), http.StatusBadRequest, ""},
		{"unsupported-version", &acterr.UnsupportedVersionError{Version: 9}, http.StatusBadRequest, ""},
	}
	s := New(Config{Logger: discardLogger()})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodPost, "/v1/footprint", nil)
			s.writeError(w, r, c.err)
			if w.Code != c.wantCode {
				t.Errorf("code = %d, want %d", w.Code, c.wantCode)
			}
			e := decodeError(t, w.Body.Bytes())
			if e.Field != c.wantField {
				t.Errorf("field = %q, want %q", e.Field, c.wantField)
			}
			if e.Error == "" {
				t.Error("error body has no message")
			}
		})
	}
}

// TestFootprintStatusMapping drives one request per failure class through
// the real handler stack and pins the served status and field path.
func TestFootprintStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 3, MaxBodyBytes: 4096})
	url := ts.URL + "/v1/footprint"

	valid := `{"name": "ok", "logic": [{"name": "soc", "area_mm2": 100, "node": "7nm"}], "usage": {"power_w": 5, "app_hours": 100}}`
	cases := []struct {
		name      string
		body      string
		wantCode  int
		wantField string
	}{
		{"valid", valid, http.StatusOK, ""},
		{"unknown-node", strings.Replace(valid, `"7nm"`, `"quantum"`, 1), http.StatusBadRequest, "logic[0]"},
		{"bad-dram-tech", `{"name": "x", "dram": [{"name": "m", "technology": "sram-9000", "capacity_gb": 8}], "usage": {"power_w": 5, "app_hours": 100}}`, http.StatusBadRequest, "dram[0].technology"},
		{"app-hours-past-lifetime", strings.Replace(valid, `"app_hours": 100`, `"app_hours": 1e6`, 1), http.StatusBadRequest, "usage.app_hours"},
		{"unsupported-version", `{"version": 2, ` + valid[1:], http.StatusBadRequest, ""},
		{"unknown-wire-field", `{"bogus": 1, ` + valid[1:], http.StatusBadRequest, ""},
		{"malformed-json", `{"name": "x"`, http.StatusBadRequest, ""},
		{"empty-body", ``, http.StatusBadRequest, ""},
		{"empty-batch", `[]`, http.StatusBadRequest, ""},
		{"batch-bad-element", `[` + valid + `, {"name": "broken"}]`, http.StatusBadRequest, "[1]"},
		{"batch-bad-element-field", `[` + valid + `, ` + strings.Replace(valid, `"app_hours": 100`, `"app_hours": -1`, 1) + `]`, http.StatusBadRequest, "[1].usage.app_hours"},
		{"batch-over-max", `[` + valid + `,` + valid + `,` + valid + `,` + valid + `]`, http.StatusRequestEntityTooLarge, ""},
		{"body-over-max", `{"pad": "` + strings.Repeat("x", 8192) + `"}`, http.StatusRequestEntityTooLarge, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := postJSON(t, url, []byte(c.body))
			if resp.StatusCode != c.wantCode {
				t.Fatalf("status = %d, want %d (body %.200s)", resp.StatusCode, c.wantCode, data)
			}
			if c.wantCode == http.StatusOK {
				return
			}
			e := decodeError(t, data)
			if e.Field != c.wantField {
				t.Errorf("field = %q, want %q", e.Field, c.wantField)
			}
		})
	}

	// Method misuse is the router's 405, not a handler error.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/footprint = %d, want 405", resp.StatusCode)
	}
}
