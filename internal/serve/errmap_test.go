package serve

// The v1 error contract, pinned three ways: writeError's classification of
// raw error values into the envelope's closed code set, the HTTP status +
// code + field path actually served for a representative request of each
// failure class on every route, and a frozen golden body per error class.
// The conformance harness (internal/conform) exercises the same contract
// generatively; these tables are the human-readable specification of it.

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"act/internal/acterr"
	"act/internal/fleet"
)

func TestWriteErrorClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		wantCode  int
		wantClass string
		wantField string
	}{
		{"plain-error", errors.New("disk on fire"), http.StatusInternalServerError, codeInternal, ""},
		{"transient-after-retries", acterr.Transient(errors.New("pool sick")), http.StatusInternalServerError, codeInternal, ""},
		{"wrapped-transient", fmt.Errorf("eval: %w", acterr.Transient(errors.New("x"))), http.StatusInternalServerError, codeInternal, ""},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, codeTimeout, ""},
		{"wrapped-deadline", fmt.Errorf("batch: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, codeTimeout, ""},
		{"degraded-store", fleet.ErrDegraded, http.StatusServiceUnavailable, codeDegraded, ""},
		{"wrapped-degraded", fmt.Errorf("fleet: write-ahead log: %w", fleet.ErrDegraded), http.StatusServiceUnavailable, codeDegraded, ""},
		{"invalid-field", acterr.Invalid("usage.app_hours", "non-positive"), http.StatusBadRequest, codeInvalidArgument, "usage.app_hours"},
		{"invalid-no-field", acterr.Invalid("", "empty request"), http.StatusBadRequest, codeInvalidArgument, ""},
		{"prefixed-batch-element", acterr.Prefix("[2]", acterr.Invalid("node", "unknown")), http.StatusBadRequest, codeInvalidArgument, "[2].node"},
		{"unknown-node-sentinel", fmt.Errorf("fab: %w", acterr.ErrUnknownNode), http.StatusBadRequest, codeInvalidArgument, ""},
		{"unsupported-version", &acterr.UnsupportedVersionError{Version: 9}, http.StatusBadRequest, codeUnsupportedVersion, ""},
	}
	s := New(Config{Logger: discardLogger()})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodPost, "/v1/footprint", nil)
			s.writeError(w, r, c.err)
			if w.Code != c.wantCode {
				t.Errorf("code = %d, want %d", w.Code, c.wantCode)
			}
			e := decodeError(t, w.Body.Bytes())
			if e.Code != c.wantClass {
				t.Errorf("error code = %q, want %q", e.Code, c.wantClass)
			}
			if e.Field != c.wantField {
				t.Errorf("field = %q, want %q", e.Field, c.wantField)
			}
			if e.Message == "" {
				t.Error("error body has no message")
			}
		})
	}
}

// TestFootprintStatusMapping drives one request per failure class through
// the real handler stack and pins the served status, envelope code and
// field path.
func TestFootprintStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 3, MaxBodyBytes: 4096})
	url := ts.URL + "/v1/footprint"

	valid := `{"name": "ok", "logic": [{"name": "soc", "area_mm2": 100, "node": "7nm"}], "usage": {"power_w": 5, "app_hours": 100}}`
	cases := []struct {
		name      string
		body      string
		wantCode  int
		wantClass string
		wantField string
	}{
		{"valid", valid, http.StatusOK, "", ""},
		{"unknown-node", strings.Replace(valid, `"7nm"`, `"quantum"`, 1), http.StatusBadRequest, codeInvalidArgument, "logic[0]"},
		{"bad-dram-tech", `{"name": "x", "dram": [{"name": "m", "technology": "sram-9000", "capacity_gb": 8}], "usage": {"power_w": 5, "app_hours": 100}}`, http.StatusBadRequest, codeInvalidArgument, "dram[0].technology"},
		{"app-hours-past-lifetime", strings.Replace(valid, `"app_hours": 100`, `"app_hours": 1e6`, 1), http.StatusBadRequest, codeInvalidArgument, "usage.app_hours"},
		{"unsupported-version", `{"version": 2, ` + valid[1:], http.StatusBadRequest, codeUnsupportedVersion, ""},
		{"unknown-wire-field", `{"bogus": 1, ` + valid[1:], http.StatusBadRequest, codeInvalidArgument, ""},
		{"malformed-json", `{"name": "x"`, http.StatusBadRequest, codeInvalidArgument, ""},
		{"empty-body", ``, http.StatusBadRequest, codeInvalidArgument, ""},
		{"empty-batch", `[]`, http.StatusBadRequest, codeInvalidArgument, ""},
		{"batch-bad-element", `[` + valid + `, {"name": "broken"}]`, http.StatusBadRequest, codeInvalidArgument, "[1]"},
		{"batch-bad-element-field", `[` + valid + `, ` + strings.Replace(valid, `"app_hours": 100`, `"app_hours": -1`, 1) + `]`, http.StatusBadRequest, codeInvalidArgument, "[1].usage.app_hours"},
		{"batch-over-max", `[` + valid + `,` + valid + `,` + valid + `,` + valid + `]`, http.StatusRequestEntityTooLarge, codeTooLarge, ""},
		{"body-over-max", `{"pad": "` + strings.Repeat("x", 8192) + `"}`, http.StatusRequestEntityTooLarge, codeTooLarge, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := postJSON(t, url, []byte(c.body))
			if resp.StatusCode != c.wantCode {
				t.Fatalf("status = %d, want %d (body %.200s)", resp.StatusCode, c.wantCode, data)
			}
			if c.wantCode == http.StatusOK {
				return
			}
			e := decodeError(t, data)
			if e.Code != c.wantClass {
				t.Errorf("error code = %q, want %q", e.Code, c.wantClass)
			}
			if e.Field != c.wantField {
				t.Errorf("field = %q, want %q", e.Field, c.wantField)
			}
		})
	}

	// Method misuse is the router's 405, not a handler error.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/footprint = %d, want 405", resp.StatusCode)
	}
}

// TestErrorContractAllRoutes extends the contract table to every v1 route:
// one representative failing request per route and failure class, pinning
// status, envelope code and field path. The fleet/summary rows double as
// the query-binder regression table — ?top=x, ?top=-3 and ?by=color must
// come back as 400s rooted at query.top / query.by.
func TestErrorContractAllRoutes(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBatch: 3, MaxBodyBytes: 4096})
	s.AttachExporter(&fakeExporter{interval: 10e9, rate: 0})

	missingRegion := `{"id":"d1","deployed":"2024-01-01","utilization":0.5,"scenario":{"name":"x","logic":[{"name":"soc","area_mm2":10,"node":"7nm"}],"usage":{"power_w":5,"app_hours":100}}}`
	cases := []struct {
		name      string
		method    string
		path      string
		body      string
		wantCode  int
		wantClass string
		wantField string
	}{
		{"sweep-malformed", "POST", "/v1/sweep", `{`, http.StatusBadRequest, codeInvalidArgument, ""},
		{"sweep-over-max", "POST", "/v1/sweep", `{"pad":"` + strings.Repeat("x", 8192) + `"}`, http.StatusRequestEntityTooLarge, codeTooLarge, ""},
		{"ingest-missing-region", "POST", "/v1/fleet/devices", missingRegion, http.StatusBadRequest, codeInvalidArgument, "device[0].region"},
		{"summary-top-not-a-number", "GET", "/v1/fleet/summary?top=x", "", http.StatusBadRequest, codeInvalidArgument, "query.top"},
		{"summary-top-negative", "GET", "/v1/fleet/summary?top=-3", "", http.StatusBadRequest, codeInvalidArgument, "query.top"},
		{"summary-by-unknown", "GET", "/v1/fleet/summary?by=color", "", http.StatusBadRequest, codeInvalidArgument, "query.by"},
		{"delete-absent-device", "DELETE", "/v1/fleet/devices/ghost", "", http.StatusNotFound, codeNotFound, ""},
		{"export-put-zero-interval", "PUT", "/v1/export/config", `{"version":1,"interval_ms":0}`, http.StatusBadRequest, codeInvalidArgument, "interval_ms"},
		{"export-put-negative-rate", "PUT", "/v1/export/config", `{"version":1,"interval_ms":1000,"rate_bytes_per_sec":-1}`, http.StatusBadRequest, codeInvalidArgument, "rate_bytes_per_sec"},
		{"export-put-urls-readonly", "PUT", "/v1/export/config", `{"version":1,"interval_ms":1000,"urls":["http://x"]}`, http.StatusBadRequest, codeInvalidArgument, "urls"},
		{"export-put-unknown-field", "PUT", "/v1/export/config", `{"version":1,"interval_ms":1000,"bogus":true}`, http.StatusBadRequest, codeInvalidArgument, ""},
		{"export-put-stale-version", "PUT", "/v1/export/config", `{"version":99,"interval_ms":1000}`, http.StatusConflict, codeConflict, "version"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var body *strings.Reader
			if c.body != "" {
				body = strings.NewReader(c.body)
			} else {
				body = strings.NewReader("")
			}
			req, err := http.NewRequest(c.method, ts.URL+c.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			data := readAll(t, resp)
			if resp.StatusCode != c.wantCode {
				t.Fatalf("status = %d, want %d (body %.200s)", resp.StatusCode, c.wantCode, data)
			}
			e := decodeError(t, []byte(data))
			if e.Code != c.wantClass {
				t.Errorf("error code = %q, want %q", e.Code, c.wantClass)
			}
			if e.Field != c.wantField {
				t.Errorf("field = %q, want %q", e.Field, c.wantField)
			}
			if e.RequestID == "" {
				t.Error("error body missing request_id")
			}
		})
	}
}

var updateErrorGolden = flag.Bool("update-error-golden", false,
	"rewrite internal/serve/testdata/errors/*.golden from the current envelope rendering")

// TestErrorEnvelopeGolden freezes one envelope body per error class. The
// request id is preset (the middleware honors sane client-provided
// X-Request-Id values) so the bytes are deterministic. A diff here is an
// API-contract change: clients parse these bodies.
func TestErrorEnvelopeGolden(t *testing.T) {
	s := New(Config{Logger: discardLogger()})
	cases := []struct {
		class string
		write func(w http.ResponseWriter, r *http.Request)
	}{
		{codeInvalidArgument, func(w http.ResponseWriter, r *http.Request) {
			s.writeError(w, r, acterr.Invalid("query.top", "cannot parse top-K %q", "x"))
		}},
		{codeUnsupportedVersion, func(w http.ResponseWriter, r *http.Request) {
			s.writeError(w, r, &acterr.UnsupportedVersionError{Version: 9})
		}},
		{codeTooLarge, func(w http.ResponseWriter, r *http.Request) {
			s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "",
				"batch of 4 scenarios exceeds the limit of 3")
		}},
		{codeNotFound, func(w http.ResponseWriter, r *http.Request) {
			s.writeErrorCode(w, r, http.StatusNotFound, codeNotFound, "", `no device "ghost"`)
		}},
		{codeConflict, func(w http.ResponseWriter, r *http.Request) {
			s.writeErrorCode(w, r, http.StatusConflict, codeConflict, "version",
				"export config changed since it was read; GET it again")
		}},
		{codeOverloaded, func(w http.ResponseWriter, r *http.Request) {
			s.writeErrorCode(w, r, http.StatusTooManyRequests, codeOverloaded, "",
				"overloaded: admission queue is full")
		}},
		{codeUnavailable, func(w http.ResponseWriter, r *http.Request) {
			s.writeErrorCode(w, r, http.StatusServiceUnavailable, codeUnavailable, "",
				"server is draining")
		}},
		{codeDegraded, func(w http.ResponseWriter, r *http.Request) {
			s.writeError(w, r, fmt.Errorf("fleet: write-ahead log: %w", fleet.ErrDegraded))
		}},
		{codeTimeout, func(w http.ResponseWriter, r *http.Request) {
			s.writeError(w, r, context.DeadlineExceeded)
		}},
		{codeInternal, func(w http.ResponseWriter, r *http.Request) {
			s.writeError(w, r, errors.New("disk on fire"))
		}},
	}
	for _, c := range cases {
		t.Run(c.class, func(t *testing.T) {
			r := httptest.NewRequest(http.MethodGet, "/v1/test", nil)
			r = r.WithContext(withRequestID(r.Context(), "golden-"+c.class))
			w := httptest.NewRecorder()
			c.write(w, r)
			path := filepath.Join("testdata", "errors", c.class+".golden")
			if *updateErrorGolden {
				if err := os.WriteFile(path, w.Body.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (regenerate with -update-error-golden): %v", err)
			}
			if !bytes.Equal(w.Body.Bytes(), want) {
				t.Errorf("error envelope drifted from its frozen golden.\n"+
					"If intentional, regenerate with -update-error-golden and call it out in review.\n\ngot:\n%s\nwant:\n%s",
					w.Body.Bytes(), want)
			}
		})
	}

	// The golden set and the closed code set must stay in lockstep: a new
	// code needs a frozen body, a removed one needs its golden deleted.
	ents, err := os.ReadDir(filepath.Join("testdata", "errors"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(cases) {
		t.Errorf("testdata/errors has %d goldens, the closed code set has %d classes", len(ents), len(cases))
	}
}
