package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"act/internal/vfs"
)

// fleetLine renders one NDJSON device over the shared testSpec shape.
func fleetLine(t *testing.T, id string, area float64, region string) string {
	t.Helper()
	raw, err := json.Marshal(testSpec(area))
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"id":%q,"region":%q,"deployed":"2024-01-01","utilization":0.5,"scenario":%s}`,
		id, region, raw)
}

func ingestFleet(t *testing.T, ts string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts+"/v1/fleet/devices", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestFleetAPILifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Ingest three devices, one of them twice (a replace).
	body := strings.Join([]string{
		fleetLine(t, "a", 10, "united-states"),
		fleetLine(t, "b", 20, "europe"),
		fleetLine(t, "c", 30, "india"),
		fleetLine(t, "a", 40, "united-states"),
	}, "\n")
	resp := ingestFleet(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	var res struct {
		Upserted int `json:"upserted"`
		Replaced int `json:"replaced"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Upserted != 4 || res.Replaced != 1 {
		t.Fatalf("ingest result = %+v, want 4 upserted / 1 replaced", res)
	}

	// Summary with every optional section.
	get, err := http.Get(ts.URL + "/v1/fleet/summary?top=2&by=region")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var doc struct {
		Devices      int `json:"devices"`
		DistinctBoMs int `json:"distinct_boms"`
		Groups       []struct {
			Key string `json:"key"`
		} `json:"groups"`
		Top []struct {
			ID string `json:"id"`
		} `json:"top"`
	}
	if err := json.NewDecoder(get.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Devices != 3 || doc.DistinctBoMs != 3 {
		t.Fatalf("summary = %+v, want 3 devices / 3 BoMs", doc)
	}
	if len(doc.Groups) != 3 || len(doc.Top) != 2 {
		t.Fatalf("summary sections = %d groups / %d top, want 3/2", len(doc.Groups), len(doc.Top))
	}
	if doc.Top[0].ID != "c" { // india's grid intensity makes operational dominate
		t.Fatalf("top emitter = %q, want c", doc.Top[0].ID)
	}

	// Delete one; a second delete of the same id is 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/devices/b", nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", del.StatusCode)
	}
	del2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del2.Body.Close()
	if del2.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status = %d, want 404", del2.StatusCode)
	}

	// Recompute answers the fresh summary.
	rec, err := http.Post(ts.URL+"/v1/fleet/recompute", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Body.Close()
	var after struct {
		Devices int `json:"devices"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if rec.StatusCode != http.StatusOK || after.Devices != 2 {
		t.Fatalf("recompute: status %d devices %d, want 200/2", rec.StatusCode, after.Devices)
	}
}

func TestFleetAPIErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2, MaxBodyBytes: 1 << 20})

	t.Run("invalid device is 400 with field and index", func(t *testing.T) {
		bad := strings.Replace(fleetLine(t, "x", 10, "united-states"), `"2024-01-01"`, `"soon"`, 1)
		resp := ingestFleet(t, ts.URL, bad)
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
		e := decodeError(t, body)
		if e.Field != "device[0].deployed" {
			t.Fatalf("field = %q, want device[0].deployed", e.Field)
		}
		if e.Code != codeInvalidArgument {
			t.Fatalf("code = %q, want %q", e.Code, codeInvalidArgument)
		}
	})

	t.Run("unknown region is 400", func(t *testing.T) {
		resp := ingestFleet(t, ts.URL, fleetLine(t, "x", 10, "atlantis"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})

	t.Run("over max batch is 413", func(t *testing.T) {
		body := strings.Join([]string{
			fleetLine(t, "a", 10, "europe"),
			fleetLine(t, "b", 11, "europe"),
			fleetLine(t, "c", 12, "europe"),
		}, "\n")
		resp := ingestFleet(t, ts.URL, body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413", resp.StatusCode)
		}
	})

	t.Run("bad query is 400", func(t *testing.T) {
		for _, q := range []string{"?top=x", "?top=-3", "?by=color"} {
			resp, err := http.Get(ts.URL + "/v1/fleet/summary" + q)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s: status = %d, want 400", q, resp.StatusCode)
			}
		}
	})
}

// TestFleetMetricsExposition drives the fleet API and asserts the three
// fleet series render in /metrics with the values the traffic implies.
func TestFleetMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := strings.Join([]string{
		fleetLine(t, "a", 10, "united-states"),
		fleetLine(t, "b", 20, "europe"),
		fleetLine(t, "a", 30, "united-states"),
	}, "\n")
	if resp := ingestFleet(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	if resp := ingestFleet(t, ts.URL, fleetLine(t, "x", 10, "atlantis")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ingest status = %d", resp.StatusCode)
	}
	rec, err := http.Post(ts.URL+"/v1/fleet/recompute", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exposition, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE actd_fleet_devices gauge",
		"actd_fleet_devices 2",
		"# TYPE actd_fleet_ingest_total counter",
		`actd_fleet_ingest_total{code="created"} 2`,
		`actd_fleet_ingest_total{code="replaced"} 1`,
		`actd_fleet_ingest_total{code="invalid"} 1`,
		"# TYPE actd_fleet_recompute_seconds histogram",
		"actd_fleet_recompute_seconds_count 1",
	} {
		if !strings.Contains(string(exposition), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// fleetSummaryBody fetches the canonical grouped summary bytes.
func fleetSummaryBody(t *testing.T, ts string) []byte {
	t.Helper()
	resp, err := http.Get(ts + "/v1/fleet/summary?top=3&by=region")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestFleetPersistenceAcrossRestart is the durability acceptance path: a
// server with a snapshot and a segmented write-ahead log is killed
// (state checkpointed), a second server boots from the same paths, and
// its summary is byte-identical — including mutations that only ever hit
// the log.
func TestFleetPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	d := FleetDurability{
		SnapshotPath: filepath.Join(dir, "fleet.snap"),
		WALDir:       filepath.Join(dir, "wal"),
	}
	ctx := context.Background()

	s1, ts1 := newTestServer(t, Config{})
	if err := s1.OpenFleet(ctx, d); err != nil {
		t.Fatal(err)
	}
	if resp := ingestFleet(t, ts1.URL, strings.Join([]string{
		fleetLine(t, "a", 10, "united-states"),
		fleetLine(t, "b", 20, "europe"),
	}, "\n")); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	if err := s1.CheckpointFleet(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic lands only in the write-ahead log.
	if resp := ingestFleet(t, ts1.URL, fleetLine(t, "c", 30, "india")); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	wantBody := fleetSummaryBody(t, ts1.URL)
	if err := s1.CloseFleet(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server boots from the same paths.
	s2, ts2 := newTestServer(t, Config{})
	if err := s2.OpenFleet(ctx, d); err != nil {
		t.Fatal(err)
	}
	if gotBody := fleetSummaryBody(t, ts2.URL); !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("summary after restart differs:\n%s\nwant:\n%s", gotBody, wantBody)
	}
	if err := s2.CloseFleet(); err != nil {
		t.Fatal(err)
	}

	// A checkpoint of the restored state folds device c (log-only so far)
	// into a fresh snapshot and drops the covered segments.
	s3, _ := newTestServer(t, Config{})
	if err := s3.OpenFleet(ctx, d); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(d.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.CheckpointFleet(); err != nil {
		t.Fatal(err)
	}
	if n := s3.FleetStore().WALSegments(); n != 1 {
		t.Fatalf("WAL has %d segments after checkpoint, want 1 fresh one", n)
	}
	after, err := os.ReadFile(d.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before, after) {
		t.Fatal("checkpoint did not fold the write-ahead log into the snapshot")
	}
	if err := s3.CloseFleet(); err != nil {
		t.Fatal(err)
	}

	// Final boot from the checkpointed snapshot alone reproduces the
	// summary bytes again.
	s4, ts4 := newTestServer(t, Config{})
	if err := s4.OpenFleet(ctx, d); err != nil {
		t.Fatal(err)
	}
	defer s4.CloseFleet()
	if finalBody := fleetSummaryBody(t, ts4.URL); !bytes.Equal(finalBody, wantBody) {
		t.Fatalf("summary after checkpointed restart differs:\n%s\nwant:\n%s", finalBody, wantBody)
	}
}

// TestFleetLegacyWALMigration boots a server whose -fleet-wal path holds
// a pre-segmentation single-file WAL, as a deployment upgrading in place
// would. The file must migrate into the segment directory, replay, and
// retire at the first checkpoint.
func TestFleetLegacyWALMigration(t *testing.T) {
	dir := t.TempDir()
	d := FleetDurability{
		SnapshotPath: filepath.Join(dir, "fleet.snap"),
		WALDir:       filepath.Join(dir, "fleet.wal"),
	}
	ctx := context.Background()

	// An old server writes the single-file WAL at the future WALDir path.
	s1, ts1 := newTestServer(t, Config{})
	mem := s1.Fleet()
	legacy, err := os.OpenFile(d.WALDir, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	mem.AttachLog(legacy)
	if resp := ingestFleet(t, ts1.URL, strings.Join([]string{
		fleetLine(t, "a", 10, "united-states"),
		fleetLine(t, "b", 20, "europe"),
	}, "\n")); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	wantBody := fleetSummaryBody(t, ts1.URL)
	mem.AttachLog(nil)
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}

	// The new server mounts the same path as its WAL directory.
	s2, ts2 := newTestServer(t, Config{})
	if err := s2.OpenFleet(ctx, d); err != nil {
		t.Fatal(err)
	}
	defer s2.CloseFleet()
	if gotBody := fleetSummaryBody(t, ts2.URL); !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("summary after migration differs:\n%s\nwant:\n%s", gotBody, wantBody)
	}
	if err := s2.CheckpointFleet(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(d.WALDir, "legacy.wal")); !os.IsNotExist(err) {
		t.Fatalf("legacy WAL not retired after checkpoint: %v", err)
	}
}

// TestFleetDegradedEndToEnd is the acceptance path for degrade-and-heal:
// the disk fills mid-traffic, the next write answers 503 with the
// `degraded` envelope code, /readyz flips to degraded while /metrics
// keeps serving (the exporter must keep ticking), and once space returns
// a probe restores writability with no acknowledged data lost.
func TestFleetDegradedEndToEnd(t *testing.T) {
	m := vfs.NewMemFS()
	s, ts := newTestServer(t, Config{})
	d := FleetDurability{SnapshotPath: "data/fleet.snap", WALDir: "data/wal", FS: m}
	if err := s.OpenFleet(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	defer s.CloseFleet()

	if resp := ingestFleet(t, ts.URL, fleetLine(t, "a", 10, "united-states")); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	wantBody := fleetSummaryBody(t, ts.URL)

	// The disk fills. The next write must be rejected with the degraded
	// code — not half-applied, not a 500.
	m.SetDiskCap(m.Used())
	resp := ingestFleet(t, ts.URL, fleetLine(t, "b", 20, "europe"))
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write on full disk: status = %d, body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Code != codeDegraded {
		t.Fatalf("write on full disk: code = %q, want %q", e.Code, codeDegraded)
	}

	// Readiness reports the degradation; liveness and metrics keep
	// serving so operators can see it.
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var readyBody struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(ready.Body).Decode(&readyBody); err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable || readyBody.Status != "degraded" || readyBody.Reason == "" {
		t.Fatalf("readyz while degraded: status %d, body %+v", ready.StatusCode, readyBody)
	}
	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if metrics.StatusCode != http.StatusOK || !strings.Contains(string(exposition), "actd_fleet_degraded 1") {
		t.Fatalf("metrics while degraded: status %d, missing actd_fleet_degraded 1", metrics.StatusCode)
	}
	// Reads still answer — degraded means read-only, not down.
	if got := fleetSummaryBody(t, ts.URL); !bytes.Equal(got, wantBody) {
		t.Fatal("summary changed while degraded: a rejected write half-applied")
	}

	// Space returns; the probe (the compactor's job in production) heals
	// the store and writes flow again.
	m.SetDiskCap(0)
	if err := s.FleetStore().Probe(); err != nil {
		t.Fatalf("probe after space returned: %v", err)
	}
	if ready, err := http.Get(ts.URL + "/readyz"); err != nil || ready.StatusCode != http.StatusOK {
		t.Fatalf("readyz after heal: %v %d", err, ready.StatusCode)
	} else {
		ready.Body.Close()
	}
	if resp := ingestFleet(t, ts.URL, fleetLine(t, "b", 20, "europe")); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after heal: status = %d", resp.StatusCode)
	}

	// Nothing acknowledged was lost across the whole episode: a restart
	// from the same MemFS replays both acknowledged devices.
	want := fleetSummaryBody(t, ts.URL)
	if err := s.CloseFleet(); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	s2, ts2 := newTestServer(t, Config{})
	if err := s2.OpenFleet(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	defer s2.CloseFleet()
	if got := fleetSummaryBody(t, ts2.URL); !bytes.Equal(got, want) {
		t.Fatal("state diverged across the degrade/heal/restart episode")
	}
}
