package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitAndEviction(t *testing.T) {
	c := NewCache[int](2)
	ctx := context.Background()
	calls := 0
	get := func(key string) (int, bool) {
		v, hit, err := c.Do(ctx, key, func(context.Context) (int, error) {
			calls++
			return len(key), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, hit
	}

	if v, hit := get("a"); v != 1 || hit {
		t.Fatalf("first get = (%d, %v), want (1, miss)", v, hit)
	}
	if v, hit := get("a"); v != 1 || !hit {
		t.Fatalf("second get = (%d, %v), want (1, hit)", v, hit)
	}
	get("bb")
	get("a")   // refresh a: now bb is the LRU entry
	get("ccc") // evicts bb, keeps the recently-used a
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, hit := get("a"); !hit {
		t.Error("a should have survived (recently used)")
	}
	if _, hit := get("bb"); hit {
		t.Error("bb should have been evicted")
	}
	if calls != 4 {
		t.Errorf("fn ran %d times, want 4", calls)
	}
}

func TestCacheDisabledResidency(t *testing.T) {
	c := NewCache[int](-1)
	ctx := context.Background()
	calls := 0
	for i := 0; i < 3; i++ {
		_, hit, err := c.Do(ctx, "k", func(context.Context) (int, error) { calls++; return 7, nil })
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Error("disabled cache reported a residency hit")
		}
	}
	if calls != 3 || c.Len() != 0 {
		t.Errorf("calls = %d len = %d, want 3 and 0", calls, c.Len())
	}
}

func TestCacheSingleflightCoalesce(t *testing.T) {
	c := NewCache[int](8)
	ctx := context.Background()
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	hits := atomic.Int64{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.Do(ctx, "k", func(context.Context) (int, error) {
				calls.Add(1)
				close(started)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	<-started
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("fn ran %d times, want 1 (singleflight)", calls.Load())
	}
	if hits.Load() != waiters-1 {
		t.Errorf("%d hits, want %d (every waiter but the leader)", hits.Load(), waiters-1)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache[int](8)
	ctx := context.Background()
	boom := errors.New("boom")
	_, hit, err := c.Do(ctx, "k", func(context.Context) (int, error) { return 0, boom })
	if !errors.Is(err, boom) || hit {
		t.Fatalf("Do = (hit=%v, err=%v), want the error and no hit", hit, err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
	v, hit, err := c.Do(ctx, "k", func(context.Context) (int, error) { return 9, nil })
	if err != nil || hit || v != 9 {
		t.Fatalf("retry = (%d, %v, %v), want fresh computation", v, hit, err)
	}
}

func TestCachePanicPropagates(t *testing.T) {
	c := NewCache[int](8)
	ctx := context.Background()

	// A waiter joined before the panic must fail cleanly, not hang or see
	// a fabricated success.
	entered := make(chan struct{})
	release := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		_, _, _ = c.Do(ctx, "k", func(context.Context) (int, error) {
			close(entered)
			<-release
			panic("kaboom")
		})
	}()
	<-entered
	go func() {
		_, hit, err := c.Do(ctx, "k", func(context.Context) (int, error) { return 1, nil })
		if hit {
			err = fmt.Errorf("waiter saw hit=true after a panicked flight")
		}
		waiterErr <- err
	}()
	// Give the waiter time to join the flight before the leader panics.
	time.Sleep(50 * time.Millisecond)
	close(release)
	err := <-waiterErr
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("waiter error = %v, want a compute-panicked error", err)
	}
	// The flight is gone; the key computes fresh.
	v, _, err := c.Do(ctx, "k", func(context.Context) (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("post-panic Do = (%d, %v)", v, err)
	}
}

func TestCacheWaiterContextCancel(t *testing.T) {
	c := NewCache[int](8)
	release := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(entered)
			<-release
			return 1, nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func(context.Context) (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestCacheStress hammers a small cache from many goroutines so the race
// detector can chew on the LRU/flight bookkeeping.
func TestCacheStress(t *testing.T) {
	c := NewCache[int](4)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g+i)%13)
				want := len(key) + (g+i)%13
				v, _, err := c.Do(ctx, key, func(context.Context) (int, error) {
					return want, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v != want {
					t.Errorf("key %s = %d, want %d", key, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Errorf("len = %d, exceeds capacity 4", c.Len())
	}
}
