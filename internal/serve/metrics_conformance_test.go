package serve

// Golden-file conformance for the /metrics exposition. Dashboards and
// alerts key on metric names, label keys, types and bucket bounds; any of
// those changing silently breaks monitoring without failing a single unit
// test. This test drives a fixed traffic script through the server,
// normalizes away the sample values (which legitimately vary) and compares
// the full exposition shape against testdata/metrics.golden. Regenerate
// with:
//
//	go test ./internal/serve/ -run TestMetricsGolden -update-metrics-golden

import (
	"bytes"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateMetricsGolden = flag.Bool("update-metrics-golden", false,
	"rewrite testdata/metrics.golden from the current exposition")

// sampleValue matches the trailing value of an exposition sample line.
var sampleValue = regexp.MustCompile(`^(\S+(?:\{[^}]*\})?) [-+0-9.eE]+$`)

// normalizeExposition replaces every sample value with <v>, keeping names,
// label keys and label values (which the fixed traffic script determines)
// intact. HELP/TYPE comment lines pass through verbatim.
func normalizeExposition(raw []byte) []byte {
	var out bytes.Buffer
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if m := sampleValue.FindSubmatch(line); m != nil {
			out.Write(m[1])
			out.WriteString(" <v>\n")
			continue
		}
		out.Write(line)
		out.WriteByte('\n')
	}
	return bytes.TrimRight(out.Bytes(), "\n")
}

func TestMetricsGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The fixed traffic script: every handler that materializes metric
	// children fires at least once, deterministically.
	valid := mustJSON(t, testSpec(120))
	if resp, _ := postJSON(t, ts.URL+"/v1/footprint", valid); resp.StatusCode != http.StatusOK {
		t.Fatalf("single footprint: %d", resp.StatusCode)
	}
	batch := append(append([]byte("["), valid...), ']')
	if resp, _ := postJSON(t, ts.URL+"/v1/footprint", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch footprint: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/footprint", []byte(`{"name": "broken"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid footprint: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/script", scriptBody(t, `sum(range(10))`)); resp.StatusCode != http.StatusOK {
		t.Fatalf("script ok: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/script", scriptBody(t, `let = 3`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("script invalid: %d", resp.StatusCode)
	}
	nd := []byte(`{"id": "m-1", "region": "iceland", "deployed": "2024-01-01", "scenario": {"name": "d", "logic": [{"name": "soc", "area_mm2": 50, "node": "7nm"}], "usage": {"power_w": 1, "app_hours": 100}}}` + "\n")
	if resp, _ := postJSON(t, ts.URL+"/v1/fleet/devices", nd); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet ingest: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/fleet/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeExposition([]byte(readAll(t, resp)))

	goldenPath := filepath.Join("testdata", "metrics.golden")
	if *updateMetricsGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-metrics-golden): %v", err)
	}
	want = bytes.TrimRight(want, "\n")
	if !bytes.Equal(got, want) {
		t.Fatalf("metrics exposition shape changed — a dashboard-breaking rename, relabel or type change.\n"+
			"If intentional, regenerate with -update-metrics-golden and call it out in review.\n\ngot:\n%s\n\nwant:\n%s", got, want)
	}
}
