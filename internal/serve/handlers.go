package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"act/internal/acterr"
	"act/internal/parsweep"
	"act/internal/scenario"
)

// handleFootprint evaluates one scenario (a JSON object) or a batch of them
// (a JSON array). The response mirrors the request shape: a single result
// object, or an array of results in request order. Every evaluation runs
// through the footprint cache, so a batch of mostly identical BoMs costs as
// many model evaluations as there are distinct scenarios; distinct ones fan
// out across the worker pool.
func (s *Server) handleFootprint(w http.ResponseWriter, r *http.Request) {
	specs, batch, err := scenario.ParseRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			})
			return
		}
		// Anything else unparseable is the client's to fix, typed or not.
		writeJSON(w, http.StatusBadRequest, toErrorResponse(err))
		return
	}
	if len(specs) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("batch of %d scenarios exceeds the limit of %d", len(specs), s.cfg.MaxBatch),
		})
		return
	}

	results, err := parsweep.MapErr(r.Context(), s.cfg.Workers, specs,
		func(ctx context.Context, i int, spec *scenario.Spec) (json.RawMessage, error) {
			s.mPoolDepth.Inc()
			defer s.mPoolDepth.Dec()
			raw, err := s.evalOne(ctx, spec)
			if err != nil && batch {
				return nil, acterr.Prefix(fmt.Sprintf("[%d]", i), err)
			}
			return raw, err
		})
	if err != nil {
		s.writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/json")
	if !batch {
		_, _ = w.Write(results[0])
		return
	}
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, raw := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(bytes.TrimRight(raw, "\n"))
	}
	buf.WriteString("]\n")
	_, _ = w.Write(buf.Bytes())
}

// evalOne resolves one scenario through the cache. The cached value is the
// fully marshaled result document — cmd/act's -format json output — so a
// hit skips both the model evaluation and the JSON encoding.
func (s *Server) evalOne(ctx context.Context, spec *scenario.Spec) (json.RawMessage, error) {
	s.mScenarios.Inc()
	raw, hit, err := s.cache.Do(ctx, spec.CanonicalKey(), func() (json.RawMessage, error) {
		res, err := spec.Result()
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		return nil, err
	}
	if hit {
		s.mCacheHits.Inc()
	} else {
		s.mCacheMisses.Inc()
	}
	return raw, nil
}

// toErrorResponse builds the error body, lifting the field path out of a
// typed validation error when there is one.
func toErrorResponse(err error) errorResponse {
	resp := errorResponse{Error: err.Error()}
	var inv *acterr.InvalidSpecError
	if errors.As(err, &inv) {
		resp.Field = inv.Field
	}
	return resp
}
