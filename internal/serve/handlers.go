package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"

	"act/internal/parsweep"
	"act/internal/resilience"
	"act/internal/scenario"
)

// handleFootprint evaluates one scenario (a JSON object) or a batch of them
// (a JSON array). The response mirrors the request shape: a single result
// object, or an array of results in request order. Every evaluation runs
// through the footprint cache, so a batch of mostly identical BoMs costs as
// many model evaluations as there are distinct scenarios; distinct ones fan
// out across the worker pool. A batch that fails with a transient
// infrastructure fault is retried whole (cache hits make the replay cheap);
// validation failures never are.
func (s *Server) handleFootprint(w http.ResponseWriter, r *http.Request) {
	specs, batch, err := scenario.ParseRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		// Anything else unparseable is the client's to fix, typed or not.
		s.writeBadRequest(w, r, err)
		return
	}
	if len(specs) > s.cfg.MaxBatch {
		s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "",
			fmt.Sprintf("batch of %d scenarios exceeds the limit of %d", len(specs), s.cfg.MaxBatch))
		return
	}

	// Batches run through the columnar engine (cache-probe, dedupe,
	// column-chunk fan-out); single objects keep the scalar evalOne path,
	// which stays the conformance oracle for the columnar one. A batch
	// that fails with a transient infrastructure fault is retried whole —
	// results cached by the failed attempt make the replay cheap.
	var results []json.RawMessage
	if batch {
		results, err = resilience.Retry(r.Context(), s.retryPolicy(uint64(len(specs))),
			func(ctx context.Context, _ int) ([]json.RawMessage, error) {
				return s.evalBatchColumnar(ctx, specs)
			})
	} else {
		results, err = resilience.Retry(r.Context(), s.retryPolicy(uint64(len(specs))),
			func(ctx context.Context, _ int) ([]json.RawMessage, error) {
				return parsweep.MapErrCtx(ctx, s.cfg.Workers, specs,
					func(ctx context.Context, i int, spec *scenario.Spec) (json.RawMessage, error) {
						s.mPoolDepth.Inc()
						defer s.mPoolDepth.Dec()
						return s.evalOne(ctx, spec)
					})
			})
	}
	if err != nil {
		s.writeError(w, r, err)
		return
	}

	w.Header().Set("Content-Type", "application/json")
	if !batch {
		_, _ = w.Write(results[0])
		return
	}
	buf := getBuf()
	defer putBuf(buf)
	buf.WriteByte('[')
	for i, raw := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(bytes.TrimRight(raw, "\n"))
	}
	buf.WriteString("]\n")
	_, _ = w.Write(buf.Bytes())
}

// retryPolicy is the server's transient-fault retry policy. The seed folds
// the request's shape into the deterministic jitter stream so two
// identical requests back off identically — chaos runs reproduce.
func (s *Server) retryPolicy(seed uint64) resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: s.cfg.RetryAttempts,
		Seed:        seed + 1, // never 0: 0 selects the package default
		OnRetry:     func(int, error) { s.mRetries.Inc() },
	}
}

// evalOne resolves one scenario through the cache. The cached value is the
// fully marshaled result document — cmd/act's -format json output — so a
// hit skips both the model evaluation and the JSON encoding. A transient
// fault in the cache or the lookup tables below it is retried under the
// server's policy before it is allowed to fail the scenario.
func (s *Server) evalOne(ctx context.Context, spec *scenario.Spec) (json.RawMessage, error) {
	s.mScenarios.Inc()
	key := spec.CanonicalKey()
	type outcome struct {
		raw json.RawMessage
		hit bool
	}
	out, err := resilience.Retry(ctx, s.retryPolicy(fnvHash(key)),
		func(ctx context.Context, _ int) (outcome, error) {
			raw, hit, err := s.cache.Do(ctx, key, func(ctx context.Context) (json.RawMessage, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				res, err := spec.Result()
				if err != nil {
					return nil, err
				}
				// Encode through a pooled buffer, then copy into a
				// right-sized slice: the cache retains the document, the
				// buffer's spare capacity goes back to the pool.
				buf := getBuf()
				defer putBuf(buf)
				enc := json.NewEncoder(buf)
				enc.SetIndent("", "  ")
				if err := enc.Encode(res); err != nil {
					return nil, err
				}
				return json.RawMessage(bytes.Clone(buf.Bytes())), nil
			})
			return outcome{raw, hit}, err
		})
	if err != nil {
		return nil, err
	}
	if out.hit {
		s.mCacheHits.Inc()
	} else {
		s.mCacheMisses.Inc()
	}
	return out.raw, nil
}

// fnvHash folds a canonical key into a 64-bit retry-jitter seed.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
