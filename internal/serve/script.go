// POST /v1/script: sandboxed scenario scripting. The handler runs an
// untrusted user program through the internal/script interpreter under
// the server's configured budgets and answers with the canonical script
// result envelope — byte-identical to what `act script` prints for the
// same program, the same way /v1/footprint matches `act`.
//
// The error split is three-way and closed:
//
//	invalid_script (400)  the program is broken: parse error, runtime
//	                      fault, bad scenario passed to footprint()
//	script_budget  (400)  a hard resource budget cut the program off;
//	                      deterministic, so the client's to fix
//	timeout        (504)  the request deadline lapsed (outranks the
//	                      script's own wall-clock budget)
//
// Transient infrastructure faults behave like every other handler:
// retried under the server policy, then 500/internal if they survive.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"act/internal/acterr"
	"act/internal/resilience"
	"act/internal/scenario"
	"act/internal/script"
)

// scriptRequest is the POST /v1/script body.
type scriptRequest struct {
	// Version is the scenario wire version the program targets (0 or 1).
	Version int `json:"version,omitempty"`
	// Source is the program text.
	Source string `json:"source"`
}

// scriptBudget resolves the server's script budget from config, leaving
// zero fields to the interpreter's documented defaults.
func (s *Server) scriptBudget() script.Budget {
	return script.Budget{
		MaxSteps:      s.cfg.ScriptMaxSteps,
		MaxAllocBytes: s.cfg.ScriptMaxBytes,
		Timeout:       s.cfg.ScriptTimeout,
	}
}

// handleScript evaluates one sandboxed program.
func (s *Server) handleScript(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.countScriptEval(codeTooLarge)
			s.writeErrorCode(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.countScriptEval(codeInvalidArgument)
		s.writeBadRequest(w, r, fmt.Errorf("reading request body: %w", err))
		return
	}
	var req scriptRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.countScriptEval(codeInvalidArgument)
		s.writeBadRequest(w, r, fmt.Errorf("parsing script request: %w", err))
		return
	}
	if req.Version != 0 && req.Version != scenario.Version {
		s.countScriptEval(codeUnsupportedVersion)
		s.writeError(w, r, &acterr.UnsupportedVersionError{Version: req.Version})
		return
	}
	if req.Source == "" {
		s.countScriptEval(codeInvalidArgument)
		s.writeError(w, r, acterr.Invalid("source", "a program is required"))
		return
	}

	opts := script.Options{Budget: s.scriptBudget()}
	start := time.Now()
	res, err := resilience.Retry(r.Context(), s.retryPolicy(fnvHash(req.Source)),
		func(ctx context.Context, _ int) (*script.Result, error) {
			return script.Eval(ctx, req.Source, opts)
		})
	s.mScriptDuration.Observe(time.Since(start).Seconds())
	if err != nil {
		s.writeScriptError(w, r, err)
		return
	}

	s.countScriptEval("ok")
	s.mScriptSteps.Observe(float64(res.Steps))
	var buf bytes.Buffer
	if err := res.Encode(&buf); err != nil {
		// The program produced an unencodable value (a function, a
		// reference cycle) — still the program's fault.
		s.countScriptEval(codeInvalidScript)
		s.writeErrorCode(w, r, http.StatusBadRequest, codeInvalidScript, "",
			"script result: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.mEncodeErrors.Inc()
	}
}

// writeScriptError maps an evaluation failure onto the wire taxonomy and
// counts it. Order matters: the caller's lapsed deadline outranks the
// budget classification (script.Eval already attributes Done to the
// right owner, but a retry layer can also surface the raw ctx error).
func (s *Server) writeScriptError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.countScriptEval(codeTimeout)
		s.writeErrorCode(w, r, http.StatusGatewayTimeout, codeTimeout, "",
			"request timed out: "+err.Error())
	case acterr.IsBudget(err):
		s.countScriptEval(codeScriptBudget)
		s.writeErrorCode(w, r, http.StatusBadRequest, codeScriptBudget, "", err.Error())
	case isScriptError(err):
		s.countScriptEval(codeInvalidScript)
		s.writeErrorCode(w, r, http.StatusBadRequest, codeInvalidScript, "", err.Error())
	default:
		s.countScriptEval(codeInternal)
		s.writeError(w, r, err)
	}
}

// isScriptError reports whether err is the program's own failure.
func isScriptError(err error) bool {
	var se *script.Error
	return errors.As(err, &se)
}

// countScriptEval bumps actd_script_evals_total{code}.
func (s *Server) countScriptEval(code string) {
	s.mScriptEvals.With(code).Add(1)
}
