// Package dvfs models dynamic voltage and frequency scaling, the first
// Reduce lever the paper lists (Figure 1: "DVFS"), and extends it with
// carbon awareness: the operating point that minimizes a task's *carbon*
// is not the one that minimizes its energy once embodied carbon is
// amortized per unit of device time.
//
// The processor model is the standard CMOS one. Voltage tracks frequency
// linearly across the DVFS range; dynamic power is Ceff·V²·f; static power
// scales with voltage. A task of G gigacycles at frequency f takes G/f
// seconds and consumes dynamic energy independent of time plus static
// energy proportional to time — giving the classic interior energy
// minimum. Carbon adds a second time-proportional term, the device's
// embodied carbon per second of its lifetime (ECF/LT), which pushes the
// carbon-optimal frequency above the energy-optimal one: finishing sooner
// frees embodied-carbon-bearing hardware. Conversely a dirtier grid pulls
// the optimum back down.
package dvfs

import (
	"fmt"
	"time"

	"act/internal/units"
)

// Processor is a DVFS-capable core complex.
type Processor struct {
	// FMinGHz and FMaxGHz bound the frequency range.
	FMinGHz, FMaxGHz float64
	// VMin and VMax are the supply voltages at FMin and FMax; voltage
	// interpolates linearly in between.
	VMin, VMax float64
	// CeffNF is the effective switched capacitance in nanofarads
	// (P_dyn = Ceff·V²·f, watts when f is in GHz and V in volts).
	CeffNF float64
	// LeakW is the static power at VMax; static power scales linearly
	// with voltage.
	LeakW float64
}

// Default returns a mobile-class big-core complex: 0.6-2.8 GHz at
// 0.60-1.05 V, 1.2 nF effective capacitance, 350 mW leakage at VMax.
func Default() Processor {
	return Processor{
		FMinGHz: 0.6, FMaxGHz: 2.8,
		VMin: 0.60, VMax: 1.05,
		CeffNF: 1.2,
		LeakW:  0.35,
	}
}

// Validate checks the processor parameters.
func (p Processor) Validate() error {
	if p.FMinGHz <= 0 || p.FMaxGHz < p.FMinGHz {
		return fmt.Errorf("dvfs: bad frequency range [%v, %v] GHz", p.FMinGHz, p.FMaxGHz)
	}
	if p.VMin <= 0 || p.VMax < p.VMin {
		return fmt.Errorf("dvfs: bad voltage range [%v, %v] V", p.VMin, p.VMax)
	}
	if p.CeffNF <= 0 || p.LeakW < 0 {
		return fmt.Errorf("dvfs: bad capacitance %v nF or leakage %v W", p.CeffNF, p.LeakW)
	}
	return nil
}

// Voltage returns the supply voltage at frequency f.
func (p Processor) Voltage(fGHz float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if fGHz < p.FMinGHz || fGHz > p.FMaxGHz {
		return 0, fmt.Errorf("dvfs: frequency %v GHz outside [%v, %v]", fGHz, p.FMinGHz, p.FMaxGHz)
	}
	if p.FMaxGHz == p.FMinGHz {
		return p.VMax, nil
	}
	t := (fGHz - p.FMinGHz) / (p.FMaxGHz - p.FMinGHz)
	return p.VMin + t*(p.VMax-p.VMin), nil
}

// Power returns total power at frequency f.
func (p Processor) Power(fGHz float64) (units.Power, error) {
	v, err := p.Voltage(fGHz)
	if err != nil {
		return 0, err
	}
	dyn := p.CeffNF * v * v * fGHz // nF·V²·GHz = W
	static := p.LeakW * v / p.VMax
	return units.Watts(dyn + static), nil
}

// Task runs gigacycles of work at frequency f, returning energy and delay.
func (p Processor) Task(fGHz, gigacycles float64) (units.Energy, time.Duration, error) {
	if gigacycles <= 0 {
		return 0, 0, fmt.Errorf("dvfs: non-positive work %v Gcycles", gigacycles)
	}
	pw, err := p.Power(fGHz)
	if err != nil {
		return 0, 0, err
	}
	seconds := gigacycles / fGHz
	d := time.Duration(seconds * float64(time.Second))
	return pw.Over(d), d, nil
}

// CarbonContext fixes the environment of a carbon-optimal DVFS decision.
type CarbonContext struct {
	// Intensity is CIuse.
	Intensity units.CarbonIntensity
	// DeviceEmbodied and Lifetime set the embodied amortization rate
	// ECF/LT charged per second the task occupies the device.
	DeviceEmbodied units.CO2Mass
	Lifetime       time.Duration
}

// Validate checks the context.
func (c CarbonContext) Validate() error {
	if c.Intensity < 0 {
		return fmt.Errorf("dvfs: negative carbon intensity %v", c.Intensity)
	}
	if c.DeviceEmbodied < 0 {
		return fmt.Errorf("dvfs: negative embodied carbon %v", c.DeviceEmbodied)
	}
	if c.Lifetime <= 0 {
		return fmt.Errorf("dvfs: non-positive lifetime %v", c.Lifetime)
	}
	return nil
}

// embodiedRate returns grams charged per second of device occupancy.
func (c CarbonContext) embodiedRate() float64 {
	return c.DeviceEmbodied.Grams() / c.Lifetime.Seconds()
}

// TaskCarbon returns the carbon footprint of running the task at f:
// operational energy carbon plus the embodied share of the occupancy time.
func (p Processor) TaskCarbon(ctx CarbonContext, fGHz, gigacycles float64) (units.CO2Mass, error) {
	if err := ctx.Validate(); err != nil {
		return 0, err
	}
	e, d, err := p.Task(fGHz, gigacycles)
	if err != nil {
		return 0, err
	}
	op := ctx.Intensity.Emitted(e).Grams()
	emb := ctx.embodiedRate() * d.Seconds()
	return units.Grams(op + emb), nil
}

// sweep iterates the frequency range at the given resolution and returns
// the frequency minimizing eval.
func (p Processor) sweep(points int, eval func(f float64) (float64, error)) (float64, float64, error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	if points < 2 {
		return 0, 0, fmt.Errorf("dvfs: need at least 2 sweep points, got %d", points)
	}
	bestF, bestV := 0.0, 0.0
	found := false
	step := (p.FMaxGHz - p.FMinGHz) / float64(points-1)
	for i := 0; i < points; i++ {
		f := p.FMinGHz + float64(i)*step
		if i == points-1 {
			f = p.FMaxGHz
		}
		v, err := eval(f)
		if err != nil {
			return 0, 0, err
		}
		if !found || v < bestV {
			bestF, bestV, found = f, v, true
		}
	}
	return bestF, bestV, nil
}

// EnergyOptimalFrequency returns the frequency minimizing task energy.
func (p Processor) EnergyOptimalFrequency(gigacycles float64, points int) (float64, units.Energy, error) {
	f, e, err := p.sweep(points, func(f float64) (float64, error) {
		e, _, err := p.Task(f, gigacycles)
		return e.Joules(), err
	})
	return f, units.Joules(e), err
}

// CarbonOptimalFrequency returns the frequency minimizing task carbon in
// the given context.
func (p Processor) CarbonOptimalFrequency(ctx CarbonContext, gigacycles float64, points int) (float64, units.CO2Mass, error) {
	f, c, err := p.sweep(points, func(f float64) (float64, error) {
		m, err := p.TaskCarbon(ctx, f, gigacycles)
		return m.Grams(), err
	})
	return f, units.Grams(c), err
}
