package dvfs_test

import (
	"fmt"

	"act/internal/dvfs"
	"act/internal/units"
)

// ExampleProcessor_CarbonOptimalFrequencyExact shows the carbon-aware
// operating point moving with the environment: a carbon-free grid makes
// racing to idle optimal, a coal grid pulls the frequency down toward the
// energy minimum.
func ExampleProcessor_CarbonOptimalFrequencyExact() {
	p := dvfs.Default()
	for _, env := range []struct {
		name string
		ci   units.CarbonIntensity
	}{
		{"coal grid", 820},
		{"carbon-free", 0},
	} {
		ctx := dvfs.CarbonContext{
			Intensity:      env.ci,
			DeviceEmbodied: units.Kilograms(17),
			Lifetime:       units.Years(3),
		}
		f, _, err := p.CarbonOptimalFrequencyExact(ctx, 100, 1e-4)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %.2f GHz\n", env.name, f)
	}
	// Output:
	// coal grid: 1.56 GHz
	// carbon-free: 2.80 GHz
}
