package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/units"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default processor invalid: %v", err)
	}
	bad := []Processor{
		{FMinGHz: 0, FMaxGHz: 2, VMin: 0.6, VMax: 1, CeffNF: 1},
		{FMinGHz: 2, FMaxGHz: 1, VMin: 0.6, VMax: 1, CeffNF: 1},
		{FMinGHz: 1, FMaxGHz: 2, VMin: 0, VMax: 1, CeffNF: 1},
		{FMinGHz: 1, FMaxGHz: 2, VMin: 1, VMax: 0.5, CeffNF: 1},
		{FMinGHz: 1, FMaxGHz: 2, VMin: 0.6, VMax: 1, CeffNF: 0},
		{FMinGHz: 1, FMaxGHz: 2, VMin: 0.6, VMax: 1, CeffNF: 1, LeakW: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("processor %d: expected error", i)
		}
	}
}

func TestVoltageInterpolation(t *testing.T) {
	p := Default()
	v, err := p.Voltage(p.FMinGHz)
	if err != nil || math.Abs(v-p.VMin) > 1e-12 {
		t.Errorf("V(fmin) = %v, %v, want %v", v, err, p.VMin)
	}
	v, err = p.Voltage(p.FMaxGHz)
	if err != nil || math.Abs(v-p.VMax) > 1e-12 {
		t.Errorf("V(fmax) = %v, %v, want %v", v, err, p.VMax)
	}
	mid := (p.FMinGHz + p.FMaxGHz) / 2
	v, err = p.Voltage(mid)
	if err != nil || math.Abs(v-(p.VMin+p.VMax)/2) > 1e-12 {
		t.Errorf("V(mid) = %v, %v", v, err)
	}
	if _, err := p.Voltage(10); err == nil {
		t.Error("out-of-range frequency: expected error")
	}
}

func TestPowerStrictlyIncreasing(t *testing.T) {
	p := Default()
	prev := -1.0
	for f := p.FMinGHz; f <= p.FMaxGHz; f += 0.1 {
		pw, err := p.Power(f)
		if err != nil {
			t.Fatal(err)
		}
		if pw.Watts() <= prev {
			t.Errorf("power not increasing at %v GHz", f)
		}
		prev = pw.Watts()
	}
	// Superlinear: doubling frequency more than doubles dynamic power.
	lo, _ := p.Power(1.0)
	hi, _ := p.Power(2.0)
	if hi.Watts() <= 2*lo.Watts() {
		t.Errorf("P(2GHz)=%v should exceed 2xP(1GHz)=%v (V² scaling)", hi, lo)
	}
}

func TestTaskDelayInverse(t *testing.T) {
	p := Default()
	_, d1, err := p.Task(1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := p.Task(2.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1.Seconds()-10) > 1e-9 || math.Abs(d2.Seconds()-5) > 1e-9 {
		t.Errorf("delays = %v, %v, want 10s, 5s", d1, d2)
	}
	if _, _, err := p.Task(1.0, 0); err == nil {
		t.Error("zero work: expected error")
	}
}

func TestEnergyOptimalInterior(t *testing.T) {
	// Static power makes crawling wasteful; V² makes sprinting wasteful:
	// the energy-optimal frequency is strictly inside the range.
	p := Default()
	f, e, err := p.EnergyOptimalFrequency(100, 221)
	if err != nil {
		t.Fatal(err)
	}
	if f <= p.FMinGHz || f >= p.FMaxGHz {
		t.Errorf("energy-optimal f = %v GHz, want interior of [%v, %v]", f, p.FMinGHz, p.FMaxGHz)
	}
	// The optimum beats both extremes.
	eMin, _, _ := p.Task(p.FMinGHz, 100)
	eMax, _, _ := p.Task(p.FMaxGHz, 100)
	if e.Joules() >= eMin.Joules() || e.Joules() >= eMax.Joules() {
		t.Errorf("optimum %v not below extremes %v / %v", e, eMin, eMax)
	}
}

func TestCarbonOptimalShiftsWithEmbodiedRate(t *testing.T) {
	// The paper's framing: on a clean grid with carbon-expensive hardware,
	// racing to idle amortizes embodied carbon; on a dirty grid with
	// low-carbon hardware, the energy-optimal point wins.
	p := Default()
	const work = 100

	cleanGridDearHW := CarbonContext{
		Intensity:      units.GramsPerKWh(20),
		DeviceEmbodied: units.Kilograms(20),
		Lifetime:       units.Years(3),
	}
	dirtyGridCheapHW := CarbonContext{
		Intensity:      units.GramsPerKWh(820),
		DeviceEmbodied: units.Kilograms(1),
		Lifetime:       units.Years(3),
	}
	fClean, _, err := p.CarbonOptimalFrequency(cleanGridDearHW, work, 221)
	if err != nil {
		t.Fatal(err)
	}
	fDirty, _, err := p.CarbonOptimalFrequency(dirtyGridCheapHW, work, 221)
	if err != nil {
		t.Fatal(err)
	}
	if fClean <= fDirty {
		t.Errorf("clean-grid optimum (%v GHz) should exceed dirty-grid optimum (%v GHz)", fClean, fDirty)
	}

	// With zero embodied weight the carbon optimum equals the energy
	// optimum.
	noHW := CarbonContext{Intensity: units.GramsPerKWh(300),
		DeviceEmbodied: 0, Lifetime: units.Years(3)}
	fCarbon, _, err := p.CarbonOptimalFrequency(noHW, work, 221)
	if err != nil {
		t.Fatal(err)
	}
	fEnergy, _, err := p.EnergyOptimalFrequency(work, 221)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fCarbon-fEnergy) > 1e-9 {
		t.Errorf("zero-embodied carbon optimum %v != energy optimum %v", fCarbon, fEnergy)
	}

	// With a carbon-free grid, race to idle: the optimum is FMax.
	freeGrid := CarbonContext{Intensity: 0,
		DeviceEmbodied: units.Kilograms(5), Lifetime: units.Years(3)}
	fFree, _, err := p.CarbonOptimalFrequency(freeGrid, work, 221)
	if err != nil {
		t.Fatal(err)
	}
	if fFree != p.FMaxGHz {
		t.Errorf("carbon-free optimum = %v GHz, want FMax %v", fFree, p.FMaxGHz)
	}
}

func TestTaskCarbonComposition(t *testing.T) {
	p := Default()
	ctx := CarbonContext{
		Intensity:      units.GramsPerKWh(300),
		DeviceEmbodied: units.Kilograms(10),
		Lifetime:       units.Years(3),
	}
	e, d, err := p.Task(2.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.TaskCarbon(ctx, 2.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := ctx.Intensity.Emitted(e).Grams() +
		ctx.DeviceEmbodied.Grams()/ctx.Lifetime.Seconds()*d.Seconds()
	if math.Abs(got.Grams()-want) > 1e-12 {
		t.Errorf("TaskCarbon = %v, want %v g", got, want)
	}
}

func TestContextValidation(t *testing.T) {
	p := Default()
	bad := []CarbonContext{
		{Intensity: -1, DeviceEmbodied: 1, Lifetime: units.Years(1)},
		{Intensity: 1, DeviceEmbodied: -1, Lifetime: units.Years(1)},
		{Intensity: 1, DeviceEmbodied: 1, Lifetime: 0},
	}
	for i, ctx := range bad {
		if _, err := p.TaskCarbon(ctx, 1, 10); err == nil {
			t.Errorf("context %d: expected error", i)
		}
	}
	ok := CarbonContext{Intensity: 1, DeviceEmbodied: 1, Lifetime: units.Years(1)}
	if _, _, err := p.CarbonOptimalFrequency(ok, 10, 1); err == nil {
		t.Error("1 sweep point: expected error")
	}
}

// Property: task energy is work-linear at fixed frequency.
func TestQuickEnergyLinearInWork(t *testing.T) {
	p := Default()
	f := func(wRaw uint8) bool {
		w := float64(wRaw%100) + 1
		e1, _, err1 := p.Task(2.0, w)
		e2, _, err2 := p.Task(2.0, 2*w)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(e2.Joules()-2*e1.Joules()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the carbon-optimal frequency is non-decreasing in the embodied
// amortization rate.
func TestQuickOptimalFreqMonotoneInEmbodied(t *testing.T) {
	p := Default()
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%40) + 1
		b := float64(bRaw%40) + 1
		if a > b {
			a, b = b, a
		}
		mk := func(kg float64) CarbonContext {
			return CarbonContext{Intensity: units.GramsPerKWh(300),
				DeviceEmbodied: units.Kilograms(kg), Lifetime: units.Years(3)}
		}
		fa, _, err1 := p.CarbonOptimalFrequency(mk(a), 100, 111)
		fb, _, err2 := p.CarbonOptimalFrequency(mk(b), 100, 111)
		return err1 == nil && err2 == nil && fb >= fa-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
