package dvfs

import (
	"act/internal/dse"
	"act/internal/units"
)

// Continuous optimization of the DVFS operating point. The task-carbon
// curve CF(f) is unimodal on the DVFS range (a convex energy bowl plus a
// monotone embodied term), so golden-section search finds the exact
// optimum with a handful of evaluations instead of a dense sweep.

// CarbonOptimalFrequencyExact returns the continuous carbon-optimal
// frequency to within tolGHz.
func (p Processor) CarbonOptimalFrequencyExact(ctx CarbonContext, gigacycles, tolGHz float64) (float64, units.CO2Mass, error) {
	if err := ctx.Validate(); err != nil {
		return 0, 0, err
	}
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	f, c, err := dse.GoldenSection(p.FMinGHz, p.FMaxGHz, tolGHz, func(f float64) (float64, error) {
		m, err := p.TaskCarbon(ctx, f, gigacycles)
		if err != nil {
			return 0, err
		}
		return m.Grams(), nil
	})
	if err != nil {
		return 0, 0, err
	}
	return f, units.Grams(c), nil
}

// EnergyOptimalFrequencyExact returns the continuous energy-optimal
// frequency to within tolGHz.
func (p Processor) EnergyOptimalFrequencyExact(gigacycles, tolGHz float64) (float64, units.Energy, error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	f, e, err := dse.GoldenSection(p.FMinGHz, p.FMaxGHz, tolGHz, func(f float64) (float64, error) {
		en, _, err := p.Task(f, gigacycles)
		if err != nil {
			return 0, err
		}
		return en.Joules(), err
	})
	if err != nil {
		return 0, 0, err
	}
	return f, units.Joules(e), nil
}
