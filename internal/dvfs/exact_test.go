package dvfs

import (
	"math"
	"testing"

	"act/internal/units"
)

func TestExactMatchesSweep(t *testing.T) {
	p := Default()
	ctx := CarbonContext{
		Intensity:      units.GramsPerKWh(300),
		DeviceEmbodied: units.Kilograms(17),
		Lifetime:       units.Years(3),
	}
	fSweep, cSweep, err := p.CarbonOptimalFrequency(ctx, 100, 2201)
	if err != nil {
		t.Fatal(err)
	}
	fExact, cExact, err := p.CarbonOptimalFrequencyExact(ctx, 100, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fExact-fSweep) > 0.01 {
		t.Errorf("exact f = %v, sweep f = %v", fExact, fSweep)
	}
	// The continuous optimum is at least as good as the dense sweep's.
	if cExact.Grams() > cSweep.Grams()+1e-12 {
		t.Errorf("exact carbon %v worse than sweep %v", cExact, cSweep)
	}
}

func TestEnergyExactInterior(t *testing.T) {
	p := Default()
	fSweep, _, err := p.EnergyOptimalFrequency(100, 2201)
	if err != nil {
		t.Fatal(err)
	}
	fExact, eExact, err := p.EnergyOptimalFrequencyExact(100, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fExact-fSweep) > 0.01 {
		t.Errorf("exact f = %v, sweep f = %v", fExact, fSweep)
	}
	if fExact <= p.FMinGHz || fExact >= p.FMaxGHz {
		t.Errorf("energy optimum %v should be interior", fExact)
	}
	if eExact <= 0 {
		t.Errorf("energy %v", eExact)
	}
}

func TestExactValidation(t *testing.T) {
	p := Default()
	bad := CarbonContext{Intensity: -1}
	if _, _, err := p.CarbonOptimalFrequencyExact(bad, 100, 1e-6); err == nil {
		t.Error("invalid context: expected error")
	}
	ok := CarbonContext{Intensity: 300, DeviceEmbodied: 1, Lifetime: units.Years(1)}
	if _, _, err := p.CarbonOptimalFrequencyExact(ok, 100, 0); err == nil {
		t.Error("zero tolerance: expected error")
	}
	var zero Processor
	if _, _, err := zero.EnergyOptimalFrequencyExact(100, 1e-6); err == nil {
		t.Error("invalid processor: expected error")
	}
}
