package provision

import (
	"math"
	"testing"
	"time"

	"act/internal/intensity"
	"act/internal/metrics"
	"act/internal/units"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func TestConfigs(t *testing.T) {
	cs := Configs()
	if len(cs) != 3 {
		t.Fatalf("Configs() = %d options, want 3", len(cs))
	}
	cpu, err := ByName(CPU)
	if err != nil || cpu.CoproArea != 0 {
		t.Errorf("CPU config = %+v, %v", cpu, err)
	}
	if _, err := ByName("TPU"); err == nil {
		t.Error("ByName(unknown): expected error")
	}
}

func TestTable4Reproduction(t *testing.T) {
	// Paper Table 4 (prose-consistent labels): per-inference OPCF at the
	// US grid of 3.3 / 1.5 / 3.1 µg for CPU / DSP / GPU... the energies:
	// CPU 39.6 mJ, DSP 18.4 mJ, GPU 35.1 mJ; embodied 253 / +189 / +205 g.
	rows, err := DefaultTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Table 4 has %d rows, want 3", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Config.Name] = r
	}

	cpu := byName[CPU]
	approx(t, cpu.Config.EnergyPerInference().Millijoules(), 39.6, 1e-9, "CPU energy")
	approx(t, cpu.OPCF.Grams(), 3.3e-6, 1e-9, "CPU OPCF")
	approx(t, cpu.TotalECF().Grams(), 253, 0.01, "CPU ECF")
	if cpu.CoproECF != 0 {
		t.Errorf("CPU co-processor ECF = %v, want 0", cpu.CoproECF)
	}

	dsp := byName[DSP]
	approx(t, dsp.Config.EnergyPerInference().Millijoules(), 18.4, 1e-9, "DSP energy")
	approx(t, dsp.CoproECF.Grams(), 189, 0.01, "DSP extra ECF")
	approx(t, dsp.HostECF.Grams(), 253, 0.01, "DSP host ECF")

	gpu := byName[GPU]
	approx(t, gpu.Config.EnergyPerInference().Millijoules(), 35.09, 1e-3, "GPU energy")
	approx(t, gpu.CoproECF.Grams(), 205, 0.01, "GPU extra ECF")

	// Prose ratios: DSP ≈2.2x lower energy than CPU; embodied +1.75-1.9x.
	if r := cpu.Config.EnergyPerInference().Joules() / dsp.Config.EnergyPerInference().Joules(); r < 2.0 || r > 2.3 {
		t.Errorf("CPU/DSP energy ratio = %v, want ≈2.2", r)
	}
	if r := gpu.TotalECF().Grams() / cpu.TotalECF().Grams(); r < 1.7 || r > 1.95 {
		t.Errorf("GPU/CPU embodied ratio = %v, want ≈1.8-1.9", r)
	}
}

func TestFigure9MetricWinners(t *testing.T) {
	// Figure 9: CPU optimal for embodied-centric metrics (CDP, C2EP); DSP
	// optimal for operational-centric metrics (CEP, CE2P).
	f, err := DefaultFab()
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Candidates(f, intensity.USGrid)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[metrics.Metric]string{
		metrics.CDP:  CPU,
		metrics.C2EP: CPU,
		metrics.CEP:  DSP,
		metrics.CE2P: DSP,
	}
	for m, want := range wants {
		best, err := metrics.Best(m, cands)
		if err != nil {
			t.Fatalf("Best(%s): %v", m, err)
		}
		if best.Candidate.Name != want {
			t.Errorf("%s winner = %s, want %s (paper Figure 9)", m, best.Candidate.Name, want)
		}
	}
}

func TestBreakEvenUtilization(t *testing.T) {
	f, err := DefaultFab()
	if err != nil {
		t.Fatal(err)
	}
	lt := units.Years(3)

	// DSP: +189 g embodied, 21.2 mJ saved per 9.2 ms inference at the US
	// grid -> ≈1% of the lifetime (paper: "higher than 1%").
	dsp, err := BreakEvenUtilization(DSP, f, intensity.USGrid, lt)
	if err != nil {
		t.Fatal(err)
	}
	if dsp < 0.005 || dsp > 0.02 {
		t.Errorf("DSP break-even utilization = %v, want ≈1%%", dsp)
	}

	// GPU: +205 g embodied, only 4.5 mJ saved per 12.1 ms inference ->
	// ≈5-8% (paper: "higher than 5%").
	gpu, err := BreakEvenUtilization(GPU, f, intensity.USGrid, lt)
	if err != nil {
		t.Fatal(err)
	}
	if gpu < 0.04 || gpu > 0.10 {
		t.Errorf("GPU break-even utilization = %v, want ≈5-8%%", gpu)
	}

	// Break-even rises as the grid gets greener (savings shrink).
	gpuSolar, err := BreakEvenUtilization(GPU, f, intensity.Renewable, lt)
	if err != nil {
		t.Fatal(err)
	}
	if gpuSolar <= gpu {
		t.Errorf("solar break-even (%v) should exceed US-grid break-even (%v)", gpuSolar, gpu)
	}

	// Error paths.
	if _, err := BreakEvenUtilization(CPU, f, intensity.USGrid, lt); err == nil {
		t.Error("CPU has no co-processor: expected error")
	}
	if _, err := BreakEvenUtilization(DSP, f, intensity.CarbonFree, lt); err == nil {
		t.Error("carbon-free use: expected error (no savings to amortize)")
	}
	if _, err := BreakEvenUtilization(DSP, f, intensity.USGrid, 0); err == nil {
		t.Error("zero lifetime: expected error")
	}
	if _, err := BreakEvenUtilization("TPU", f, intensity.USGrid, lt); err == nil {
		t.Error("unknown config: expected error")
	}
}

func TestFigure10UseSweepCrossover(t *testing.T) {
	// Figure 10 (top): with dirty operational energy the DSP wins; as the
	// use phase approaches carbon-free the CPU wins, by ≈1.8x.
	s := DefaultScenario()
	sweep, err := s.SweepUse()
	if err != nil {
		t.Fatal(err)
	}

	coal, err := Winner(sweep["Coal"])
	if err != nil {
		t.Fatal(err)
	}
	if coal.Config.Name != DSP {
		t.Errorf("coal-use winner = %s, want DSP", coal.Config.Name)
	}

	free, err := Winner(sweep["Carbon Free"])
	if err != nil {
		t.Fatal(err)
	}
	if free.Config.Name != CPU {
		t.Errorf("carbon-free-use winner = %s, want CPU", free.Config.Name)
	}

	// CPU's advantage at carbon-free: ≈1.75x vs the DSP config.
	var cpuTotal, dspTotal float64
	for _, p := range sweep["Carbon Free"] {
		switch p.Config.Name {
		case CPU:
			cpuTotal = p.Total().Grams()
		case DSP:
			dspTotal = p.Total().Grams()
		}
	}
	if r := dspTotal / cpuTotal; r < 1.6 || r > 1.95 {
		t.Errorf("carbon-free DSP/CPU ratio = %v, want ≈1.75-1.8 (paper: 1.8x)", r)
	}
}

func TestFigure10FabSweepCrossover(t *testing.T) {
	// Figure 10 (bottom): with coal-powered fabs the CPU wins (embodied
	// overhead of extra silicon dominates); with carbon-free fabs the
	// specialized DSP wins.
	s := DefaultScenario()
	sweep, err := s.SweepFab()
	if err != nil {
		t.Fatal(err)
	}
	coal, err := Winner(sweep["Coal"])
	if err != nil {
		t.Fatal(err)
	}
	if coal.Config.Name != CPU {
		t.Errorf("coal-fab winner = %s, want CPU", coal.Config.Name)
	}
	free, err := Winner(sweep["Carbon Free"])
	if err != nil {
		t.Fatal(err)
	}
	if free.Config.Name != DSP {
		t.Errorf("carbon-free-fab winner = %s, want DSP", free.Config.Name)
	}
}

func TestScenarioValidation(t *testing.T) {
	s := DefaultScenario()
	s.Inferences = 0
	if _, err := s.Evaluate(intensity.TaiwanGrid, intensity.USGrid); err == nil {
		t.Error("zero inferences: expected error")
	}
	if _, err := Winner(nil); err == nil {
		t.Error("Winner(empty): expected error")
	}
}

func TestFlexStudyRatios(t *testing.T) {
	results, err := FlexStudy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("flex study has %d substrates, want 3", len(results))
	}
	byName := map[Substrate]FlexResult{}
	for _, r := range results {
		byName[r.Substrate] = r
	}

	cpu, accel, fpga := byName[FlexCPU], byName[FlexAccel], byName[FlexFPGA]

	// Performance ratios (Figure 11 top): ASIC 26x on AI; FPGA 50/80/24x.
	get := func(r FlexResult, a FlexApp) FlexPoint {
		for _, p := range r.Points {
			if p.App == a {
				return p
			}
		}
		t.Fatalf("missing %s point", a)
		return FlexPoint{}
	}
	approx(t, float64(get(cpu, AppAI).Latency)/float64(get(accel, AppAI).Latency), 26, 1e-6, "ASIC AI speedup")
	approx(t, float64(get(cpu, AppFIR).Latency)/float64(get(fpga, AppFIR).Latency), 50, 1e-6, "FPGA FIR speedup")
	approx(t, float64(get(cpu, AppAES).Latency)/float64(get(fpga, AppAES).Latency), 80, 1e-6, "FPGA AES speedup")
	approx(t, float64(get(cpu, AppAI).Latency)/float64(get(fpga, AppAI).Latency), 24, 1e-6, "FPGA AI speedup")

	// FPGA geomean speedup ≈45x (paper).
	geo := cpu.GeomeanLatency().Seconds() / fpga.GeomeanLatency().Seconds()
	if geo < 40 || geo > 50 {
		t.Errorf("FPGA geomean speedup = %v, want ≈45", geo)
	}

	// Energy (bottom left): ASIC 44x vs CPU and 5x vs FPGA on AI.
	approx(t, get(cpu, AppAI).Energy.Joules()/get(accel, AppAI).Energy.Joules(), 44, 1e-9, "ASIC AI energy cut")
	approx(t, get(fpga, AppAI).Energy.Joules()/get(accel, AppAI).Energy.Joules(), 5, 1e-9, "ASIC vs FPGA AI energy")

	// Embodied (bottom right): CPU 1.3x and 1.8x below ASIC and FPGA.
	approx(t, accel.Embodied.Grams()/cpu.Embodied.Grams(), 1.3, 1e-9, "ASIC embodied ratio")
	approx(t, fpga.Embodied.Grams()/cpu.Embodied.Grams(), 1.8, 1e-9, "FPGA embodied ratio")
}

func TestFlexFPGAWinsCarbonMetrics(t *testing.T) {
	// Section 6.2: "across CDP, CEP, CE2P, C2EP, FPGA outperforms CPU and
	// ASIC-based designs" for multi-workload SoCs.
	results, err := FlexStudy(nil)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := FlexCandidates(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metrics.CarbonAware() {
		best, err := metrics.Best(m, cands)
		if err != nil {
			t.Fatalf("Best(%s): %v", m, err)
		}
		if best.Candidate.Name != string(FlexFPGA) {
			t.Errorf("%s winner = %s, want FPGA", m, best.Candidate.Name)
		}
	}
}

func TestFlexASICWinsForAIOnly(t *testing.T) {
	// Section 6.2: for AI-only domain-specific SoCs, the specialized ASIC
	// wins on performance, efficiency and the carbon metrics.
	results, err := FlexStudy(nil)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := FlexAICandidates(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("AI candidates = %d, want 3", len(cands))
	}
	for _, m := range metrics.CarbonAware() {
		best, err := metrics.Best(m, cands)
		if err != nil {
			t.Fatalf("Best(%s): %v", m, err)
		}
		if best.Candidate.Name != string(FlexAccel) {
			t.Errorf("AI-only %s winner = %s, want Accel", m, best.Candidate.Name)
		}
	}
}

func TestFlexCandidatesValidation(t *testing.T) {
	if _, err := FlexCandidates(nil); err == nil {
		t.Error("FlexCandidates(empty): expected error")
	}
	if _, err := FlexAICandidates(nil); err == nil {
		t.Error("FlexAICandidates(empty): expected error")
	}
}

func TestEmbodiedNilFab(t *testing.T) {
	cpu, _ := ByName(CPU)
	if _, err := Embodied(cpu, nil); err == nil {
		t.Error("Embodied(nil fab): expected error")
	}
	if _, err := Table4(nil, intensity.USGrid); err == nil {
		t.Error("Table4(nil fab): expected error")
	}
}

func TestLatencyOrdering(t *testing.T) {
	// CPU is fastest per inference (6 ms); co-processors trade latency for
	// energy (9.2, 12.1 ms).
	cpu, _ := ByName(CPU)
	dsp, _ := ByName(DSP)
	gpu, _ := ByName(GPU)
	if !(cpu.Latency < dsp.Latency && dsp.Latency < gpu.Latency) {
		t.Errorf("latency ordering wrong: %v, %v, %v", cpu.Latency, dsp.Latency, gpu.Latency)
	}
	if cpu.Latency != 6*time.Millisecond {
		t.Errorf("CPU latency = %v, want 6ms", cpu.Latency)
	}
}
