package provision

import (
	"fmt"

	"act/internal/fab"
	"act/internal/intensity"
	"act/internal/units"
)

// Figure 10 sweeps the carbon intensity of the energy consumed during
// operation (top) and during manufacturing (bottom) and asks which
// provisioning option minimizes the per-inference footprint. The device
// serves a fixed inference demand over its lifetime — the same number of
// inferences regardless of which hardware runs them — so the embodied
// share per inference is ECF divided by that demand.

// DefaultInferences is the lifetime inference demand of the Figure 10
// scenario: one billion inferences over the 3-year lifetime (≈10.6/s on
// average), an always-on vision workload.
const DefaultInferences = 1e9

// ScenarioPoint is one bar of Figure 10: a provisioning option evaluated
// under one pair of manufacturing and use carbon intensities.
type ScenarioPoint struct {
	Config Config
	// EmbodiedPerInf is the embodied share attributed to one inference.
	EmbodiedPerInf units.CO2Mass
	// OperationalPerInf is the operational footprint of one inference.
	OperationalPerInf units.CO2Mass
}

// Total returns the per-inference footprint.
func (p ScenarioPoint) Total() units.CO2Mass {
	return units.Grams(p.EmbodiedPerInf.Grams() + p.OperationalPerInf.Grams())
}

// Scenario fixes the Figure 10 evaluation parameters.
type Scenario struct {
	// Inferences is the lifetime inference demand.
	Inferences float64
	// FabNode is the SoC process (the study uses the 10 nm class).
	FabNode fab.Node
}

// DefaultScenario returns the paper's Figure 10 setup.
func DefaultScenario() Scenario {
	return Scenario{Inferences: DefaultInferences, FabNode: fab.Node10}
}

// Evaluate computes the per-inference footprint of every provisioning
// option under the given manufacturing and use intensities.
func (s Scenario) Evaluate(ciFab, ciUse units.CarbonIntensity) ([]ScenarioPoint, error) {
	if s.Inferences <= 0 {
		return nil, fmt.Errorf("provision: non-positive inference demand %v", s.Inferences)
	}
	f, err := fab.New(s.FabNode, fab.WithCarbonIntensity(ciFab))
	if err != nil {
		return nil, err
	}
	var out []ScenarioPoint
	for _, c := range Configs() {
		ecf, err := Embodied(c, f)
		if err != nil {
			return nil, err
		}
		out = append(out, ScenarioPoint{
			Config:            c,
			EmbodiedPerInf:    units.Grams(ecf.Grams() / s.Inferences),
			OperationalPerInf: ciUse.Emitted(c.EnergyPerInference()),
		})
	}
	return out, nil
}

// Winner returns the option with the lowest per-inference footprint.
func Winner(points []ScenarioPoint) (ScenarioPoint, error) {
	if len(points) == 0 {
		return ScenarioPoint{}, fmt.Errorf("provision: no scenario points")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.Total() < best.Total() {
			best = p
		}
	}
	return best, nil
}

// IntensityStep is one x-axis group of Figure 10.
type IntensityStep struct {
	Label     string
	Intensity units.CarbonIntensity
}

// UseSteps returns the Figure 10 (top) x-axis: the carbon intensity of
// operational energy from coal down to carbon-free.
func UseSteps() []IntensityStep {
	return []IntensityStep{
		{"Coal", intensity.CoalGrid},
		{"US grid", intensity.USGrid},
		{"Renewable", intensity.Renewable},
		{"Carbon Free", intensity.CarbonFree},
	}
}

// FabSteps returns the Figure 10 (bottom) x-axis: the carbon intensity of
// semiconductor manufacturing from coal down to carbon-free.
func FabSteps() []IntensityStep {
	return []IntensityStep{
		{"Coal", intensity.CoalGrid},
		{"Taiwan grid", intensity.TaiwanGrid},
		{"Renewable", intensity.Renewable},
		{"Carbon Free", intensity.CarbonFree},
	}
}

// SweepUse evaluates Figure 10 (top): fixed manufacturing on the raw
// Taiwan grid, varying operational intensity.
func (s Scenario) SweepUse() (map[string][]ScenarioPoint, error) {
	out := make(map[string][]ScenarioPoint)
	for _, step := range UseSteps() {
		pts, err := s.Evaluate(intensity.TaiwanGrid, step.Intensity)
		if err != nil {
			return nil, err
		}
		out[step.Label] = pts
	}
	return out, nil
}

// SweepFab evaluates Figure 10 (bottom): fixed operational supply on
// renewable energy, varying manufacturing intensity.
func (s Scenario) SweepFab() (map[string][]ScenarioPoint, error) {
	out := make(map[string][]ScenarioPoint)
	for _, step := range FabSteps() {
		pts, err := s.Evaluate(step.Intensity, intensity.Renewable)
		if err != nil {
			return nil, err
		}
		out[step.Label] = pts
	}
	return out, nil
}
