package provision

import (
	"fmt"
	"math"
	"time"

	"act/internal/fab"
	"act/internal/metrics"
	"act/internal/units"
)

// Figure 11 compares three compute substrates on a 16 nm SMIV-style SoC —
// dual-core Arm A53 CPUs, a specialized AI ASIC ("Accel"), and an embedded
// FPGA — across three applications (FIR filtering, AES encryption, AI
// inference). The ASIC only accelerates AI; FIR and AES fall back to the
// host CPU. Speedup and energy-reduction factors follow the paper's
// reported ratios (FPGA 50x/80x/24x faster; ASIC 26x on AI with 44x energy
// reduction vs CPU and 5x vs FPGA; CPU embodied 1.3x/1.8x below ASIC/FPGA).

// Substrate identifies a Figure 11 compute substrate.
type Substrate string

// Substrates of the flexibility study.
const (
	FlexCPU   Substrate = "CPU"
	FlexAccel Substrate = "Accel"
	FlexFPGA  Substrate = "FPGA"
)

// Substrates returns the three substrates in figure order.
func Substrates() []Substrate { return []Substrate{FlexCPU, FlexAccel, FlexFPGA} }

// FlexApp identifies a Figure 11 application.
type FlexApp string

// Applications of the flexibility study.
const (
	AppFIR FlexApp = "FIR"
	AppAES FlexApp = "AES"
	AppAI  FlexApp = "AI"
)

// FlexApps returns the three applications in figure order.
func FlexApps() []FlexApp { return []FlexApp{AppFIR, AppAES, AppAI} }

// Baseline CPU datapoints: per-run latency and average power on the
// dual-core A53 host.
var cpuBaseline = map[FlexApp]struct {
	latency time.Duration
	power   units.Power
}{
	AppFIR: {20 * time.Millisecond, units.Watts(0.8)},
	AppAES: {40 * time.Millisecond, units.Watts(0.8)},
	AppAI:  {400 * time.Millisecond, units.Watts(0.8)},
}

// speedup[s][a] is how many times faster substrate s runs application a
// than the CPU; energyCut[s][a] is how many times less energy it uses.
var (
	speedup = map[Substrate]map[FlexApp]float64{
		FlexCPU:   {AppFIR: 1, AppAES: 1, AppAI: 1},
		FlexAccel: {AppFIR: 1, AppAES: 1, AppAI: 26},
		FlexFPGA:  {AppFIR: 50, AppAES: 80, AppAI: 24},
	}
	energyCut = map[Substrate]map[FlexApp]float64{
		FlexCPU:   {AppFIR: 1, AppAES: 1, AppAI: 1},
		FlexAccel: {AppFIR: 1, AppAES: 1, AppAI: 44},
		FlexFPGA:  {AppFIR: 10, AppAES: 10, AppAI: 8.8},
	}
)

// Embodied area ratios: the full system (host + substrate) normalized to
// the CPU-only system, per the paper's 1.3x and 1.8x.
var areaRatio = map[Substrate]float64{
	FlexCPU:   1.0,
	FlexAccel: 1.3,
	FlexFPGA:  1.8,
}

// flexCPUAreaMM2 is the CPU-only system's logic area on the 16 nm SMIV die.
const flexCPUAreaMM2 = 4.5

// FlexPoint is one (substrate, application) cell of Figure 11.
type FlexPoint struct {
	Substrate Substrate
	App       FlexApp
	Latency   time.Duration
	Energy    units.Energy
}

// FlexResult is a substrate's full Figure 11 characterization.
type FlexResult struct {
	Substrate Substrate
	Area      units.Area
	Embodied  units.CO2Mass
	Points    []FlexPoint
}

// GeomeanLatency returns the substrate's geometric-mean latency across the
// three applications, the "Geo mean" group of Figure 11 (top).
func (r FlexResult) GeomeanLatency() time.Duration {
	logSum := 0.0
	for _, p := range r.Points {
		logSum += math.Log(p.Latency.Seconds())
	}
	return time.Duration(math.Exp(logSum/float64(len(r.Points))) * float64(time.Second))
}

// GeomeanEnergy returns the geometric-mean energy across applications.
func (r FlexResult) GeomeanEnergy() units.Energy {
	logSum := 0.0
	for _, p := range r.Points {
		logSum += math.Log(p.Energy.Joules())
	}
	return units.Joules(math.Exp(logSum / float64(len(r.Points))))
}

// FlexStudy evaluates the Figure 11 study in the given fab (nil selects
// the default 16 nm-class fab).
func FlexStudy(f *fab.Fab) ([]FlexResult, error) {
	if f == nil {
		var err error
		f, err = fab.New(fab.Node14)
		if err != nil {
			return nil, err
		}
	}
	var out []FlexResult
	for _, s := range Substrates() {
		area := units.MM2(flexCPUAreaMM2 * areaRatio[s])
		embodied, err := f.Embodied(area)
		if err != nil {
			return nil, err
		}
		res := FlexResult{Substrate: s, Area: area, Embodied: embodied}
		for _, a := range FlexApps() {
			base := cpuBaseline[a]
			baseEnergy := base.power.Over(base.latency)
			res.Points = append(res.Points, FlexPoint{
				Substrate: s,
				App:       a,
				Latency:   time.Duration(float64(base.latency) / speedup[s][a]),
				Energy:    units.Joules(baseEnergy.Joules() / energyCut[s][a]),
			})
		}
		out = append(out, res)
	}
	return out, nil
}

// FlexCandidates converts the study into metrics candidates using geomean
// latency and energy across the applications (how the paper aggregates
// "designing SoC's for a variety of workloads").
func FlexCandidates(results []FlexResult) ([]metrics.Candidate, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("provision: empty flexibility study")
	}
	out := make([]metrics.Candidate, len(results))
	for i, r := range results {
		out[i] = metrics.Candidate{
			Name:     string(r.Substrate),
			Embodied: r.Embodied,
			Energy:   r.GeomeanEnergy(),
			Delay:    r.GeomeanLatency(),
			Area:     r.Area,
		}
	}
	return out, nil
}

// FlexAICandidates converts the study into metrics candidates over the AI
// application alone (the domain-specific design point of Section 6.2).
func FlexAICandidates(results []FlexResult) ([]metrics.Candidate, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("provision: empty flexibility study")
	}
	var out []metrics.Candidate
	for _, r := range results {
		for _, p := range r.Points {
			if p.App != AppAI {
				continue
			}
			out = append(out, metrics.Candidate{
				Name:     string(r.Substrate),
				Embodied: r.Embodied,
				Energy:   p.Energy,
				Delay:    p.Latency,
				Area:     r.Area,
			})
		}
	}
	return out, nil
}
