// Package provision implements the paper's Reuse case study (Section 6):
// balancing general-purpose and specialized hardware on a mobile SoC.
//
// The study provisions a Snapdragon-845-class platform three ways — CPU
// only, CPU+GPU, CPU+DSP — and compares AI-inference latency, power,
// operational footprint and embodied footprint (Table 4), the carbon
// optimization metrics (Figure 9), break-even reuse utilization, and the
// effect of renewable energy during manufacturing and use (Figure 10).
//
// Note on Table 4: the paper's prose, Figure 9 and Figure 10 are mutually
// consistent only if the GPU and DSP rows of its Table 4 are swapped (the
// prose's "2.2x lower energy", ">1% break-even" and "DSP optimal for
// CEP/CE2P" all follow the 9.2 ms / 2.0 W datapoint). This package adopts
// the prose-consistent assignment: DSP = 9.2 ms @ 2.0 W, GPU = 12.1 ms @
// 2.9 W. See EXPERIMENTS.md.
package provision

import (
	"fmt"
	"time"

	"act/internal/fab"
	"act/internal/intensity"
	"act/internal/metrics"
	"act/internal/units"
)

// Config is one provisioning option: the host CPU alone or the host CPU
// plus a co-processor that runs the AI workload.
type Config struct {
	Name string
	// Latency and Power describe one AI inference on this configuration.
	Latency time.Duration
	Power   units.Power
	// HostArea is the always-present host CPU logic area; CoproArea is the
	// co-processor's additional silicon (zero for the CPU-only config).
	HostArea  units.Area
	CoproArea units.Area
}

// TotalArea returns the configuration's total logic area.
func (c Config) TotalArea() units.Area { return c.HostArea + c.CoproArea }

// EnergyPerInference returns the energy of one inference.
func (c Config) EnergyPerInference() units.Energy { return c.Power.Over(c.Latency) }

// Die areas calibrated so the paper's embodied footprints reproduce at the
// default fab (10 nm class): the host CPU contributes 253 g CO2, the DSP
// +189 g, the GPU +205 g.
const (
	hostAreaMM2 = 15.812
	dspAreaMM2  = 11.812
	gpuAreaMM2  = 12.812
)

// Configuration names.
const (
	CPU = "CPU"
	GPU = "GPU(+CPU)"
	DSP = "DSP(+CPU)"
)

// Configs returns the three provisioning options of Table 4 (prose-
// consistent, see the package comment).
func Configs() []Config {
	return []Config{
		{Name: CPU, Latency: 6 * time.Millisecond, Power: units.Watts(6.6),
			HostArea: units.MM2(hostAreaMM2)},
		{Name: GPU, Latency: 12100 * time.Microsecond, Power: units.Watts(2.9),
			HostArea: units.MM2(hostAreaMM2), CoproArea: units.MM2(gpuAreaMM2)},
		{Name: DSP, Latency: 9200 * time.Microsecond, Power: units.Watts(2.0),
			HostArea: units.MM2(hostAreaMM2), CoproArea: units.MM2(dspAreaMM2)},
	}
}

// ByName returns a provisioning option by name.
func ByName(name string) (Config, error) {
	for _, c := range Configs() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("provision: unknown config %q", name)
}

// DefaultFab returns the study's SoC fab: the 10 nm class at the paper's
// default fab parameters.
func DefaultFab() (*fab.Fab, error) { return fab.New(fab.Node10) }

// Embodied returns the configuration's embodied logic footprint in the
// given fab (host plus co-processor dies; packaging is shared with the
// host SoC and excluded, matching Table 4's accounting).
func Embodied(c Config, f *fab.Fab) (units.CO2Mass, error) {
	if f == nil {
		return 0, fmt.Errorf("provision: nil fab")
	}
	return f.Embodied(c.TotalArea())
}

// Table4Row is one row of the Table 4 reproduction.
type Table4Row struct {
	Config Config
	// OPCF is the operational footprint of one inference.
	OPCF units.CO2Mass
	// HostECF is the host CPU's embodied footprint; CoproECF the
	// co-processor's additional embodied footprint (zero for CPU-only).
	HostECF  units.CO2Mass
	CoproECF units.CO2Mass
}

// TotalECF returns the configuration's full embodied footprint.
func (r Table4Row) TotalECF() units.CO2Mass {
	return units.Grams(r.HostECF.Grams() + r.CoproECF.Grams())
}

// Table4 reproduces the paper's Table 4: per-inference latency, power,
// operational footprint at ciUse, and embodied footprint in fab f.
func Table4(f *fab.Fab, ciUse units.CarbonIntensity) ([]Table4Row, error) {
	if f == nil {
		return nil, fmt.Errorf("provision: nil fab")
	}
	var out []Table4Row
	for _, c := range Configs() {
		host, err := f.Embodied(c.HostArea)
		if err != nil {
			return nil, err
		}
		copro, err := f.Embodied(c.CoproArea)
		if err != nil {
			return nil, err
		}
		out = append(out, Table4Row{
			Config:   c,
			OPCF:     ciUse.Emitted(c.EnergyPerInference()),
			HostECF:  host,
			CoproECF: copro,
		})
	}
	return out, nil
}

// DefaultTable4 evaluates Table 4 at the paper's operating point: the
// average US grid (300 g CO2/kWh) and the default fab.
func DefaultTable4() ([]Table4Row, error) {
	f, err := DefaultFab()
	if err != nil {
		return nil, err
	}
	return Table4(f, intensity.USGrid)
}

// Candidates converts the provisioning options into metrics candidates
// over one inference (Figure 9): embodied carbon is the configuration's
// full ECF, energy and delay are per inference.
func Candidates(f *fab.Fab, ciUse units.CarbonIntensity) ([]metrics.Candidate, error) {
	rows, err := Table4(f, ciUse)
	if err != nil {
		return nil, err
	}
	out := make([]metrics.Candidate, len(rows))
	for i, r := range rows {
		out[i] = metrics.Candidate{
			Name:     r.Config.Name,
			Embodied: r.TotalECF(),
			Energy:   r.Config.EnergyPerInference(),
			Delay:    r.Config.Latency,
			Area:     r.Config.TotalArea(),
		}
	}
	return out, nil
}

// BreakEvenUtilization returns the fraction of the device lifetime the
// co-processor must spend running inferences for its operational energy
// savings (vs the CPU running the same inferences) to offset its extra
// embodied footprint. Returns an error if the co-processor saves no
// energy, and +Inf-free: a result above 1 means the co-processor can never
// amortize within the lifetime.
func BreakEvenUtilization(coproName string, f *fab.Fab, ciUse units.CarbonIntensity, lifetime time.Duration) (float64, error) {
	if lifetime <= 0 {
		return 0, fmt.Errorf("provision: non-positive lifetime %v", lifetime)
	}
	if ciUse <= 0 {
		return 0, fmt.Errorf("provision: break-even undefined at carbon intensity %v (no operational savings)", ciUse)
	}
	copro, err := ByName(coproName)
	if err != nil {
		return 0, err
	}
	if copro.CoproArea == 0 {
		return 0, fmt.Errorf("provision: %q has no co-processor", coproName)
	}
	cpu, err := ByName(CPU)
	if err != nil {
		return 0, err
	}
	savePer := cpu.EnergyPerInference().Joules() - copro.EnergyPerInference().Joules()
	if savePer <= 0 {
		return 0, fmt.Errorf("provision: %q saves no energy per inference", coproName)
	}
	extra, err := Embodied(copro, f)
	if err != nil {
		return 0, err
	}
	base, err := Embodied(cpu, f)
	if err != nil {
		return 0, err
	}
	extraECF := extra.Grams() - base.Grams()
	saveCO2 := ciUse.Emitted(units.Joules(savePer)).Grams()
	inferences := extraECF / saveCO2
	busy := time.Duration(inferences * float64(copro.Latency))
	return busy.Seconds() / lifetime.Seconds(), nil
}
