// Package pledge projects an organization's hardware carbon trajectory,
// the setting of the paper's motivation (Section 2.1): Apple, Facebook,
// Google and Microsoft have pledged carbon-neutral supply chains, and
// "achieving carbon neutral supply-chains requires tackling ICT's
// emissions across life cycle phases, from both hardware manufacturing
// and use".
//
// The model is deliberately simple: a fleet ships a fixed device volume
// per year; per-device embodied carbon falls as fabs decarbonize
// (renewable procurement, abatement) and fleet operational carbon falls
// as use-phase grids decarbonize. The projection shows the structural
// effect the paper opens with — when grids decarbonize faster than fabs,
// the embodied share of the remaining footprint grows, so manufacturing
// becomes the binding constraint on any neutrality pledge.
package pledge

import (
	"fmt"
	"math"

	"act/internal/units"
)

// Org describes the organization's year-zero position and decarbonization
// rates.
type Org struct {
	// DevicesPerYear is the annual shipment volume.
	DevicesPerYear float64
	// DeviceEmbodied is the year-zero per-device manufacturing footprint.
	DeviceEmbodied units.CO2Mass
	// FleetOperational is the year-zero fleet-wide operational footprint
	// per year.
	FleetOperational units.CO2Mass
	// FabDecarbRate is the annual fractional reduction of per-device
	// embodied carbon (0.05 = 5%/year), from fab renewables and abatement.
	FabDecarbRate float64
	// GridDecarbRate is the annual fractional reduction of operational
	// carbon, from use-phase grid decarbonization.
	GridDecarbRate float64
}

// Validate checks the parameters.
func (o Org) Validate() error {
	if o.DevicesPerYear < 0 || o.DeviceEmbodied < 0 || o.FleetOperational < 0 {
		return fmt.Errorf("pledge: negative fleet parameter")
	}
	if o.FabDecarbRate < 0 || o.FabDecarbRate >= 1 {
		return fmt.Errorf("pledge: fab decarbonization rate %v outside [0, 1)", o.FabDecarbRate)
	}
	if o.GridDecarbRate < 0 || o.GridDecarbRate >= 1 {
		return fmt.Errorf("pledge: grid decarbonization rate %v outside [0, 1)", o.GridDecarbRate)
	}
	return nil
}

// Year is one projected year.
type Year struct {
	Year        int
	Embodied    units.CO2Mass
	Operational units.CO2Mass
}

// Total returns the year's footprint.
func (y Year) Total() units.CO2Mass {
	return units.Grams(y.Embodied.Grams() + y.Operational.Grams())
}

// EmbodiedShare returns manufacturing's share of the year's footprint.
func (y Year) EmbodiedShare() float64 {
	t := y.Total().Grams()
	if t == 0 {
		return 0
	}
	return y.Embodied.Grams() / t
}

// Trajectory projects the organization's annual footprint for the given
// number of years (year 0 inclusive).
func (o Org) Trajectory(years int) ([]Year, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if years < 1 {
		return nil, fmt.Errorf("pledge: need at least one year, got %d", years)
	}
	out := make([]Year, years)
	for t := 0; t < years; t++ {
		emb := o.DeviceEmbodied.Grams() * o.DevicesPerYear * math.Pow(1-o.FabDecarbRate, float64(t))
		op := o.FleetOperational.Grams() * math.Pow(1-o.GridDecarbRate, float64(t))
		out[t] = Year{Year: t, Embodied: units.Grams(emb), Operational: units.Grams(op)}
	}
	return out, nil
}

// YearsToReduce returns the first year in which the total footprint falls
// to the given fraction of year zero's (e.g. 0.5 for a 50% reduction
// pledge), scanning up to maxYears.
func (o Org) YearsToReduce(fraction float64, maxYears int) (int, error) {
	if fraction <= 0 || fraction >= 1 {
		return 0, fmt.Errorf("pledge: target fraction %v outside (0, 1)", fraction)
	}
	traj, err := o.Trajectory(maxYears + 1)
	if err != nil {
		return 0, err
	}
	target := traj[0].Total().Grams() * fraction
	for _, y := range traj {
		if y.Total().Grams() <= target {
			return y.Year, nil
		}
	}
	return 0, fmt.Errorf("pledge: %v%% reduction not reached within %d years (fab rate %v, grid rate %v)",
		(1-fraction)*100, maxYears, o.FabDecarbRate, o.GridDecarbRate)
}
