package pledge

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/units"
)

// appleLike returns an org in the iPhone-11-era regime: manufacturing
// already dominates, the grid decarbonizes faster than fabs.
func appleLike() Org {
	return Org{
		DevicesPerYear:   100e6,
		DeviceEmbodied:   units.Kilograms(60),
		FleetOperational: units.Tonnes(1.5e6),
		FabDecarbRate:    0.04,
		GridDecarbRate:   0.10,
	}
}

func TestValidate(t *testing.T) {
	if err := appleLike().Validate(); err != nil {
		t.Errorf("apple-like org invalid: %v", err)
	}
	bad := []Org{
		{DevicesPerYear: -1},
		{FabDecarbRate: 1},
		{GridDecarbRate: -0.1},
		{DeviceEmbodied: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("org %d: expected error", i)
		}
	}
}

func TestTrajectoryShape(t *testing.T) {
	o := appleLike()
	traj, err := o.Trajectory(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 11 {
		t.Fatalf("trajectory has %d years, want 11", len(traj))
	}
	// Year 0 matches the inputs.
	if math.Abs(traj[0].Embodied.Tonnes()-6e6) > 1 {
		t.Errorf("year-0 embodied = %v, want 6 Mt", traj[0].Embodied)
	}
	if math.Abs(traj[0].Operational.Tonnes()-1.5e6) > 1 {
		t.Errorf("year-0 operational = %v", traj[0].Operational)
	}
	// Monotone decline on both sides.
	for i := 1; i < len(traj); i++ {
		if traj[i].Embodied >= traj[i-1].Embodied || traj[i].Operational >= traj[i-1].Operational {
			t.Errorf("trajectory not declining at year %d", i)
		}
	}
	// The paper's structural point: with grids decarbonizing faster than
	// fabs, the embodied share grows over time.
	if traj[10].EmbodiedShare() <= traj[0].EmbodiedShare() {
		t.Errorf("embodied share should grow: %.2f -> %.2f",
			traj[0].EmbodiedShare(), traj[10].EmbodiedShare())
	}
	if _, err := o.Trajectory(0); err == nil {
		t.Error("zero years: expected error")
	}
}

func TestZeroRatesAreFlat(t *testing.T) {
	o := appleLike()
	o.FabDecarbRate = 0
	o.GridDecarbRate = 0
	traj, err := o.Trajectory(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range traj {
		if y.Total() != traj[0].Total() {
			t.Errorf("flat org changed at year %d", y.Year)
		}
	}
}

func TestYearsToReduce(t *testing.T) {
	o := appleLike()
	y, err := o.YearsToReduce(0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Dominated by the 4% fab rate: halving takes ≈15-17 years — the
	// quantified reason supply-chain pledges hinge on fab decarbonization.
	if y < 12 || y > 18 {
		t.Errorf("years to halve = %d, want ≈15", y)
	}

	// A fab-decarbonization push (15%/yr) roughly dominates the timeline.
	fast := o
	fast.FabDecarbRate = 0.15
	yf, err := fast.YearsToReduce(0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if yf >= y {
		t.Errorf("faster fabs (%d years) should beat slower (%d)", yf, y)
	}

	if _, err := o.YearsToReduce(0.5, 2); err == nil {
		t.Error("unreachable within horizon: expected error")
	}
	if _, err := o.YearsToReduce(0, 40); err == nil {
		t.Error("fraction 0: expected error")
	}
	if _, err := o.YearsToReduce(1, 40); err == nil {
		t.Error("fraction 1: expected error")
	}
}

func TestEmbodiedShareZeroTotal(t *testing.T) {
	y := Year{}
	if y.EmbodiedShare() != 0 {
		t.Errorf("zero-total share = %v, want 0", y.EmbodiedShare())
	}
}

// Property: totals are non-increasing year over year for any valid rates.
func TestQuickTrajectoryMonotone(t *testing.T) {
	f := func(fabRaw, gridRaw uint8) bool {
		o := appleLike()
		o.FabDecarbRate = float64(fabRaw%90) / 100
		o.GridDecarbRate = float64(gridRaw%90) / 100
		traj, err := o.Trajectory(8)
		if err != nil {
			return false
		}
		for i := 1; i < len(traj); i++ {
			if traj[i].Total() > traj[i-1].Total()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
