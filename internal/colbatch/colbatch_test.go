package colbatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"act/internal/acterr"
	"act/internal/report"
	"act/internal/scenario"
)

// variants is a corpus of valid specs covering every evaluation shape:
// defaults, PUE and battery scaling, every component class, life-cycle
// with and without each section, hostile names, and magnitudes that force
// the 'e' float format.
func variants() []*scenario.Spec {
	return []*scenario.Spec{
		scenario.Example(),
		{ // minimal: one module, all defaults
			Name:  "minimal",
			DRAM:  []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}},
			Usage: scenario.UsageSpec{PowerW: 1, AppHours: 100},
		},
		{ // datacenter: PUE, HDD + SSD, multi-logic, extra ICs
			Name: "server",
			Logic: []scenario.LogicSpec{
				{Name: "cpu", AreaMM2: 400, Node: "14nm", Count: 2},
				{Name: "nic", AreaMM2: 50, Node: "28nm"},
			},
			DRAM:    []scenario.DRAMSpec{{Name: "dimm", Technology: "10nm-ddr4", CapacityGB: 256}},
			Storage: []scenario.StorageSpec{{Name: "hdd", Technology: "exosx16", CapacityGB: 14000}, {Name: "ssd", Technology: "nytro-1551", CapacityGB: 1920}},
			ExtraICs: 40,
			Usage:    scenario.UsageSpec{PowerW: 300, AppHours: 8766, PUE: 1.4},
			LifetimeYears: 4,
		},
		{ // custom fab parameters
			Name: "custom-fab",
			Logic: []scenario.LogicSpec{{
				Name: "soc", AreaMM2: 120, Node: "7nm",
				Fab: &scenario.FabSpec{CarbonIntensity: 50, Abatement: 0.99, Yield: 0.9},
			}},
			Usage: scenario.UsageSpec{PowerW: 2, AppHours: 1000, IntensityGPerKWh: 700},
		},
		{ // transport only (no end-of-life)
			Name:      "transport-only",
			Logic:     []scenario.LogicSpec{{Name: "soc", AreaMM2: 80, Node: "10nm"}},
			Usage:     scenario.UsageSpec{PowerW: 2, AppHours: 500},
			Transport: []scenario.TransportSpec{{Name: "ship", MassKg: 2, DistanceKm: 20000, Mode: "Sea"}},
		},
		{ // end-of-life only, credit exceeding processing (floors to 0)
			Name:      "eol-only",
			Storage:   []scenario.StorageSpec{{Name: "s", Technology: "wd-2019", CapacityGB: 512}},
			Usage:     scenario.UsageSpec{PowerW: 0.5, AppHours: 2000, BatteryEfficiency: 0.9},
			EndOfLife: &scenario.EndOfLifeSpec{ProcessingKg: 0.1, RecyclingCreditKg: 5},
		},
		{ // hostile strings: HTML escapes, controls, invalid UTF-8, U+2028
			Name: "a<b>&\"\\\n\t\x01\x80ü z",
			Logic: []scenario.LogicSpec{{Name: "die <&>  ", AreaMM2: 10, Node: "28nm"}},
			Usage: scenario.UsageSpec{PowerW: 1, AppHours: 10},
		},
		{ // magnitudes forcing the 'e' float format both ways
			Name:    "extremes",
			DRAM:    []scenario.DRAMSpec{{Name: "tiny", Technology: "lpddr4", CapacityGB: 1e-9}},
			Storage: []scenario.StorageSpec{{Name: "huge", Technology: "barracuda", CapacityGB: 1e22}},
			Usage:   scenario.UsageSpec{PowerW: 1e-9, AppHours: 0.001},
		},
		{ // zero power: operational exactly 0
			Name:  "zero-power",
			DRAM:  []scenario.DRAMSpec{{Name: "m", Technology: "30nm-lpddr3", CapacityGB: 8}},
			Usage: scenario.UsageSpec{PowerW: 0, AppHours: 24},
		},
	}
}

// invalids is a corpus of specs the scalar path rejects, one per distinct
// acterr field path.
func invalids() []*scenario.Spec {
	return []*scenario.Spec{
		{Name: "", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}},
		{Name: "no-components", Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}},
		{Name: "bad-node", Logic: []scenario.LogicSpec{{Name: "l", AreaMM2: 10, Node: "9999nm"}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}},
		{Name: "bad-area", Logic: []scenario.LogicSpec{{Name: "l", AreaMM2: -1, Node: "7nm"}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}},
		{Name: "bad-abatement", Logic: []scenario.LogicSpec{{Name: "l", AreaMM2: 10, Node: "7nm", Fab: &scenario.FabSpec{Abatement: 0.5}}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}},
		{Name: "bad-dram", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "no-such-tech", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}},
		{Name: "bad-dram-cap", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 0}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}},
		{Name: "bad-storage", Storage: []scenario.StorageSpec{{Name: "s", Technology: "floppy", CapacityGB: 1}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}},
		{Name: "neg-power", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: -1, AppHours: 1}},
		{Name: "no-hours", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1}},
		{Name: "pue-and-battery", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1, PUE: 1.5, BatteryEfficiency: 0.9}},
		{Name: "bad-pue", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1, PUE: 0.5}},
		{Name: "bad-battery", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1, BatteryEfficiency: 1.5}},
		{Name: "neg-lifetime", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}, LifetimeYears: -2},
		{Name: "hours-exceed-lifetime", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1e6}, LifetimeYears: 1},
		{Name: "bad-mode", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}, Transport: []scenario.TransportSpec{{Name: "t", MassKg: 1, DistanceKm: 1, Mode: "teleport"}}},
		{Name: "neg-mass", DRAM: []scenario.DRAMSpec{{Name: "m", Technology: "lpddr4", CapacityGB: 4}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}, Transport: []scenario.TransportSpec{{Name: "t", MassKg: -1, DistanceKm: 1, Mode: "air"}}},
		{Name: "nan-area", Logic: []scenario.LogicSpec{{Name: "l", AreaMM2: math.NaN(), Node: "7nm"}}, Usage: scenario.UsageSpec{PowerW: 1, AppHours: 1}},
	}
}

// scalarDoc is the oracle rendering used by every test: the untouched
// scalar path exactly as actd and the CLI run it.
func scalarDoc(t *testing.T, s *scenario.Spec) ([]byte, error) {
	t.Helper()
	res, err := s.Result()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := report.Encode(&buf, res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func TestEvalByteIdentity(t *testing.T) {
	specs := variants()
	r := Eval(specs)
	defer r.Close()
	if r.Len() != len(specs) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(specs))
	}
	for i, s := range specs {
		want, wantErr := scalarDoc(t, s)
		if wantErr != nil {
			t.Fatalf("variant %d (%s): scalar path unexpectedly errored: %v", i, s.Name, wantErr)
		}
		if err := r.Err(i); err != nil {
			t.Fatalf("variant %d (%s): Eval errored: %v", i, s.Name, err)
		}
		if got := r.Doc(i); !bytes.Equal(got, want) {
			t.Errorf("variant %d (%s): document mismatch\ncolumnar:\n%s\nscalar:\n%s", i, s.Name, got, want)
		}
	}
}

func TestEvalErrorParity(t *testing.T) {
	specs := invalids()
	r := Eval(specs)
	defer r.Close()
	for i, s := range specs {
		_, wantErr := scalarDoc(t, s)
		gotErr := r.Err(i)
		switch {
		case wantErr == nil && gotErr == nil:
			// nan-area style specs may legally succeed on both paths.
			continue
		case wantErr == nil || gotErr == nil:
			t.Errorf("spec %d (%s): error mismatch: columnar=%v scalar=%v", i, s.Name, gotErr, wantErr)
			continue
		}
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("spec %d (%s): error text mismatch\ncolumnar: %s\nscalar:   %s", i, s.Name, gotErr, wantErr)
		}
		if acterr.IsInvalid(wantErr) != acterr.IsInvalid(gotErr) {
			t.Errorf("spec %d (%s): invalid-classification mismatch", i, s.Name)
			continue
		}
		var gotInv, wantInv *acterr.InvalidSpecError
		if errors.As(wantErr, &wantInv) != errors.As(gotErr, &gotInv) {
			t.Errorf("spec %d (%s): typed-error mismatch", i, s.Name)
			continue
		}
		if wantInv != nil && gotInv.Field != wantInv.Field {
			t.Errorf("spec %d (%s): field path mismatch: columnar=%q scalar=%q", i, s.Name, gotInv.Field, wantInv.Field)
		}
	}
}

func TestEvalDegenerateBatches(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		r := Eval(nil)
		defer r.Close()
		if r.Len() != 0 {
			t.Fatalf("Len = %d, want 0", r.Len())
		}
		if i, err := r.FirstErr(); i != -1 || err != nil {
			t.Fatalf("FirstErr = %d, %v; want -1, nil", i, err)
		}
	})
	t.Run("single", func(t *testing.T) {
		s := scenario.Example()
		r := Eval([]*scenario.Spec{s})
		defer r.Close()
		want, _ := scalarDoc(t, s)
		if !bytes.Equal(r.Doc(0), want) {
			t.Fatalf("single-item document mismatch")
		}
	})
	t.Run("beyond-chunk", func(t *testing.T) {
		n := DefaultChunk + 37
		specs := make([]*scenario.Spec, n)
		base := variants()
		for i := range specs {
			specs[i] = base[i%len(base)]
		}
		r := Eval(specs)
		defer r.Close()
		for i, s := range specs {
			want, _ := scalarDoc(t, s)
			if !bytes.Equal(r.Doc(i), want) {
				t.Fatalf("item %d (%s) mismatch at chunk-straddling size %d", i, s.Name, n)
			}
		}
	})
	t.Run("mixed-valid-invalid", func(t *testing.T) {
		var specs []*scenario.Spec
		good, bad := variants(), invalids()
		for i := 0; i < len(good) || i < len(bad); i++ {
			if i < len(good) {
				specs = append(specs, good[i])
			}
			if i < len(bad) {
				specs = append(specs, bad[i])
			}
		}
		r := Eval(specs)
		defer r.Close()
		for i, s := range specs {
			want, wantErr := scalarDoc(t, s)
			if wantErr != nil {
				gotErr := r.Err(i)
				if gotErr == nil || gotErr.Error() != wantErr.Error() {
					t.Errorf("item %d (%s): error mismatch: columnar=%v scalar=%v", i, s.Name, gotErr, wantErr)
				}
				continue
			}
			if !bytes.Equal(r.Doc(i), want) {
				t.Errorf("item %d (%s): document diverged in mixed batch", i, s.Name)
			}
		}
	})
}

func TestEmbodiedTotalsMatchScalar(t *testing.T) {
	specs := append(variants(), invalids()...)
	out := make([]float64, len(specs))
	firstErr := EmbodiedTotals(specs, out)
	var wantFirst error
	for i, s := range specs {
		g, err := scalarEmbodied(s)
		if err != nil {
			if wantFirst == nil {
				wantFirst = err
			}
			continue
		}
		got := out[i]
		if got != g && !(math.IsNaN(got) && math.IsNaN(g)) {
			t.Errorf("spec %d (%s): embodied total %v, scalar %v", i, s.Name, got, g)
		}
	}
	if (firstErr == nil) != (wantFirst == nil) {
		t.Fatalf("first error mismatch: columnar=%v scalar=%v", firstErr, wantFirst)
	}
	if firstErr != nil && firstErr.Error() != wantFirst.Error() {
		t.Fatalf("first error text mismatch:\ncolumnar: %s\nscalar:   %s", firstErr, wantFirst)
	}
}

// TestConcurrentBatchesSharePools stresses pool reuse across goroutines;
// run with -race it proves the pooled columns never alias live results.
func TestConcurrentBatchesSharePools(t *testing.T) {
	base := variants()
	want := make([][]byte, len(base))
	for i, s := range base {
		want[i], _ = scalarDoc(t, s)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				// Rotate the order per goroutine so batches differ.
				specs := make([]*scenario.Spec, len(base))
				exp := make([][]byte, len(base))
				for i := range base {
					j := (i + g + iter) % len(base)
					specs[i] = base[j]
					exp[i] = want[j]
				}
				r := Eval(specs)
				for i := range specs {
					if err := r.Err(i); err != nil {
						t.Errorf("goroutine %d iter %d item %d: %v", g, iter, i, err)
						continue
					}
					if !bytes.Equal(r.Doc(i), exp[i]) {
						t.Errorf("goroutine %d iter %d item %d: document corrupted by concurrent reuse", g, iter, i)
					}
				}
				r.Close()
			}
		}(g)
	}
	wg.Wait()
}

// TestEncoderPrimitivesMatchStdlib A/B-tests the float and string encoders
// against encoding/json over adversarial values.
func TestEncoderPrimitivesMatchStdlib(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1, -1, 3.14159, 1e-6, 9.999999e-7, 1e-7,
		1e21, 9.99999e20, -1e21, 1e-300, 1e300, 150, 876.6, 1.0 / 3.0,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 123456789.123456789,
		2.2250738585072014e-308, 0.1, 0.30000000000000004,
	}
	for _, f := range floats {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("stdlib rejected %v: %v", f, err)
		}
		got, ok := appendJSONFloat(nil, f)
		if !ok {
			t.Errorf("appendJSONFloat rejected finite %v", f)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("float %v: got %s, stdlib %s", f, got, want)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, ok := appendJSONFloat(nil, f); ok {
			t.Errorf("appendJSONFloat accepted non-finite %v", f)
		}
	}

	strs := []string{
		"", "plain", "with space", `quote " and \ backslash`,
		"<script>&amp;</script>", "tab\tnewline\ncr\rbackspace\bformfeed\f",
		"\x00\x01\x1f\x7f", "valid ü 日本語 🌍", "invalid \x80\xfe bytes",
		"line and separators", strings.Repeat("é<", 100),
		"trailing invalid \xc3",
	}
	for _, s := range strs {
		// Encoder (not Marshal) to match the HTML-escaping default used
		// by report.Encode.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(s); err != nil {
			t.Fatalf("stdlib rejected %q: %v", s, err)
		}
		want := strings.TrimSuffix(buf.String(), "\n")
		got := appendJSONString(nil, s)
		if string(got) != want {
			t.Errorf("string %q: got %s, stdlib %s", s, got, want)
		}
	}
}

// BenchmarkColBatchEvalSweep is the honest design-space-exploration
// shape: every spec differs (a 1-dim area sweep), so per-item floats
// mostly miss the format dictionary.
func BenchmarkColBatchEvalSweep(b *testing.B) {
	const n = 512
	specs := make([]*scenario.Spec, n)
	for i := range specs {
		s := scenario.Example()
		s.Logic[0].AreaMM2 = 50 + float64(i)*0.25
		specs[i] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Eval(specs)
		if _, err := r.FirstErr(); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "scenarios/s")
}

func BenchmarkColBatchEval(b *testing.B) {
	const n = 512
	specs := make([]*scenario.Spec, n)
	for i := range specs {
		specs[i] = scenario.Example()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Eval(specs)
		if _, err := r.FirstErr(); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "scenarios/s")
}

func BenchmarkColBatchScalarOracle(b *testing.B) {
	// The same work through the scalar path, for the BENCH_6.json ratio.
	const n = 512
	specs := make([]*scenario.Spec, n)
	for i := range specs {
		specs[i] = scenario.Example()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := scalarEval(s); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "scenarios/s")
}

func BenchmarkColBatchEmbodiedTotals(b *testing.B) {
	const n = 512
	specs := make([]*scenario.Spec, n)
	for i := range specs {
		specs[i] = scenario.Example()
	}
	out := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EmbodiedTotals(specs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "devices/s")
}
