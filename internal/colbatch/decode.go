// Columnar decode: one scenario.Spec appended into the flat columns, with
// every characterization lookup funneled through the resolver so a batch
// pays for each distinct fab configuration and technology spelling once.
// The decoder mirrors the scalar validation conditions exactly — it must
// mark an item bad precisely when scenario.Spec.Result would reject it —
// but it never constructs error values itself: bad items are re-evaluated
// by the scalar oracle, which produces the canonical typed error.

package colbatch

import (
	"math"
	"strings"

	"act/internal/acterr"
	"act/internal/core"
	"act/internal/fab"
	"act/internal/memdb"
	"act/internal/scenario"
	"act/internal/storagedb"
	"act/internal/units"
)

// fabKey identifies a distinct fab configuration: the raw node spelling
// plus the (default-normalized at lookup time, raw here) fab overrides.
// Two logic entries with the same key share one CPA resolution.
type fabKey struct {
	node                 string
	ci, abatement, yield float64
}

type fabRes struct {
	cpaG float64 // CPA in g/cm² (Eq. 5); FixedYield makes it area-free
	bad  bool
}

type dramRes struct {
	cpsG float64
	bad  bool
}

type storRes struct {
	cpsG float64
	hdd  bool
	bad  bool
}

// resolver caches table resolutions. Entries are deterministic functions
// of immutable characterization tables, so they stay valid across batches
// and across pool cycles; trim only guards against unbounded growth from
// adversarial distinct inputs. Transient (injected) lookup faults are
// never cached — see resolveDRAM.
type resolver struct {
	fabs  map[fabKey]fabRes
	drams map[string]dramRes
	stors map[string]storRes

	// Dictionary-encoded JSON fragments: formatted floats keyed by bit
	// pattern and escaped strings keyed by value, as spans into
	// append-only arenas. Sweep batches repeat most values (table-derived
	// component footprints, shared usage parameters), and a map hit is
	// several times cheaper than re-running Ryu shortest-float formatting.
	floats map[uint64]docSpan
	farena []byte
	strs   map[string]docSpan
	sarena []byte
}

func newResolver() resolver {
	return resolver{
		fabs:   make(map[fabKey]fabRes),
		drams:  make(map[string]dramRes),
		stors:  make(map[string]storRes),
		floats: make(map[uint64]docSpan),
		strs:   make(map[string]docSpan),
	}
}

func (r *resolver) trim() {
	if len(r.fabs) > maxResolverEntries {
		clear(r.fabs)
	}
	if len(r.drams) > maxResolverEntries {
		clear(r.drams)
	}
	if len(r.stors) > maxResolverEntries {
		clear(r.stors)
	}
	if len(r.floats) > maxMemoEntries {
		clear(r.floats)
		r.farena = r.farena[:0]
	}
	if len(r.strs) > maxMemoEntries {
		clear(r.strs)
		r.sarena = r.sarena[:0]
	}
}

// resolveFab resolves one distinct fab configuration to its CPA the exact
// way scenario.buildFab + fab.CPA do: same option order, same numerator,
// same division. The paper's yield model is a fixed fraction, so CPA is
// area-independent and one number per configuration suffices.
func (r *resolver) resolveFab(k fabKey) fabRes {
	if res, ok := r.fabs[k]; ok {
		return res
	}
	res := func() fabRes {
		params, err := fab.ParseNode(k.node)
		if err != nil {
			return fabRes{bad: true}
		}
		var opts []fab.Option
		if k.ci != 0 {
			opts = append(opts, fab.WithCarbonIntensity(units.GramsPerKWh(k.ci)))
		}
		if k.abatement != 0 {
			opts = append(opts, fab.WithAbatement(k.abatement))
		}
		if k.yield != 0 {
			opts = append(opts, fab.WithYield(fab.FixedYield(k.yield)))
		}
		f, err := fab.New(params.Node, opts...)
		if err != nil {
			return fabRes{bad: true}
		}
		cpa, err := f.CPA(0)
		if err != nil {
			return fabRes{bad: true}
		}
		return fabRes{cpaG: cpa.GramsPerCM2()}
	}()
	r.fabs[k] = res
	return res
}

// resolveDRAM resolves a raw technology spelling through memdb.Parse. A
// transient lookup fault (the chaos seam) is reported via ok=false and
// NOT cached: the item falls back to the scalar oracle, which re-runs the
// lookup and either absorbs the fault or surfaces it for retry.
func (r *resolver) resolveDRAM(tech string) (dramRes, bool) {
	if res, ok := r.drams[tech]; ok {
		return res, true
	}
	e, err := memdb.Parse(tech)
	if err != nil {
		if acterr.IsTransient(err) {
			return dramRes{bad: true}, false
		}
		res := dramRes{bad: true}
		r.drams[tech] = res
		return res, true
	}
	res := dramRes{cpsG: e.CPS.GramsPerGB()}
	r.drams[tech] = res
	return res, true
}

func (r *resolver) resolveStorage(tech string) storRes {
	if res, ok := r.stors[tech]; ok {
		return res
	}
	var res storRes
	e, err := storagedb.Parse(tech)
	if err != nil {
		res = storRes{bad: true}
	} else {
		res = storRes{cpsG: e.CPS.GramsPerGB(), hdd: e.Class == storagedb.HDD}
	}
	r.stors[tech] = res
	return res
}

// transportFactor mirrors core's g-per-tonne-km table, keyed by the
// canonical (lowercased, trimmed) mode the scalar path switches on.
func transportFactor(mode string) (float64, bool) {
	switch core.TransportMode(mode) {
	case core.TransportAir:
		return 600, true
	case core.TransportSea:
		return 10, true
	case core.TransportRoad:
		return 80, true
	case core.TransportRail:
		return 25, true
	}
	return 0, false
}

// canonName matches scenario's canonicalization of technology/mode names.
func canonName(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// appendSpec decodes one spec into the columns. bomOnly skips the usage
// and life-cycle sections (the fleet Recompute shape). Any condition the
// scalar path would reject — or any lookup the fast path cannot resolve —
// marks the item bad; its flat appends are rolled back so the columns
// only ever hold provably valid rows.
func (b *batch) appendSpec(s *scenario.Spec, bomOnly bool) {
	i := b.n
	b.n++

	b.name = append(b.name, s.Name)
	b.bad = append(b.bad, false)
	b.hasLC = append(b.hasLC, false)
	b.hasEOL = append(b.hasEOL, false)
	b.appTime = append(b.appTime, 0)
	b.lifetime = append(b.lifetime, 0)
	b.powerW = append(b.powerW, 0)
	b.ci = append(b.ci, 0)
	b.eff = append(b.eff, 0)
	b.extraICs = append(b.extraICs, 0)
	b.eolProcG = append(b.eolProcG, 0)
	b.eolCredG = append(b.eolCredG, 0)
	b.opG = append(b.opG, 0)
	b.embG = append(b.embG, 0)
	b.shareG = append(b.shareG, 0)
	b.packG = append(b.packG, 0)
	b.icN = append(b.icN, 0)
	b.trG = append(b.trG, 0)
	b.eolG = append(b.eolG, 0)

	logicStart := len(b.logicName)
	dramStart := len(b.dramName)
	storStart := len(b.storName)
	legStart := len(b.legFactor)

	// markBad rolls the item's flat appends back and records empty CSR
	// ranges; the scalar oracle will own this item.
	markBad := func() {
		b.bad[i] = true
		b.logicName = b.logicName[:logicStart]
		b.logicArea = b.logicArea[:logicStart]
		b.logicCPA = b.logicCPA[:logicStart]
		b.logicCnt = b.logicCnt[:logicStart]
		b.dramName = b.dramName[:dramStart]
		b.dramCPS = b.dramCPS[:dramStart]
		b.dramCap = b.dramCap[:dramStart]
		b.storName = b.storName[:storStart]
		b.storCPS = b.storCPS[:storStart]
		b.storCap = b.storCap[:storStart]
		b.storHDD = b.storHDD[:storStart]
		b.legFactor = b.legFactor[:legStart]
		b.legMass = b.legMass[:legStart]
		b.legDist = b.legDist[:legStart]
		b.logicOff = append(b.logicOff, int32(logicStart))
		b.dramOff = append(b.dramOff, int32(dramStart))
		b.storOff = append(b.storOff, int32(storStart))
		b.legOff = append(b.legOff, int32(legStart))
	}

	// Device section — mirrors Spec.Device's conditions in order.
	if s.Name == "" || len(s.Logic)+len(s.DRAM)+len(s.Storage) == 0 {
		markBad()
		return
	}
	for _, l := range s.Logic {
		k := fabKey{node: l.Node}
		if l.Fab != nil {
			k.ci = l.Fab.CarbonIntensity
			k.abatement = l.Fab.Abatement
			k.yield = l.Fab.Yield
		}
		fr := b.res.resolveFab(k)
		count := l.Count
		if count == 0 {
			count = 1
		}
		if fr.bad || l.Name == "" || !(l.AreaMM2 > 0) || count <= 0 || count > math.MaxInt32 {
			markBad()
			return
		}
		b.logicName = append(b.logicName, l.Name)
		b.logicArea = append(b.logicArea, l.AreaMM2)
		b.logicCPA = append(b.logicCPA, fr.cpaG)
		b.logicCnt = append(b.logicCnt, int32(count))
	}
	for _, m := range s.DRAM {
		dr, ok := b.res.resolveDRAM(m.Technology)
		if !ok || dr.bad || m.Name == "" || !(m.CapacityGB > 0) {
			markBad()
			return
		}
		b.dramName = append(b.dramName, m.Name)
		b.dramCPS = append(b.dramCPS, dr.cpsG)
		b.dramCap = append(b.dramCap, m.CapacityGB)
	}
	for _, st := range s.Storage {
		sr := b.res.resolveStorage(st.Technology)
		if sr.bad || st.Name == "" || !(st.CapacityGB > 0) {
			markBad()
			return
		}
		b.storName = append(b.storName, st.Name)
		b.storCPS = append(b.storCPS, sr.cpsG)
		b.storCap = append(b.storCap, st.CapacityGB)
		b.storHDD = append(b.storHDD, sr.hdd)
	}
	if s.ExtraICs > 0 {
		if s.ExtraICs > math.MaxInt32 {
			markBad()
			return
		}
		b.extraICs[i] = int32(s.ExtraICs)
	}

	if !bomOnly {
		// Usage section — mirrors Spec.usage + lifetimeDuration + the
		// appTime-vs-lifetime comparison in Spec.Assess.
		u := s.Usage
		ci := u.IntensityGPerKWh
		if ci == 0 {
			ci = 300 // US grid default
		}
		if ci < 0 || u.PowerW < 0 || !(u.AppHours > 0) {
			markBad()
			return
		}
		switch {
		case u.PUE != 0 && u.BatteryEfficiency != 0:
			markBad()
			return
		case u.PUE != 0:
			if u.PUE < 1 {
				markBad()
				return
			}
			b.eff[i] = u.PUE
		case u.BatteryEfficiency != 0:
			if u.BatteryEfficiency <= 0 || u.BatteryEfficiency > 1 {
				markBad()
				return
			}
			b.eff[i] = 1 / u.BatteryEfficiency
		}
		lt := s.Lifetime()
		if lt <= 0 {
			markBad()
			return
		}
		appTime := units.Years(u.AppHours / (365.25 * 24))
		lifetime := units.Years(lt)
		// core.Footprint re-validates at the duration level: a positive
		// float lifetime can still truncate to a non-positive duration.
		if lifetime <= 0 || appTime < 0 || appTime > lifetime {
			markBad()
			return
		}
		b.appTime[i] = appTime
		b.lifetime[i] = lifetime
		b.powerW[i] = u.PowerW
		b.ci[i] = ci

		// Life-cycle section — mirrors Spec.LifeCycle's leg validation.
		if s.HasLifeCycle() {
			b.hasLC[i] = true
			for _, leg := range s.Transport {
				factor, ok := transportFactor(canonName(leg.Mode))
				if !ok || leg.MassKg < 0 || leg.DistanceKm < 0 {
					markBad()
					return
				}
				b.legFactor = append(b.legFactor, factor)
				b.legMass = append(b.legMass, leg.MassKg)
				b.legDist = append(b.legDist, leg.DistanceKm)
			}
			if s.EndOfLife != nil {
				b.hasEOL[i] = true
				b.eolProcG[i] = units.Kilograms(s.EndOfLife.ProcessingKg).Grams()
				b.eolCredG[i] = units.Kilograms(s.EndOfLife.RecyclingCreditKg).Grams()
			}
		}
	}

	b.logicOff = append(b.logicOff, int32(len(b.logicName)))
	b.dramOff = append(b.dramOff, int32(len(b.dramName)))
	b.storOff = append(b.storOff, int32(len(b.storName)))
	b.legOff = append(b.legOff, int32(len(b.legFactor)))
}

// scalarEmbodied is the fleet-shaped oracle: the BoM-only scalar path
// (Device → Embodied → Total), matching fleet's embodiedOf.
func scalarEmbodied(s *scenario.Spec) (float64, error) {
	d, err := s.Device()
	if err != nil {
		return 0, err
	}
	br, err := core.Embodied(d)
	if err != nil {
		return 0, err
	}
	return br.Total().Grams(), nil
}
