// Columnar document emission. appendDoc writes one item's ResultJSON
// document into the batch arena, replicating what
// json.Encoder{SetIndent("", "  ")}.Encode produces for the same values
// byte for byte: the same float formatting cutoffs, the same HTML-escaped
// string encoding, the same two-space indentation, the same trailing
// newline. Any value the stdlib encoder would reject (NaN, ±Inf) makes
// appendDoc report false and the item falls back to the scalar oracle,
// which reproduces the stdlib error.

package colbatch

import (
	"math"
	"strconv"
	"strings"
	"unicode/utf8"
)

// appendJSONFloat appends a float the way encoding/json does: shortest
// round-trip form, 'f' format except for very small/large magnitudes,
// with the exponent's leading zero stripped ("e-09" → "e-9"). Reports
// false for non-finite values, which the stdlib encoder errors on.
func appendJSONFloat(buf []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return buf, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf, true
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends a quoted string the way encoding/json does
// with HTML escaping on (the Encoder default): ASCII other than control
// chars, quote, backslash, and <>& passes through; the short escapes
// cover \b \f \n \r \t; other control chars become \u00XX; invalid UTF-8
// bytes become U+FFFD; U+2028/U+2029 are escaped for JS embedding.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch c {
			case '\\', '"':
				buf = append(buf, '\\', c)
			case '\b':
				buf = append(buf, '\\', 'b')
			case '\f':
				buf = append(buf, '\\', 'f')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	buf = append(buf, '"')
	return buf
}

// memoFloat appends a formatted float, serving repeats from the
// resolver's dictionary: batch workloads (sweeps, fleets) reuse most
// values, and a map hit plus memcpy is several times cheaper than Ryu.
func (b *batch) memoFloat(buf []byte, f float64) ([]byte, bool) {
	bits := math.Float64bits(f)
	if sp, ok := b.res.floats[bits]; ok {
		return append(buf, b.res.farena[sp.start:sp.end]...), true
	}
	start := len(b.res.farena)
	fa, ok := appendJSONFloat(b.res.farena, f)
	if !ok {
		return buf, false
	}
	b.res.farena = fa
	b.res.floats[bits] = docSpan{start, len(fa)}
	return append(buf, fa[start:]...), true
}

// memoString appends an escaped quoted string through the same
// dictionary. Keys are cloned so the map never pins a spec's memory.
func (b *batch) memoString(buf []byte, s string) []byte {
	if sp, ok := b.res.strs[s]; ok {
		return append(buf, b.res.sarena[sp.start:sp.end]...)
	}
	start := len(b.res.sarena)
	b.res.sarena = appendJSONString(b.res.sarena, s)
	b.res.strs[strings.Clone(s)] = docSpan{start, len(b.res.sarena)}
	return append(buf, b.res.sarena[start:]...)
}

// appendBreakdownItem emits one breakdown line. nameRaw carries a
// pre-rendered name (the packaging synthetic) that needs no escaping.
func (b *batch) appendBreakdownItem(buf []byte, first bool, name string, nameRaw []byte, kind string, g float64) ([]byte, bool) {
	if !first {
		buf = append(buf, ',')
	}
	buf = append(buf, "\n    {\n      \"name\": "...)
	if nameRaw != nil {
		buf = append(buf, nameRaw...)
	} else {
		buf = b.memoString(buf, name)
	}
	buf = append(buf, ",\n      \"kind\": \""...)
	buf = append(buf, kind...)
	buf = append(buf, "\",\n      \"embodied_g\": "...)
	var ok bool
	if buf, ok = b.memoFloat(buf, g); !ok {
		return buf, false
	}
	buf = append(buf, "\n    }"...)
	return buf, true
}

// appendPhase emits one life-cycle phase line.
func (b *batch) appendPhase(buf []byte, first bool, phase string, g, share float64) ([]byte, bool) {
	if !first {
		buf = append(buf, ',')
	}
	buf = append(buf, "\n      {\n        \"phase\": \""...)
	buf = append(buf, phase...)
	buf = append(buf, "\",\n        \"emissions_g\": "...)
	var ok bool
	if buf, ok = b.memoFloat(buf, g); !ok {
		return buf, false
	}
	buf = append(buf, ",\n        \"share\": "...)
	if buf, ok = b.memoFloat(buf, share); !ok {
		return buf, false
	}
	buf = append(buf, "\n      }"...)
	return buf, true
}

// appendDoc appends item i's complete result document to the arena and
// reports whether every value was encodable. On false the caller rewinds
// the arena and routes the item to the scalar oracle.
func (b *batch) appendDoc(i int) bool {
	buf, ok := b.appendDocTo(b.buf, i)
	b.buf = buf
	return ok
}

func (b *batch) appendDocTo(buf []byte, i int) ([]byte, bool) {
	var ok bool

	buf = append(buf, "{\n  \"device\": "...)
	buf = b.memoString(buf, b.name[i])
	buf = append(buf, ",\n  \"app_hours\": "...)
	if buf, ok = b.memoFloat(buf, b.appTime[i].Hours()); !ok {
		return buf, false
	}
	buf = append(buf, ",\n  \"lifetime_years\": "...)
	if buf, ok = b.memoFloat(buf, b.lifetime[i].Hours()/(365.25*24)); !ok {
		return buf, false
	}
	buf = append(buf, ",\n  \"operational_g\": "...)
	if buf, ok = b.memoFloat(buf, b.opG[i]); !ok {
		return buf, false
	}
	buf = append(buf, ",\n  \"embodied_total_g\": "...)
	if buf, ok = b.memoFloat(buf, b.embG[i]); !ok {
		return buf, false
	}
	buf = append(buf, ",\n  \"embodied_share_g\": "...)
	if buf, ok = b.memoFloat(buf, b.shareG[i]); !ok {
		return buf, false
	}
	buf = append(buf, ",\n  \"total_g\": "...)
	if buf, ok = b.memoFloat(buf, b.opG[i]+b.shareG[i]); !ok {
		return buf, false
	}

	buf = append(buf, ",\n  \"breakdown\": ["...)
	first := true
	for j := b.logicOff[i]; j < b.logicOff[i+1]; j++ {
		if buf, ok = b.appendBreakdownItem(buf, first, b.logicName[j], nil, "logic", b.logicEmb[j]); !ok {
			return buf, false
		}
		first = false
	}
	for j := b.dramOff[i]; j < b.dramOff[i+1]; j++ {
		if buf, ok = b.appendBreakdownItem(buf, first, b.dramName[j], nil, "dram", b.dramEmb[j]); !ok {
			return buf, false
		}
		first = false
	}
	for j := b.storOff[i]; j < b.storOff[i+1]; j++ {
		kind := "ssd"
		if b.storHDD[j] {
			kind = "hdd"
		}
		if buf, ok = b.appendBreakdownItem(buf, first, b.storName[j], nil, kind, b.storEmb[j]); !ok {
			return buf, false
		}
		first = false
	}
	if b.icN[i] > 0 {
		// "packaging (N ICs)" — digits and ASCII text, no escaping needed.
		b.scratch = append(b.scratch[:0], "\"packaging ("...)
		b.scratch = strconv.AppendInt(b.scratch, b.icN[i], 10)
		b.scratch = append(b.scratch, " ICs)\""...)
		if buf, ok = b.appendBreakdownItem(buf, first, "", b.scratch, "packaging", b.packG[i]); !ok {
			return buf, false
		}
		first = false
	}
	if first {
		buf = append(buf, ']')
	} else {
		buf = append(buf, "\n  ]"...)
	}

	if b.hasLC[i] {
		// PhaseReport.Total sums manufacturing, transport, use,
		// end-of-life in that order; the use phase is the operational
		// value bitwise (scaling wall energy by effectiveness 1 is exact).
		lcTotal := ((b.embG[i] + b.trG[i]) + b.opG[i]) + b.eolG[i]
		share := func(g float64) float64 {
			if lcTotal == 0 {
				return 0
			}
			return g / lcTotal
		}
		buf = append(buf, ",\n  \"life_cycle\": {\n    \"phases\": ["...)
		if buf, ok = b.appendPhase(buf, true, "manufacturing", b.embG[i], share(b.embG[i])); !ok {
			return buf, false
		}
		if buf, ok = b.appendPhase(buf, false, "transport", b.trG[i], share(b.trG[i])); !ok {
			return buf, false
		}
		if buf, ok = b.appendPhase(buf, false, "use", b.opG[i], share(b.opG[i])); !ok {
			return buf, false
		}
		if buf, ok = b.appendPhase(buf, false, "end-of-life", b.eolG[i], share(b.eolG[i])); !ok {
			return buf, false
		}
		buf = append(buf, "\n    ],\n    \"total_g\": "...)
		if buf, ok = b.memoFloat(buf, lcTotal); !ok {
			return buf, false
		}
		buf = append(buf, "\n  }"...)
	}

	buf = append(buf, "\n}\n"...)
	return buf, true
}
