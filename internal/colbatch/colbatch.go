// Package colbatch is the columnar batch evaluation engine for the
// footprint hot path. It decodes a batch of scenario specs into
// structure-of-arrays columns (one flat slice per model parameter, with
// CSR-style per-item offsets), preresolves fab/memdb/storagedb table rows
// into dense per-batch caches once, evaluates Eqs. 1-8 of the paper with
// tight loops over the flat columns, and emits each result document with a
// hand-rolled encoder that replicates encoding/json byte for byte.
//
// The scalar path (scenario.Spec.Result + report.Encode) stays untouched
// as the oracle: any item the columnar decoder cannot prove valid — a
// failed table lookup, an out-of-range field, a non-finite intermediate —
// falls back to the scalar path for that one item, so its document or its
// typed acterr field path is identical to the scalar answer by
// construction. internal/conform runs a fifth "columnar" surface over the
// whole seeded corpus to machine-enforce the byte identity.
//
// Steady-state allocation on the batch path is near zero: column buffers,
// the document arena and the result headers are pooled via sync.Pool, and
// the per-batch resolution caches persist across batches (the tables they
// mirror are immutable), bounded by maxResolverEntries.
package colbatch

import (
	"bytes"
	"sync"
	"time"

	"act/internal/report"
	"act/internal/scenario"
)

// DefaultChunk is the chunk size integration loops use when fanning a
// large batch across a worker pool: big enough to amortize the per-chunk
// resolution cache warm-up, small enough to keep the pool busy.
const DefaultChunk = 256

// maxPooledItems caps the batch capacity returned to the pool so one
// outsized request cannot pin its columns forever.
const maxPooledItems = 8192

// maxResolverEntries caps each table-resolution cache. Distinct fab
// configs and technology spellings are few in practice; a client streaming
// unbounded distinct values must not grow the cache without limit.
const maxResolverEntries = 4096

// maxMemoEntries caps each dictionary-encoding memo (formatted floats,
// escaped strings). These have to hold the working set of a full sweep —
// a few thousand distinct specs yield tens of thousands of distinct
// derived floats — or steady-state batches re-run Ryu formatting from
// scratch every time. At ~40 bytes an entry the cap bounds each pooled
// resolver near 3 MB.
const maxMemoEntries = 1 << 16

// Results is the outcome of one columnar batch evaluation. Doc bytes
// point into a pooled arena and are valid until Close; callers that
// retain a document (a cache, say) must copy it first.
type Results struct {
	docs [][]byte
	errs []error
	b    *batch
}

// Len returns the number of items in the batch.
func (r *Results) Len() int { return len(r.docs) }

// Doc returns item i's result document — byte-identical to the scalar
// path's report.Encode output — or nil when the item errored. Valid until
// Close.
func (r *Results) Doc(i int) []byte { return r.docs[i] }

// Err returns item i's evaluation error, identical to the scalar path's
// (same acterr field path, same message), or nil.
func (r *Results) Err(i int) error { return r.errs[i] }

// FirstErr returns the lowest-index item error and its index, or (-1,
// nil) when every item evaluated cleanly — the same first-error semantics
// a parsweep.MapErrCtx over the scalar path reports.
func (r *Results) FirstErr() (int, error) {
	for i, err := range r.errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}

// Close returns the pooled column buffers. The Results and every Doc
// slice are invalid afterwards.
func (r *Results) Close() {
	if r.b != nil {
		putBatch(r.b)
		r.b = nil
	}
	// Keep the headers' capacity but drop every reference: the docs point
	// into the batch arena that just went back to the pool.
	for i := range r.docs {
		r.docs[i] = nil
	}
	r.docs = r.docs[:0]
	for i := range r.errs {
		r.errs[i] = nil
	}
	r.errs = r.errs[:0]
	resultsPool.Put(r)
}

var resultsPool = sync.Pool{New: func() any { return new(Results) }}

// Eval evaluates a batch of specs through the columnar engine and returns
// one document or error per item, in input order. Items the fast path
// cannot prove valid are answered by the scalar oracle, so documents and
// errors are byte- and path-identical to scenario.Spec.Result.
func Eval(specs []*scenario.Spec) *Results {
	b := getBatch()
	for _, s := range specs {
		b.appendSpec(s, false)
	}
	b.evalColumns()

	r := resultsPool.Get().(*Results)
	r.b = b
	// Two passes: the arena may reallocate while documents append, so
	// record offsets first and materialize subslices once it is stable.
	offs := b.docSpans[:0]
	for i := range specs {
		if b.bad[i] {
			offs = append(offs, docSpan{-1, -1})
			continue
		}
		start := len(b.buf)
		if !b.appendDoc(i) {
			// A non-finite value the scalar encoder would reject (or
			// reject differently): let the oracle answer.
			b.buf = b.buf[:start]
			b.bad[i] = true
			offs = append(offs, docSpan{-1, -1})
			continue
		}
		offs = append(offs, docSpan{start, len(b.buf)})
	}
	b.docSpans = offs
	for i, s := range specs {
		if b.bad[i] {
			doc, err := scalarEval(s)
			r.docs = append(r.docs, doc)
			r.errs = append(r.errs, err)
			continue
		}
		r.docs = append(r.docs, b.buf[offs[i].start:offs[i].end:offs[i].end])
		r.errs = append(r.errs, nil)
	}
	return r
}

type docSpan struct{ start, end int }

// scalarEval is the oracle: the untouched scalar path, evaluated and
// encoded exactly as cmd/act -format json and actd's cache-miss path do.
func scalarEval(s *scenario.Spec) ([]byte, error) {
	res, err := s.Result()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := report.Encode(&buf, res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EmbodiedTotals evaluates only the embodied side (ECF, Eqs. 3-8) of each
// spec — the quantity fleet Recompute reprices — writing one total in
// grams per spec into out (which must be len(specs)). It returns the
// lowest-index item error, identical to the scalar
// Device-Embodied-Total path's, or nil.
func EmbodiedTotals(specs []*scenario.Spec, out []float64) error {
	b := getBatch()
	defer putBatch(b)
	for _, s := range specs {
		b.appendSpec(s, true)
	}
	b.evalColumns()
	var firstErr error
	for i, s := range specs {
		if b.bad[i] {
			g, err := scalarEmbodied(s)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				out[i] = 0
				continue
			}
			out[i] = g
			continue
		}
		out[i] = b.embG[i]
	}
	return firstErr
}

// batch is the structure-of-arrays form of a decoded spec batch. All
// slices are reused across batches via the pool; CSR offset slices have
// length n+1.
type batch struct {
	n int

	// Per-item scalars.
	name     []string
	bad      []bool
	hasLC    []bool
	hasEOL   []bool
	appTime  []time.Duration
	lifetime []time.Duration
	powerW   []float64
	ci       []float64
	eff      []float64 // 0 = unscaled; else the PUE / 1-over-eta multiplier
	extraICs []int32
	eolProcG []float64
	eolCredG []float64

	// CSR offsets into the flat component columns.
	logicOff []int32
	dramOff  []int32
	storOff  []int32
	legOff   []int32

	// Flat logic columns (Eqs. 4-5; CPA preresolved per fab config).
	logicName []string
	logicArea []float64
	logicCPA  []float64
	logicCnt  []int32
	logicEmb  []float64

	// Flat DRAM columns (Eq. 6; CPS preresolved from Table 9).
	dramName []string
	dramCPS  []float64
	dramCap  []float64
	dramEmb  []float64

	// Flat storage columns (Eqs. 7-8; CPS preresolved from Tables 10-11).
	storName []string
	storCPS  []float64
	storCap  []float64
	storHDD  []bool
	storEmb  []float64

	// Flat transport columns (life-cycle legs).
	legFactor []float64
	legMass   []float64
	legDist   []float64
	legEmb    []float64

	// Per-item results.
	opG    []float64
	embG   []float64
	shareG []float64
	packG  []float64
	icN    []int64
	trG    []float64
	eolG   []float64

	// Document arena and the packaging-name scratch buffer.
	buf      []byte
	scratch  []byte
	docSpans []docSpan

	res resolver
}

var batchPool = sync.Pool{New: func() any {
	return &batch{res: newResolver()}
}}

func getBatch() *batch {
	b := batchPool.Get().(*batch)
	b.reset()
	return b
}

func putBatch(b *batch) {
	if cap(b.name) > maxPooledItems {
		return // drop outsized batches instead of pinning their columns
	}
	batchPool.Put(b)
}

// reset rewinds every column to zero length, keeping capacity, and trims
// runaway resolution caches.
func (b *batch) reset() {
	b.n = 0
	b.name = b.name[:0]
	b.bad = b.bad[:0]
	b.hasLC = b.hasLC[:0]
	b.hasEOL = b.hasEOL[:0]
	b.appTime = b.appTime[:0]
	b.lifetime = b.lifetime[:0]
	b.powerW = b.powerW[:0]
	b.ci = b.ci[:0]
	b.eff = b.eff[:0]
	b.extraICs = b.extraICs[:0]
	b.eolProcG = b.eolProcG[:0]
	b.eolCredG = b.eolCredG[:0]
	b.logicOff = append(b.logicOff[:0], 0)
	b.dramOff = append(b.dramOff[:0], 0)
	b.storOff = append(b.storOff[:0], 0)
	b.legOff = append(b.legOff[:0], 0)
	b.logicName = b.logicName[:0]
	b.logicArea = b.logicArea[:0]
	b.logicCPA = b.logicCPA[:0]
	b.logicCnt = b.logicCnt[:0]
	b.logicEmb = b.logicEmb[:0]
	b.dramName = b.dramName[:0]
	b.dramCPS = b.dramCPS[:0]
	b.dramCap = b.dramCap[:0]
	b.dramEmb = b.dramEmb[:0]
	b.storName = b.storName[:0]
	b.storCPS = b.storCPS[:0]
	b.storCap = b.storCap[:0]
	b.storHDD = b.storHDD[:0]
	b.storEmb = b.storEmb[:0]
	b.legFactor = b.legFactor[:0]
	b.legMass = b.legMass[:0]
	b.legDist = b.legDist[:0]
	b.legEmb = b.legEmb[:0]
	b.opG = b.opG[:0]
	b.embG = b.embG[:0]
	b.shareG = b.shareG[:0]
	b.packG = b.packG[:0]
	b.icN = b.icN[:0]
	b.trG = b.trG[:0]
	b.eolG = b.eolG[:0]
	b.buf = b.buf[:0]
	b.docSpans = b.docSpans[:0]
	b.res.trim()
}
