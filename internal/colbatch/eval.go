// Columnar evaluation: Eqs. 1-8 over the flat columns. Every arithmetic
// expression here replicates the scalar path's operation order exactly —
// float addition and multiplication are not associative, and the conform
// harness compares the resulting documents byte for byte — so each line
// cites the scalar expression it mirrors.

package colbatch

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// evalColumns runs the flat component loops and then the per-item
// reductions. Bad items are skipped; their values are owned by the
// scalar oracle.
func (b *batch) evalColumns() {
	// Eq. 4/5 per logic row: fab.Embodied = CPA.For(area) = cpa * (mm²/100),
	// then Logic.Embodied scales by count: one.Grams() * float64(count).
	b.logicEmb = growF(b.logicEmb, len(b.logicName))
	for j := range b.logicCPA {
		one := b.logicCPA[j] * (b.logicArea[j] / 100)
		b.logicEmb[j] = one * float64(b.logicCnt[j])
	}
	// Eq. 6 per DRAM row: CPS.For(capacity) = cps * GB.
	b.dramEmb = growF(b.dramEmb, len(b.dramName))
	for j := range b.dramCPS {
		b.dramEmb[j] = b.dramCPS[j] * b.dramCap[j]
	}
	// Eqs. 7-8 per storage row: CPS.For(capacity) = cps * GB.
	b.storEmb = growF(b.storEmb, len(b.storName))
	for j := range b.storCPS {
		b.storEmb[j] = b.storCPS[j] * b.storCap[j]
	}
	// Transport legs: factor * (mass/1000 * distance), tonne-km first.
	b.legEmb = growF(b.legEmb, len(b.legFactor))
	for j := range b.legFactor {
		b.legEmb[j] = b.legFactor[j] * (b.legMass[j] / 1000 * b.legDist[j])
	}

	for i := 0; i < b.n; i++ {
		if b.bad[i] {
			continue
		}
		// ECF (Eq. 3): Breakdown.Total sums items in append order —
		// logic, dram, storage, packaging — and Nr counts extra ICs,
		// modules, drives and per-logic die counts.
		var sum float64
		icn := int64(b.extraICs[i]) +
			int64(b.dramOff[i+1]-b.dramOff[i]) +
			int64(b.storOff[i+1]-b.storOff[i])
		for j := b.logicOff[i]; j < b.logicOff[i+1]; j++ {
			sum += b.logicEmb[j]
			icn += int64(b.logicCnt[j])
		}
		for j := b.dramOff[i]; j < b.dramOff[i+1]; j++ {
			sum += b.dramEmb[j]
		}
		for j := b.storOff[i]; j < b.storOff[i+1]; j++ {
			sum += b.storEmb[j]
		}
		var pack float64
		if icn > 0 {
			pack = 150 * float64(icn) // Nr·Kr, PackagingFootprint per IC
			sum += pack
		}
		b.icN[i] = icn
		b.packG[i] = pack
		b.embG[i] = sum

		// Operational side (Eq. 2) — absent in BoM-only decodes, where
		// lifetime stays zero.
		if b.lifetime[i] > 0 {
			// UsageFromPower: Energy = watts * appTime.Seconds();
			// WallUsage scales by the effectiveness factor when one is set.
			j0 := b.powerW[i] * b.appTime[i].Seconds()
			wall := j0
			if b.eff[i] != 0 {
				wall = j0 * b.eff[i]
			}
			// Operational: CIuse.Emitted = ci * (J / 3.6e6).
			b.opG[i] = b.ci[i] * (wall / 3.6e6)
			// Eq. 1 amortization: total * (T.Seconds() / LT.Seconds()).
			b.shareG[i] = sum * (b.appTime[i].Seconds() / b.lifetime[i].Seconds())
		}

		// Life-cycle phases: transport legs summed in order; end-of-life
		// net = processing - credit floored at zero (zero when absent).
		if b.hasLC[i] {
			var tr float64
			for j := b.legOff[i]; j < b.legOff[i+1]; j++ {
				tr += b.legEmb[j]
			}
			b.trG[i] = tr
			var eol float64
			if b.hasEOL[i] {
				eol = b.eolProcG[i] - b.eolCredG[i]
				if eol < 0 {
					eol = 0
				}
			}
			b.eolG[i] = eol
		}
	}
}
