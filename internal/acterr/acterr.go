// Package acterr defines the typed validation errors the model packages
// share and the public act facade re-exports. The split they encode is the
// one a serving layer needs: errors a client can fix by editing their
// request (an unknown process node, an out-of-range field, an unsupported
// envelope version) versus internal failures. actd maps the former to HTTP
// 400 and the latter to 500; cmd/act uses the field path to point at the
// offending scenario field.
package acterr

import (
	"context"
	"errors"
	"fmt"
)

// ErrUnknownNode reports a process-node or technology name that no
// characterization table matches. Matched with errors.Is.
var ErrUnknownNode = errors.New("unknown process node")

// ErrUnsupportedVersion is the errors.Is target of UnsupportedVersionError.
var ErrUnsupportedVersion = errors.New("unsupported scenario version")

// UnsupportedVersionError reports a scenario envelope version this library
// does not speak. errors.Is(err, ErrUnsupportedVersion) matches it.
type UnsupportedVersionError struct {
	Version int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("unsupported scenario version %d (this library speaks version 1)", e.Version)
}

// Is matches the ErrUnsupportedVersion sentinel.
func (e *UnsupportedVersionError) Is(target error) bool { return target == ErrUnsupportedVersion }

// InvalidSpecError reports a validation failure at a specific field of a
// request or scenario. Field is a dotted JSON path ("logic[0].area_mm2",
// "usage.app_hours"); packages below the JSON layer use their own field
// names and callers re-root them with Prefix.
type InvalidSpecError struct {
	Field  string
	Reason string
	// Err is the optional underlying cause, exposed via Unwrap.
	Err error
}

func (e *InvalidSpecError) Error() string {
	msg := e.Message()
	if e.Field == "" {
		return fmt.Sprintf("invalid spec: %s", msg)
	}
	return fmt.Sprintf("invalid spec field %s: %s", e.Field, msg)
}

// Message returns the failure description without the field path.
func (e *InvalidSpecError) Message() string {
	if e.Reason != "" {
		return e.Reason
	}
	if e.Err != nil {
		return e.Err.Error()
	}
	return "invalid value"
}

func (e *InvalidSpecError) Unwrap() error { return e.Err }

// Invalid constructs an InvalidSpecError with a formatted reason.
func Invalid(field, format string, args ...any) *InvalidSpecError {
	return &InvalidSpecError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Prefix re-roots err under a field path. If err carries an
// InvalidSpecError the inner path is appended ("logic[0]" + "area_mm2" →
// "logic[0].area_mm2"); any other error becomes an InvalidSpecError at
// prefix wrapping err — use it only where err is known to be the client's
// fault (a failed technology lookup, a bad fab option). Transient
// infrastructure faults and context cancellations keep their class: they
// gain the path as plain context but are never re-labelled as the
// client's mistake.
func Prefix(prefix string, err error) error {
	if err == nil {
		return nil
	}
	if IsTransient(err) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%s: %w", prefix, err)
	}
	var inv *InvalidSpecError
	if errors.As(err, &inv) {
		field := prefix
		if inv.Field != "" {
			field = prefix + "." + inv.Field
		}
		return &InvalidSpecError{Field: field, Reason: inv.Reason, Err: inv.Err}
	}
	return &InvalidSpecError{Field: prefix, Err: err}
}

// IsInvalid reports whether err is a client-fixable spec problem — an
// invalid field, an unknown node, or an unsupported version — rather than
// an internal failure. This is the 400-vs-500 split actd serves. A
// transient infrastructure fault is never the client's fault, so it is
// excluded even when some layer wrapped it in an InvalidSpecError.
func IsInvalid(err error) bool {
	if IsTransient(err) {
		return false
	}
	var inv *InvalidSpecError
	return errors.As(err, &inv) ||
		errors.Is(err, ErrUnknownNode) ||
		errors.Is(err, ErrUnsupportedVersion)
}

// BudgetError reports an exhausted script resource budget: the evaluator
// cut an untrusted program off at a hard limit (step count, allocation
// estimate, wall-clock deadline, call depth). It is deterministic and the
// client's to fix — shrink the program or raise the budget — so actd maps
// it to 400 with the `script_budget` envelope code, never to a retryable
// 5xx. Matched with errors.As / IsBudget.
type BudgetError struct {
	// Resource names the exhausted budget: "steps", "alloc", "deadline"
	// or "depth".
	Resource string
	// Limit is the configured cap in the resource's unit (steps, bytes,
	// nanoseconds, frames). Zero when the unit has no meaningful scalar.
	Limit int64
}

func (e *BudgetError) Error() string {
	if e.Limit > 0 {
		return fmt.Sprintf("script budget exhausted: %s limit %d reached", e.Resource, e.Limit)
	}
	return fmt.Sprintf("script budget exhausted: %s limit reached", e.Resource)
}

// IsBudget reports whether err carries a BudgetError anywhere in its
// chain — the "program hit a hard resource limit" class.
func IsBudget(err error) bool {
	var b *BudgetError
	return errors.As(err, &b)
}

// TransientError marks a failure as transient infrastructure trouble — a
// fault in the worker pool, the footprint cache, or a characterization
// lookup that is expected to succeed if simply tried again. The resilience
// layer retries exactly this class and nothing else; validation errors are
// deterministic and must never be retried.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string {
	if e.Err == nil {
		return "transient fault"
	}
	return "transient: " + e.Err.Error()
}

func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as a TransientError. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err carries a TransientError anywhere in its
// chain — the "safe to retry" class.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}
