package acterr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestInvalidSpecError(t *testing.T) {
	e := Invalid("logic[0].area_mm2", "non-positive die area %v", -1.5)
	if got := e.Error(); !strings.Contains(got, "logic[0].area_mm2") || !strings.Contains(got, "-1.5") {
		t.Errorf("Error() = %q", got)
	}
	if e.Message() != "non-positive die area -1.5" {
		t.Errorf("Message() = %q", e.Message())
	}

	// As sees through fmt.Errorf wrapping.
	wrapped := fmt.Errorf("scenario: %w", e)
	var inv *InvalidSpecError
	if !errors.As(wrapped, &inv) || inv.Field != "logic[0].area_mm2" {
		t.Errorf("As failed on wrapped error: %v", wrapped)
	}
}

func TestInvalidSpecErrorNoField(t *testing.T) {
	e := &InvalidSpecError{Reason: "device has no components"}
	if got := e.Error(); got != "invalid spec: device has no components" {
		t.Errorf("Error() = %q", got)
	}
	if (&InvalidSpecError{}).Message() != "invalid value" {
		t.Error("empty error has no fallback message")
	}
}

func TestPrefix(t *testing.T) {
	inner := Invalid("area_mm2", "non-positive")
	err := Prefix("logic[2]", fmt.Errorf("core: %w", inner))
	var inv *InvalidSpecError
	if !errors.As(err, &inv) {
		t.Fatalf("Prefix lost the typed error: %v", err)
	}
	if inv.Field != "logic[2].area_mm2" {
		t.Errorf("Field = %q, want logic[2].area_mm2", inv.Field)
	}

	// A plain error becomes an InvalidSpecError rooted at the prefix.
	err = Prefix("dram[0].technology", errors.New("memdb: unknown DRAM technology"))
	if !errors.As(err, &inv) || inv.Field != "dram[0].technology" {
		t.Errorf("plain error not re-rooted: %v", err)
	}
	if !strings.Contains(inv.Message(), "unknown DRAM technology") {
		t.Errorf("cause lost: %q", inv.Message())
	}

	if Prefix("x", nil) != nil {
		t.Error("Prefix(nil) != nil")
	}
}

func TestUnsupportedVersionError(t *testing.T) {
	err := fmt.Errorf("scenario: %w", &UnsupportedVersionError{Version: 9})
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Error("Is(ErrUnsupportedVersion) = false")
	}
	var uv *UnsupportedVersionError
	if !errors.As(err, &uv) || uv.Version != 9 {
		t.Errorf("As failed: %v", err)
	}
	if !strings.Contains(err.Error(), "version 9") {
		t.Errorf("Error() = %q", err)
	}
}

func TestIsInvalid(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{Invalid("f", "bad"), true},
		{fmt.Errorf("fab: %w %q", ErrUnknownNode, "99nm"), true},
		{fmt.Errorf("scenario: %w", &UnsupportedVersionError{Version: 2}), true},
		{errors.New("disk on fire"), false},
		{nil, false},
	}
	for i, c := range cases {
		if got := IsInvalid(c.err); got != c.want {
			t.Errorf("case %d: IsInvalid(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestTransient(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	base := errors.New("pool worker fault")
	err := Transient(base)
	if !IsTransient(err) {
		t.Error("IsTransient misses a direct TransientError")
	}
	if !errors.Is(err, base) {
		t.Error("TransientError does not unwrap to its cause")
	}
	wrapped := fmt.Errorf("evaluating scenario: %w", err)
	if !IsTransient(wrapped) {
		t.Error("IsTransient misses a wrapped TransientError")
	}
	if IsTransient(base) {
		t.Error("IsTransient matches an unmarked error")
	}
	if got := err.Error(); !strings.Contains(got, "transient") || !strings.Contains(got, "pool worker fault") {
		t.Errorf("Error() = %q", got)
	}
}

// A transient fault is infrastructure trouble, never the client's mistake:
// it must not classify as invalid, and Prefix must not re-label it.
func TestTransientIsNotInvalid(t *testing.T) {
	err := Transient(errors.New("cache compute fault"))
	if IsInvalid(err) {
		t.Error("IsInvalid claims a transient fault is the client's fault")
	}
	rooted := Prefix("dram[0].technology", err)
	if !IsTransient(rooted) {
		t.Error("Prefix lost the transient class")
	}
	if IsInvalid(rooted) {
		t.Error("Prefix converted a transient fault into a client error")
	}
	if !strings.Contains(rooted.Error(), "dram[0].technology") {
		t.Errorf("Prefix dropped the path context: %q", rooted.Error())
	}
	// Even an InvalidSpecError that wraps a transient cause stays retryable
	// rather than client-blamed.
	mixed := &InvalidSpecError{Field: "x", Err: Transient(errors.New("flaky"))}
	if IsInvalid(mixed) {
		t.Error("IsInvalid ignores a transient cause inside an InvalidSpecError")
	}
}

// TestPrefixPassesContextErrorsThrough pins the chaos-found fix: a
// cancellation-induced item failure re-rooted by Prefix must stay a ctx
// error (504 material), not become an InvalidSpecError (400 material).
func TestPrefixPassesContextErrorsThrough(t *testing.T) {
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		wrapped := Prefix("[3]", fmt.Errorf("item 3: %w", cause))
		if !errors.Is(wrapped, cause) {
			t.Errorf("Prefix lost the %v cause", cause)
		}
		if IsInvalid(wrapped) {
			t.Errorf("Prefix re-labelled %v as a client error", cause)
		}
	}
}
