package acterr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestInvalidSpecError(t *testing.T) {
	e := Invalid("logic[0].area_mm2", "non-positive die area %v", -1.5)
	if got := e.Error(); !strings.Contains(got, "logic[0].area_mm2") || !strings.Contains(got, "-1.5") {
		t.Errorf("Error() = %q", got)
	}
	if e.Message() != "non-positive die area -1.5" {
		t.Errorf("Message() = %q", e.Message())
	}

	// As sees through fmt.Errorf wrapping.
	wrapped := fmt.Errorf("scenario: %w", e)
	var inv *InvalidSpecError
	if !errors.As(wrapped, &inv) || inv.Field != "logic[0].area_mm2" {
		t.Errorf("As failed on wrapped error: %v", wrapped)
	}
}

func TestInvalidSpecErrorNoField(t *testing.T) {
	e := &InvalidSpecError{Reason: "device has no components"}
	if got := e.Error(); got != "invalid spec: device has no components" {
		t.Errorf("Error() = %q", got)
	}
	if (&InvalidSpecError{}).Message() != "invalid value" {
		t.Error("empty error has no fallback message")
	}
}

func TestPrefix(t *testing.T) {
	inner := Invalid("area_mm2", "non-positive")
	err := Prefix("logic[2]", fmt.Errorf("core: %w", inner))
	var inv *InvalidSpecError
	if !errors.As(err, &inv) {
		t.Fatalf("Prefix lost the typed error: %v", err)
	}
	if inv.Field != "logic[2].area_mm2" {
		t.Errorf("Field = %q, want logic[2].area_mm2", inv.Field)
	}

	// A plain error becomes an InvalidSpecError rooted at the prefix.
	err = Prefix("dram[0].technology", errors.New("memdb: unknown DRAM technology"))
	if !errors.As(err, &inv) || inv.Field != "dram[0].technology" {
		t.Errorf("plain error not re-rooted: %v", err)
	}
	if !strings.Contains(inv.Message(), "unknown DRAM technology") {
		t.Errorf("cause lost: %q", inv.Message())
	}

	if Prefix("x", nil) != nil {
		t.Error("Prefix(nil) != nil")
	}
}

func TestUnsupportedVersionError(t *testing.T) {
	err := fmt.Errorf("scenario: %w", &UnsupportedVersionError{Version: 9})
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Error("Is(ErrUnsupportedVersion) = false")
	}
	var uv *UnsupportedVersionError
	if !errors.As(err, &uv) || uv.Version != 9 {
		t.Errorf("As failed: %v", err)
	}
	if !strings.Contains(err.Error(), "version 9") {
		t.Errorf("Error() = %q", err)
	}
}

func TestIsInvalid(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{Invalid("f", "bad"), true},
		{fmt.Errorf("fab: %w %q", ErrUnknownNode, "99nm"), true},
		{fmt.Errorf("scenario: %w", &UnsupportedVersionError{Version: 2}), true},
		{errors.New("disk on fire"), false},
		{nil, false},
	}
	for i, c := range cases {
		if got := IsInvalid(c.err); got != c.want {
			t.Errorf("case %d: IsInvalid(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}
