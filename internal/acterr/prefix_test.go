package acterr

// Table-driven edge cases for Prefix re-rooting. Prefix is the one function
// every layer boundary leans on — scenario re-roots core errors under
// component paths, actd re-roots element errors under batch indices — so
// each composition rule is pinned here: empty inner fields, already-prefixed
// paths, nested batch indices, sentinel preservation, and the transient /
// context classes that must never be re-labelled as the client's fault.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestPrefixReRootingTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		// wantField is the InvalidSpecError field after Prefix.
		wantField string
		// wantMsg must appear in the resulting Message().
		wantMsg string
	}{
		{
			name:      "inner-field-appended",
			err:       Invalid("area_mm2", "non-positive"),
			wantField: "logic[0].area_mm2",
			wantMsg:   "non-positive",
		},
		{
			name: "empty-inner-field-keeps-prefix-only",
			// An inner error with no field roots at the prefix itself, not
			// at "prefix." with a dangling dot.
			err:       Invalid("", "no components"),
			wantField: "logic[0]",
			wantMsg:   "no components",
		},
		{
			name:      "already-prefixed-path-composes",
			err:       Invalid("fab.yield", "outside (0, 1]"),
			wantField: "logic[0].fab.yield",
			wantMsg:   "outside (0, 1]",
		},
		{
			name:      "plain-error-rooted-at-prefix",
			err:       errors.New("memdb: unknown DRAM technology"),
			wantField: "logic[0]",
			wantMsg:   "unknown DRAM technology",
		},
		{
			name:      "wrapped-invalid-found-through-chain",
			err:       fmt.Errorf("evaluating: %w", Invalid("node", "unknown")),
			wantField: "logic[0].node",
			wantMsg:   "unknown",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Prefix("logic[0]", c.err)
			var inv *InvalidSpecError
			if !errors.As(err, &inv) {
				t.Fatalf("Prefix result is not an InvalidSpecError: %v", err)
			}
			if inv.Field != c.wantField {
				t.Errorf("Field = %q, want %q", inv.Field, c.wantField)
			}
			if !strings.Contains(inv.Message(), c.wantMsg) {
				t.Errorf("Message = %q, want it to contain %q", inv.Message(), c.wantMsg)
			}
			if !IsInvalid(err) {
				t.Error("re-rooted error stopped being client-fixable")
			}
		})
	}
}

// TestPrefixNestedBatchIndices: actd prefixes batch elements with "[i]" on
// top of the scenario layer's component paths; the full path must compose
// left to right through arbitrarily deep nesting.
func TestPrefixNestedBatchIndices(t *testing.T) {
	inner := Invalid("technology", "unknown")
	err := Prefix("[1]", Prefix("dram[2]", inner))
	var inv *InvalidSpecError
	if !errors.As(err, &inv) {
		t.Fatalf("nested Prefix lost the type: %v", err)
	}
	if inv.Field != "[1].dram[2].technology" {
		t.Errorf("Field = %q, want [1].dram[2].technology", inv.Field)
	}
	// One more level, as a sweep-of-batches layer would add.
	err = Prefix("sweep[0]", err)
	if !errors.As(err, &inv) || inv.Field != "sweep[0].[1].dram[2].technology" {
		t.Errorf("third level composed to %q", inv.Field)
	}
}

// TestPrefixPreservesSentinels: errors.Is identities survive re-rooting, so
// callers can still switch on ErrUnknownNode / ErrUnsupportedVersion after
// any number of Prefix layers.
func TestPrefixPreservesSentinels(t *testing.T) {
	err := Prefix("logic[0]", fmt.Errorf("fab: %w 1nm", ErrUnknownNode))
	if !errors.Is(err, ErrUnknownNode) {
		t.Error("ErrUnknownNode identity lost through Prefix")
	}
	if !IsInvalid(err) {
		t.Error("unknown node stopped being client-fixable")
	}

	uve := &UnsupportedVersionError{Version: 2}
	err = Prefix("[3]", uve)
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Error("ErrUnsupportedVersion identity lost through Prefix")
	}
	var inv *InvalidSpecError
	if !errors.As(err, &inv) || inv.Field != "[3]" {
		t.Errorf("version error not rooted at the batch index: %v", err)
	}
}

// TestPrefixNeverBlamesInfrastructure: transient faults and context
// cancellations gain the path as message context only — they keep their
// class and must not become 400s.
func TestPrefixNeverBlamesInfrastructure(t *testing.T) {
	cases := []struct {
		name string
		err  error
		is   func(error) bool
	}{
		{"transient", Transient(errors.New("pool sick")), IsTransient},
		{"canceled", context.Canceled, func(e error) bool { return errors.Is(e, context.Canceled) }},
		{"deadline", fmt.Errorf("eval: %w", context.DeadlineExceeded),
			func(e error) bool { return errors.Is(e, context.DeadlineExceeded) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Prefix("[7]", c.err)
			if !c.is(err) {
				t.Fatalf("class lost through Prefix: %v", err)
			}
			if IsInvalid(err) {
				t.Error("infrastructure fault re-labelled as the client's mistake")
			}
			if !strings.Contains(err.Error(), "[7]") {
				t.Errorf("path context missing from %q", err)
			}
		})
	}
}
