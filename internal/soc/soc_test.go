package soc

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/metrics"
)

func TestCatalogShape(t *testing.T) {
	chips := Catalog()
	if len(chips) != 13 {
		t.Fatalf("catalog has %d chips, want 13", len(chips))
	}
	counts := map[string]int{}
	for _, s := range chips {
		counts[s.Family]++
		if s.BaseScore <= 0 || s.TDP <= 0 || s.Die <= 0 || s.DRAMCapacity <= 0 {
			t.Errorf("%s has a non-positive field: %+v", s.Name, s)
		}
		if s.Year < 2014 || s.Year > 2021 {
			t.Errorf("%s has implausible year %d", s.Name, s.Year)
		}
	}
	if counts[FamilyExynos] != 4 || counts[FamilySnapdragon] != 5 || counts[FamilyKirin] != 4 {
		t.Errorf("family counts = %v, want Exynos 4 / Snapdragon 5 / Kirin 4", counts)
	}
}

func TestByNameAndFamily(t *testing.T) {
	s, err := ByName("Snapdragon 845")
	if err != nil || s.Family != FamilySnapdragon {
		t.Errorf("ByName(Snapdragon 845) = %+v, %v", s, err)
	}
	if _, err := ByName("Apple A13"); err == nil {
		t.Error("ByName(unknown): expected error")
	}
	for _, f := range Families() {
		if len(ByFamily(f)) == 0 {
			t.Errorf("ByFamily(%s) empty", f)
		}
	}
	if got := ByFamily("MediaTek"); got != nil {
		t.Errorf("ByFamily(unknown) = %v, want nil", got)
	}
}

func TestNewest(t *testing.T) {
	cases := map[string]string{
		FamilyExynos:     "Exynos 9820",
		FamilySnapdragon: "Snapdragon 865",
		FamilyKirin:      "Kirin 990",
	}
	for fam, want := range cases {
		s, err := Newest(fam)
		if err != nil || s.Name != want {
			t.Errorf("Newest(%s) = %v, %v, want %s", fam, s.Name, err, want)
		}
	}
	if _, err := Newest("MediaTek"); err == nil {
		t.Error("Newest(unknown): expected error")
	}
}

func TestWorkloadScores(t *testing.T) {
	s, _ := ByName("Kirin 980") // NPU chip
	plain, _ := ByName("Snapdragon 835")

	// Geomean equals base score by construction.
	if g := s.GeomeanScore(); math.Abs(g-s.BaseScore) > 1e-6*s.BaseScore {
		t.Errorf("geomean = %v, want base %v", g, s.BaseScore)
	}

	// NPU chips are relatively better at AI than non-NPU chips.
	aiNPU, err := s.WorkloadScore(AIClassify)
	if err != nil {
		t.Fatal(err)
	}
	aiPlain, _ := plain.WorkloadScore(AIClassify)
	if aiNPU/s.BaseScore <= aiPlain/plain.BaseScore {
		t.Errorf("NPU AI ratio %v should exceed non-NPU ratio %v",
			aiNPU/s.BaseScore, aiPlain/plain.BaseScore)
	}

	// All seven workloads have positive scores.
	for _, w := range Workloads() {
		v, err := s.WorkloadScore(w)
		if err != nil || v <= 0 {
			t.Errorf("WorkloadScore(%s) = %v, %v", w, v, err)
		}
	}
	if _, err := s.WorkloadScore("crysis"); err == nil {
		t.Error("WorkloadScore(unknown): expected error")
	}
}

func TestDelayEnergyEfficiency(t *testing.T) {
	s, _ := ByName("Snapdragon 865")
	// Score 3300 -> reference delay 1000/3300 s.
	wantDelay := 1000.0 / 3300
	if got := s.Delay().Seconds(); math.Abs(got-wantDelay) > 1e-6 {
		t.Errorf("Delay = %v s, want %v", got, wantDelay)
	}
	// Energy = TDP * delay.
	wantE := 6.0 * wantDelay
	if got := s.Energy().Joules(); math.Abs(got-wantE) > 1e-6 {
		t.Errorf("Energy = %v J, want %v", got, wantE)
	}
	if got := s.Efficiency(); math.Abs(got-3300.0/6.0) > 1e-9 {
		t.Errorf("Efficiency = %v, want 550", got)
	}
}

func TestEmbodiedPositiveAndOrdered(t *testing.T) {
	for _, s := range Catalog() {
		e, err := s.Embodied()
		if err != nil {
			t.Fatalf("%s Embodied: %v", s.Name, err)
		}
		// Sanity window: mobile SoC+DRAM packages run 1-4 kg CO2.
		if e.Kilograms() < 1 || e.Kilograms() > 4 {
			t.Errorf("%s embodied = %v, outside 1-4 kg plausibility window", s.Name, e)
		}
	}
}

func TestFigure8MetricWinners(t *testing.T) {
	// Section 4.2: "The optimal hardware in terms of EDP, EDAP, embodied
	// carbon, CEP, and C2EP are the Kirin 990, Snapdragon 865, Snapdragon
	// 835, Kirin 980, and Kirin 980, respectively."
	cands, err := Candidates(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	wants := map[metrics.Metric]string{
		metrics.EDP:  "Kirin 990",
		metrics.EDAP: "Snapdragon 865",
		metrics.CEP:  "Kirin 980",
		metrics.C2EP: "Kirin 980",
	}
	for m, want := range wants {
		best, err := metrics.Best(m, cands)
		if err != nil {
			t.Fatalf("Best(%s): %v", m, err)
		}
		if best.Candidate.Name != want {
			t.Errorf("%s optimum = %s, want %s (paper Section 4.2)", m, best.Candidate.Name, want)
		}
	}

	// Embodied-carbon optimum: Snapdragon 835.
	sorted, err := SortedByEmbodied()
	if err != nil {
		t.Fatal(err)
	}
	if sorted[0].Name != "Snapdragon 835" {
		t.Errorf("embodied optimum = %s, want Snapdragon 835 (paper Section 4.2)", sorted[0].Name)
	}
}

func TestMetricWinnersDiffer(t *testing.T) {
	// The headline of Section 4: optimizing for carbon yields different
	// designs than optimizing for energy. EDP and CEP winners must differ.
	cands, err := Candidates(Catalog())
	if err != nil {
		t.Fatal(err)
	}
	edp, _ := metrics.Best(metrics.EDP, cands)
	cep, _ := metrics.Best(metrics.CEP, cands)
	if edp.Candidate.Name == cep.Candidate.Name {
		t.Errorf("EDP and CEP optima coincide (%s); the carbon design space should differ", edp.Candidate.Name)
	}
}

func TestEfficiencyCAGR(t *testing.T) {
	// Figure 14 (left): per-family annual efficiency improvements with a
	// fleet average around 1.21x.
	for _, f := range Families() {
		c, err := EfficiencyCAGR(f)
		if err != nil {
			t.Fatalf("EfficiencyCAGR(%s): %v", f, err)
		}
		if c < 1.05 || c > 1.40 {
			t.Errorf("%s CAGR = %v, outside plausible band [1.05, 1.40]", f, c)
		}
	}
	fleet, err := FleetEfficiencyCAGR()
	if err != nil {
		t.Fatal(err)
	}
	if fleet < 1.15 || fleet > 1.28 {
		t.Errorf("fleet CAGR = %v, want ≈1.21 (within [1.15, 1.28])", fleet)
	}
	if _, err := EfficiencyCAGR("MediaTek"); err == nil {
		t.Error("EfficiencyCAGR(unknown): expected error")
	}
}

func TestNewerChipsFaster(t *testing.T) {
	// Figure 8(a): within each family, newer architectures score higher.
	for _, f := range Families() {
		chips := ByFamily(f)
		for i := 1; i < len(chips); i++ {
			// Catalog is newest-first.
			if chips[i].BaseScore >= chips[i-1].BaseScore {
				t.Errorf("%s: %s (%v) should outscore %s (%v)",
					f, chips[i-1].Name, chips[i-1].BaseScore, chips[i].Name, chips[i].BaseScore)
			}
		}
	}
}

func TestSortedByEmbodiedAscending(t *testing.T) {
	sorted, err := SortedByEmbodied()
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, s := range sorted {
		e, _ := s.Embodied()
		if e.Grams() < prev {
			t.Fatalf("SortedByEmbodied not ascending at %s", s.Name)
		}
		prev = e.Grams()
	}
}

// Property: for every chip, Candidate() mirrors the individual accessors.
func TestQuickCandidateConsistency(t *testing.T) {
	chips := Catalog()
	f := func(idx uint8) bool {
		s := chips[int(idx)%len(chips)]
		c, err := s.Candidate()
		if err != nil {
			return false
		}
		e, err := s.Embodied()
		if err != nil {
			return false
		}
		return c.Name == s.Name &&
			c.Embodied == e &&
			c.Area == s.Die &&
			math.Abs(c.Energy.Joules()-s.Energy().Joules()) < 1e-9 &&
			c.Delay == s.Delay()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
