// Package soc is the mobile SoC catalog behind the paper's commodity
// design-space study (Figure 8) and lifetime study (Figure 14, left): four
// Exynos, five Snapdragon, and four Kirin chips with their process node,
// die area, TDP, DRAM configuration, and Geekbench-5-style workload scores.
//
// The paper measures performance as the geometric mean of seven mobile
// Geekbench 5 workloads averaged over ten in-the-wild devices per chip, and
// takes power from TDP. Those per-device measurements are not public, so
// the catalog carries representative per-chip scores calibrated to
// reproduce the paper's reported outcomes: the EDP, EDAP, embodied-carbon,
// CEP and C2EP optima land on the Kirin 990, Snapdragon 865, Snapdragon
// 835, Kirin 980 and Kirin 980 respectively (Section 4.2), and the fleet's
// annual energy-efficiency improvement averages ≈21% (Section 8). Die
// areas and process nodes follow public teardowns.
package soc

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"act/internal/core"
	"act/internal/fab"
	"act/internal/memdb"
	"act/internal/metrics"
	"act/internal/units"
)

// Workload identifies one of the seven Geekbench 5 mobile workloads the
// paper aggregates (Section 4.2).
type Workload string

// The seven mobile workloads.
const (
	HTML5Render   Workload = "html5-rendering"
	AESEncrypt    Workload = "aes-encryption"
	TextCompress  Workload = "text-compression"
	ImageCompress Workload = "image-compression"
	FaceDetect    Workload = "face-detection"
	SpeechRecog   Workload = "speech-recognition"
	AIClassify    Workload = "ai-image-classification"
)

// Workloads returns the seven workloads in the paper's order.
func Workloads() []Workload {
	return []Workload{HTML5Render, AESEncrypt, TextCompress, ImageCompress,
		FaceDetect, SpeechRecog, AIClassify}
}

// workloadProfile maps per-workload score multipliers relative to a chip's
// base score. Profiles are normalized at init so their geometric mean is
// exactly 1; the per-workload spread is representative (crypto units help
// AES, NPUs help AI and face detection) without perturbing the geomean the
// calibrated outcomes rest on.
var (
	cpuProfile = map[Workload]float64{
		HTML5Render: 0.95, AESEncrypt: 1.30, TextCompress: 1.00,
		ImageCompress: 1.05, FaceDetect: 0.90, SpeechRecog: 0.85,
		AIClassify: 0.80,
	}
	npuProfile = map[Workload]float64{
		HTML5Render: 0.95, AESEncrypt: 1.30, TextCompress: 1.00,
		ImageCompress: 1.05, FaceDetect: 1.10, SpeechRecog: 0.85,
		AIClassify: 1.60,
	}
)

func init() {
	normalize(cpuProfile)
	normalize(npuProfile)
}

// normalize rescales a profile so its geometric mean is 1.
func normalize(p map[Workload]float64) {
	logSum := 0.0
	for _, v := range p {
		logSum += math.Log(v)
	}
	gm := math.Exp(logSum / float64(len(p)))
	for k, v := range p {
		p[k] = v / gm
	}
}

// SoC describes one catalog chip.
type SoC struct {
	Name   string
	Family string
	Year   int
	// NodeNM is the marketing feature size; the embodied model snaps it to
	// the nearest characterized fab node.
	NodeNM float64
	Die    units.Area
	TDP    units.Power
	// DRAMCapacity and DRAMTech describe the paired memory package.
	DRAMCapacity units.Capacity
	DRAMTech     memdb.Technology
	// BaseScore is the geometric-mean Geekbench-5-style score.
	BaseScore float64
	// HasNPU marks chips with dedicated neural acceleration.
	HasNPU bool
}

// SoC families in the catalog.
const (
	FamilyExynos     = "Exynos"
	FamilySnapdragon = "Snapdragon"
	FamilyKirin      = "Kirin"
)

// catalog lists the thirteen chips of Figure 8 in the figure's x-axis
// order (per family, newest first).
var catalog = []SoC{
	{"Exynos 9820", FamilyExynos, 2019, 8, 127, 5.5, 8, memdb.LPDDR4, 2200, true},
	{"Exynos 9810", FamilyExynos, 2018, 10, 118, 5.9, 6, memdb.LPDDR4, 2000, false},
	{"Exynos 8895", FamilyExynos, 2017, 10, 88, 5.2, 4, memdb.LPDDR4, 1600, false},
	{"Exynos 7420", FamilyExynos, 2015, 14, 78, 5.0, 3, memdb.LPDDR3_20nm, 1200, false},
	{"Snapdragon 865", FamilySnapdragon, 2020, 7, 83.5, 6.0, 8, memdb.LPDDR4, 3300, true},
	{"Snapdragon 855", FamilySnapdragon, 2019, 7, 73, 5.0, 6, memdb.LPDDR4, 2700, true},
	{"Snapdragon 845", FamilySnapdragon, 2018, 10, 94, 4.9, 6, memdb.LPDDR4, 2400, false},
	{"Snapdragon 835", FamilySnapdragon, 2017, 10, 72.3, 4.5, 4, memdb.LPDDR4, 1700, false},
	{"Snapdragon 820", FamilySnapdragon, 2016, 14, 113.7, 5.6, 4, memdb.LPDDR3_20nm, 1300, false},
	{"Kirin 990", FamilyKirin, 2019, 7, 90, 5.2, 8, memdb.LPDDR4, 3100, true},
	{"Kirin 980", FamilyKirin, 2018, 7, 74.13, 4.6, 6, memdb.LPDDR4, 2600, true},
	{"Kirin 970", FamilyKirin, 2017, 10, 96.72, 5.6, 6, memdb.LPDDR4, 1800, true},
	{"Kirin 960", FamilyKirin, 2016, 16, 117.66, 5.0, 4, memdb.LPDDR3_20nm, 1600, false},
}

// Catalog returns all chips in Figure 8 order.
func Catalog() []SoC {
	out := make([]SoC, len(catalog))
	copy(out, catalog)
	return out
}

// Families returns the three chip families in Figure 8 order.
func Families() []string {
	return []string{FamilyExynos, FamilySnapdragon, FamilyKirin}
}

// ByFamily returns the catalog chips of one family, newest first.
func ByFamily(family string) []SoC {
	var out []SoC
	for _, s := range catalog {
		if s.Family == family {
			out = append(out, s)
		}
	}
	return out
}

// ByName looks a chip up by its catalog name.
func ByName(name string) (SoC, error) {
	for _, s := range catalog {
		if s.Name == name {
			return s, nil
		}
	}
	return SoC{}, fmt.Errorf("soc: unknown SoC %q", name)
}

// Newest returns the newest chip of a family, the normalization baseline of
// Figure 8(d).
func Newest(family string) (SoC, error) {
	chips := ByFamily(family)
	if len(chips) == 0 {
		return SoC{}, fmt.Errorf("soc: unknown family %q", family)
	}
	best := chips[0]
	for _, s := range chips[1:] {
		if s.Year > best.Year {
			best = s
		}
	}
	return best, nil
}

// WorkloadScore returns the chip's score on one workload.
func (s SoC) WorkloadScore(w Workload) (float64, error) {
	profile := cpuProfile
	if s.HasNPU {
		profile = npuProfile
	}
	m, ok := profile[w]
	if !ok {
		return 0, fmt.Errorf("soc: unknown workload %q", w)
	}
	return s.BaseScore * m, nil
}

// GeomeanScore returns the geometric mean across the seven workloads; by
// construction it equals BaseScore.
func (s SoC) GeomeanScore() float64 {
	logSum := 0.0
	for _, w := range Workloads() {
		score, _ := s.WorkloadScore(w)
		logSum += math.Log(score)
	}
	return math.Exp(logSum / float64(len(Workloads())))
}

// referenceWork is the amount of benchmark work, in score-seconds, that
// defines the catalog's reference delay: a chip scoring 1000 completes the
// suite in 1 s. Only relative comparisons are meaningful.
const referenceWork = 1000

// Delay returns the reference-suite execution time.
func (s SoC) Delay() time.Duration {
	return time.Duration(referenceWork / s.BaseScore * float64(time.Second))
}

// Energy returns the energy of one reference-suite run at TDP.
func (s SoC) Energy() units.Energy {
	return s.TDP.Over(s.Delay())
}

// Efficiency returns benchmark work per joule (score-units per watt), the
// quantity whose annual improvement Figure 14 (left) reports.
func (s SoC) Efficiency() float64 {
	return s.BaseScore / s.TDP.Watts()
}

// Device builds the chip's bill of materials — the SoC die plus its DRAM
// package — using the default fab for its node class.
func (s SoC) Device() (*core.Device, error) {
	node, err := fab.Resolve(s.NodeNM)
	if err != nil {
		return nil, fmt.Errorf("soc: %s: %w", s.Name, err)
	}
	f, err := fab.New(node.Node)
	if err != nil {
		return nil, err
	}
	d, err := core.NewDevice(s.Name)
	if err != nil {
		return nil, err
	}
	die, err := core.NewLogic(s.Name+" die", s.Die, f, 1)
	if err != nil {
		return nil, err
	}
	ram, err := core.NewDRAM("DRAM", s.DRAMTech, s.DRAMCapacity)
	if err != nil {
		return nil, err
	}
	d.AddLogic(die).AddDRAM(ram)
	return d, nil
}

// embodiedCache memoizes per-chip embodied footprints. The computation is
// pure (it depends only on the SoC's comparable fields and the constant
// default fab parameters), so one footprint per distinct chip serves every
// sweep, ranking, and experiment — concurrently: sync.Map makes the cache
// safe under the parallel sweep engine.
var embodiedCache sync.Map // SoC -> units.CO2Mass

// Embodied returns the chip's embodied footprint: die, DRAM, and packaging
// for both ICs. The result is memoized per chip, so catalog-wide sweeps
// build each bill of materials once rather than per evaluation.
func (s SoC) Embodied() (units.CO2Mass, error) {
	if v, ok := embodiedCache.Load(s); ok {
		return v.(units.CO2Mass), nil
	}
	d, err := s.Device()
	if err != nil {
		return 0, err
	}
	b, err := core.Embodied(d)
	if err != nil {
		return 0, err
	}
	total := b.Total()
	embodiedCache.Store(s, total)
	return total, nil
}

// Candidate converts the chip into a metrics candidate over the reference
// suite.
func (s SoC) Candidate() (metrics.Candidate, error) {
	e, err := s.Embodied()
	if err != nil {
		return metrics.Candidate{}, err
	}
	return metrics.Candidate{
		Name:     s.Name,
		Embodied: e,
		Energy:   s.Energy(),
		Delay:    s.Delay(),
		Area:     s.Die,
	}, nil
}

// Candidates converts a chip list into metrics candidates, preserving order.
func Candidates(chips []SoC) ([]metrics.Candidate, error) {
	out := make([]metrics.Candidate, len(chips))
	for i, s := range chips {
		c, err := s.Candidate()
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// EfficiencyCAGR fits a log-linear regression of energy efficiency against
// release year for one family and returns the implied annual improvement
// factor (e.g. 1.21 for +21%/year).
func EfficiencyCAGR(family string) (float64, error) {
	chips := ByFamily(family)
	if len(chips) < 2 {
		return 0, fmt.Errorf("soc: family %q has %d chips; need at least 2 for a trend", family, len(chips))
	}
	// Least squares on (year, ln efficiency).
	var sx, sy, sxx, sxy float64
	for _, s := range chips {
		x := float64(s.Year)
		y := math.Log(s.Efficiency())
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(chips))
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, fmt.Errorf("soc: family %q has no year spread", family)
	}
	slope := (n*sxy - sx*sy) / denom
	return math.Exp(slope), nil
}

// FleetEfficiencyCAGR returns the geometric mean of the per-family annual
// efficiency improvements — the ≈1.21x of Figure 14 (left).
func FleetEfficiencyCAGR() (float64, error) {
	fams := Families()
	logSum := 0.0
	for _, f := range fams {
		c, err := EfficiencyCAGR(f)
		if err != nil {
			return 0, err
		}
		logSum += math.Log(c)
	}
	return math.Exp(logSum / float64(len(fams))), nil
}

// SortedByEmbodied returns the catalog sorted by ascending embodied
// footprint (the Figure 8(c) ordering read off the bars).
func SortedByEmbodied() ([]SoC, error) {
	chips := Catalog()
	embodied := make(map[string]float64, len(chips))
	for _, s := range chips {
		e, err := s.Embodied()
		if err != nil {
			return nil, err
		}
		embodied[s.Name] = e.Grams()
	}
	sort.SliceStable(chips, func(i, j int) bool {
		return embodied[chips[i].Name] < embodied[chips[j].Name]
	})
	return chips, nil
}
