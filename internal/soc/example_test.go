package soc_test

import (
	"fmt"

	"act/internal/metrics"
	"act/internal/soc"
)

// ExampleCandidates reproduces the Figure 8(d) headline: the optimal chip
// depends on the optimization metric.
func ExampleCandidates() {
	cands, err := soc.Candidates(soc.Catalog())
	if err != nil {
		panic(err)
	}
	for _, m := range []metrics.Metric{metrics.EDP, metrics.EDAP, metrics.CEP, metrics.C2EP} {
		best, err := metrics.Best(m, cands)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %s\n", m, best.Candidate.Name)
	}
	// Output:
	// EDP: Kirin 990
	// EDAP: Snapdragon 865
	// CEP: Kirin 980
	// C2EP: Kirin 980
}

// ExampleFleetEfficiencyCAGR measures the annual energy-efficiency trend
// Figure 14 (left) reports.
func ExampleFleetEfficiencyCAGR() {
	c, err := soc.FleetEfficiencyCAGR()
	if err != nil {
		panic(err)
	}
	fmt.Printf("fleet efficiency improves %.2fx per year\n", c)
	// Output:
	// fleet efficiency improves 1.21x per year
}
