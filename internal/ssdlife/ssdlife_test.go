package ssdlife

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWriteAmplification(t *testing.T) {
	cases := []struct {
		pf, want float64
	}{
		{0.04, 13},
		{0.16, 3.625},
		{0.34, 1.9705882352941178},
		{0.5, 1.5},
		{1.0, 1.0},
	}
	for _, c := range cases {
		wa, err := WriteAmplification(c.pf)
		if err != nil {
			t.Fatalf("WriteAmplification(%v): %v", c.pf, err)
		}
		if math.Abs(wa-c.want) > 1e-9 {
			t.Errorf("WA(%v) = %v, want %v", c.pf, wa, c.want)
		}
	}
	for _, bad := range []float64{0, -0.1} {
		if _, err := WriteAmplification(bad); err == nil {
			t.Errorf("WA(%v): expected error", bad)
		}
	}
}

func TestQuickWAMonotoneDecreasing(t *testing.T) {
	// Figure 15 (top, black): WA falls as over-provisioning grows.
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%100)/100 + 0.01
		b := float64(bRaw%100)/100 + 0.01
		if a > b {
			a, b = b, a
		}
		wa, err1 := WriteAmplification(a)
		wb, err2 := WriteAmplification(b)
		return err1 == nil && err2 == nil && wa >= wb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLifetimeCalibration(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		pf, wantYears, tol float64
	}{
		{0.04, 0.5, 0.02},  // baseline drives fail fast
		{0.16, 2.0, 0.05},  // first mobile life
		{0.34, 4.26, 0.05}, // second life
	}
	for _, c := range cases {
		l, err := Lifetime(p, c.pf)
		if err != nil {
			t.Fatalf("Lifetime(%v): %v", c.pf, err)
		}
		if math.Abs(l-c.wantYears) > c.tol {
			t.Errorf("Lifetime(%v) = %v years, want ≈%v", c.pf, l, c.wantYears)
		}
	}
	if _, err := Lifetime(Params{}, 0.1); err == nil {
		t.Error("invalid params: expected error")
	}
	if _, err := Lifetime(p, 0); err == nil {
		t.Error("zero PF: expected error")
	}
}

func TestQuickLifetimeMonotoneInPF(t *testing.T) {
	// Figure 15 (top, red): lifetime grows with over-provisioning.
	p := DefaultParams()
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%100)/100 + 0.01
		b := float64(bRaw%100)/100 + 0.01
		if a > b {
			a, b = b, a
		}
		la, err1 := Lifetime(p, a)
		lb, err2 := Lifetime(p, b)
		return err1 == nil && err2 == nil && la <= lb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmbodiedGrowsWithPF(t *testing.T) {
	d := DefaultDrive()
	e4, err := d.Embodied(0.04)
	if err != nil {
		t.Fatal(err)
	}
	e34, err := d.Embodied(0.34)
	if err != nil {
		t.Fatal(err)
	}
	if e34 <= e4 {
		t.Errorf("embodied should grow with PF: %v vs %v", e4, e34)
	}
	// 128 GB of V3 TLC at 6.3 g/GB, +4% spare: 838.7 g.
	if math.Abs(e4.Grams()-128*1.04*6.3) > 1e-9 {
		t.Errorf("embodied(4%%) = %v", e4)
	}
	if _, err := d.Embodied(-0.1); err == nil {
		t.Error("negative PF: expected error")
	}
}

func TestDefaultGrid(t *testing.T) {
	grid := DefaultGrid()
	if len(grid) == 0 || grid[0] != 0.04 {
		t.Fatalf("grid starts at %v, want 0.04", grid)
	}
	if grid[len(grid)-1] != 0.49 {
		t.Errorf("grid ends at %v, want 0.49", grid[len(grid)-1])
	}
	for i := 1; i < len(grid); i++ {
		if math.Abs(grid[i]-grid[i-1]-0.03) > 1e-9 {
			t.Errorf("grid step at %d = %v, want 0.03", i, grid[i]-grid[i-1])
		}
	}
	// 0.16 and 0.34, the paper's two optima, are on the grid.
	found16, found34 := false, false
	for _, pf := range grid {
		if pf == 0.16 {
			found16 = true
		}
		if pf == 0.34 {
			found34 = true
		}
	}
	if !found16 || !found34 {
		t.Errorf("grid %v missing 0.16 or 0.34", grid)
	}
}

func TestFigure15Optima(t *testing.T) {
	// Figure 15 (bottom): "for a single mobile lifetime of about 2 years,
	// the optimal over-provisioning factor is 16%; ... extending hardware
	// lifetime to a second life ... requires increasing the
	// over-provisioning factor to 34%."
	d := DefaultDrive()
	grid := DefaultGrid()

	first, err := d.Optimal(grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	if first.PF != 0.16 {
		t.Errorf("first-life optimal PF = %v, want 0.16", first.PF)
	}
	if first.Replacements != 1 {
		t.Errorf("first-life optimum needs %d drives, want 1", first.Replacements)
	}

	second, err := d.Optimal(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if second.PF != 0.34 {
		t.Errorf("second-life optimal PF = %v, want 0.34", second.PF)
	}

	// "Extending hardware lifetime to a second life reduces the embodied
	// footprint by 1.8x" — per year of service.
	perYearFirst := first.EffectiveEmbodied.Grams() / 2
	perYearSecond := second.EffectiveEmbodied.Grams() / 4
	ratio := perYearFirst / perYearSecond
	if ratio < 1.6 || ratio > 2.0 {
		t.Errorf("second-life per-year embodied reduction = %vx, want ≈1.8x", ratio)
	}
}

func TestUnderProvisionedNeedsReplacements(t *testing.T) {
	// The 4% baseline drive only lasts ~6 months; a 2-year mission
	// consumes four of them.
	d := DefaultDrive()
	pt, err := d.Evaluate(0.04, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Replacements != 4 {
		t.Errorf("4%% drive over 2 years needs %d replacements, want 4", pt.Replacements)
	}
	if pt.EffectiveEmbodied.Grams() <= pt.Embodied.Grams() {
		t.Error("effective embodied should exceed single-drive embodied")
	}
}

func TestEvaluateAndSweepValidation(t *testing.T) {
	d := DefaultDrive()
	if _, err := d.Evaluate(0.1, 0); err == nil {
		t.Error("zero mission: expected error")
	}
	if _, err := d.Evaluate(0, 2); err == nil {
		t.Error("zero PF: expected error")
	}
	if _, err := d.Sweep(nil, 2); err == nil {
		t.Error("empty grid: expected error")
	}
	pts, err := d.Sweep(DefaultGrid(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(DefaultGrid()) {
		t.Errorf("sweep dropped points: %d vs %d", len(pts), len(DefaultGrid()))
	}
}
