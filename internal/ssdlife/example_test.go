package ssdlife_test

import (
	"fmt"

	"act/internal/ssdlife"
)

// ExampleDrive_Optimal reproduces the paper's Figure 15 optima: 16%
// over-provisioning for a 2-year first life, 34% for a 4-year second life.
func ExampleDrive_Optimal() {
	d := ssdlife.DefaultDrive()
	grid := ssdlife.DefaultGrid()

	first, err := d.Optimal(grid, 2)
	if err != nil {
		panic(err)
	}
	second, err := d.Optimal(grid, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first life: %.0f%% OP, %.2f-year drive\n", first.PF*100, first.LifetimeYears)
	fmt.Printf("second life: %.0f%% OP, %.2f-year drive\n", second.PF*100, second.LifetimeYears)
	// Output:
	// first life: 16% OP, 2.00-year drive
	// second life: 34% OP, 4.26-year drive
}

// ExampleWriteAmplification shows the greedy-GC approximation the model
// uses.
func ExampleWriteAmplification() {
	for _, pf := range []float64{0.04, 0.16, 0.34} {
		wa, err := ssdlife.WriteAmplification(pf)
		if err != nil {
			panic(err)
		}
		fmt.Printf("OP %.0f%%: WA %.2f\n", pf*100, wa)
	}
	// Output:
	// OP 4%: WA 13.00
	// OP 16%: WA 3.62
	// OP 34%: WA 1.97
}
