// Package ssdlife models SSD reliability and lifetime for the paper's
// Recycle case study (Section 8, Figure 15). Following Meza et al.'s
// field-failure model, drive lifetime is
//
//	Lifetime (years) = PEC·(1+PF) / (365·DWPD·WA·Rcompress)
//
// where PEC is the rated program-erase cycle count, PF the
// over-provisioning factor, DWPD full physical disk writes per day, WA the
// write-amplification factor and Rcompress the storage compression rate.
// Write amplification itself falls with over-provisioning; the package uses
// the standard greedy garbage-collection approximation
//
//	WA(PF) = (1 + PF) / (2·PF)
//
// so extra spare area extends lifetime, at the cost of manufacturing extra
// flash capacity — the trade-off Figure 15 sweeps.
package ssdlife

import (
	"fmt"
	"math"

	"act/internal/storagedb"
	"act/internal/units"
)

// Params are the fixed reliability constants of the lifetime equation.
// The paper fixes PEC, DWPD and Rcompress from prior work [Meza et al.].
type Params struct {
	// PEC is the rated program-erase cycle count of the flash.
	PEC float64
	// DWPD is the number of full physical disk writes per day.
	DWPD float64
	// CompressRatio is Rcompress, the storage compression rate.
	CompressRatio float64
}

// DefaultParams reproduce the paper's operating point: a 4% over-
// provisioned drive survives ≈6 months, 16% reaches the ≈2-year single
// mobile lifetime, and 34% reaches the ≈4-year second-life target.
func DefaultParams() Params {
	return Params{PEC: 3000, DWPD: 1.05, CompressRatio: 1.25}
}

// Validate checks the constants are usable.
func (p Params) Validate() error {
	if p.PEC <= 0 || p.DWPD <= 0 || p.CompressRatio <= 0 {
		return fmt.Errorf("ssdlife: non-positive parameter in %+v", p)
	}
	return nil
}

// WriteAmplification returns WA(PF) under the greedy garbage-collection
// approximation. PF must be strictly positive (a drive with zero spare
// area cannot garbage-collect).
func WriteAmplification(pf float64) (float64, error) {
	if pf <= 0 {
		return 0, fmt.Errorf("ssdlife: non-positive over-provisioning factor %v", pf)
	}
	return (1 + pf) / (2 * pf), nil
}

// Lifetime returns the drive lifetime in years at over-provisioning pf.
func Lifetime(p Params, pf float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	wa, err := WriteAmplification(pf)
	if err != nil {
		return 0, err
	}
	return p.PEC * (1 + pf) / (365 * p.DWPD * wa * p.CompressRatio), nil
}

// Drive describes the SSD under study.
type Drive struct {
	// UserCapacity is the capacity exposed to the host; the manufactured
	// capacity is UserCapacity·(1+PF).
	UserCapacity units.Capacity
	// Tech selects the flash technology's carbon-per-GB.
	Tech storagedb.Technology
	// Params are the reliability constants.
	Params Params
}

// DefaultDrive is the reference drive of the Figure 15 study: a 128 GB
// mobile flash package in modern 3D TLC.
func DefaultDrive() Drive {
	return Drive{
		UserCapacity: units.Gigabytes(128),
		Tech:         storagedb.NANDV3TLC,
		Params:       DefaultParams(),
	}
}

// Embodied returns the embodied carbon of manufacturing the drive at
// over-provisioning pf (user capacity plus spare area).
func (d Drive) Embodied(pf float64) (units.CO2Mass, error) {
	if pf < 0 {
		return 0, fmt.Errorf("ssdlife: negative over-provisioning %v", pf)
	}
	manufactured := units.Capacity(d.UserCapacity.Gigabytes() * (1 + pf))
	return storagedb.Embodied(d.Tech, manufactured)
}

// Point is one sample of the Figure 15 sweep.
type Point struct {
	PF float64
	// WA is the write-amplification factor (Figure 15 top, black).
	WA float64
	// LifetimeYears is the drive lifetime (Figure 15 top, red).
	LifetimeYears float64
	// Embodied is the manufactured embodied carbon.
	Embodied units.CO2Mass
	// Replacements is how many drives the mission consumes.
	Replacements int
	// EffectiveEmbodied is Replacements × Embodied: the embodied carbon of
	// keeping the mission stored for its whole duration.
	EffectiveEmbodied units.CO2Mass
}

// Evaluate computes one sweep point for a storage mission of the given
// duration in years: the drive is replaced whenever its reliability
// lifetime expires.
func (d Drive) Evaluate(pf, missionYears float64) (Point, error) {
	if missionYears <= 0 {
		return Point{}, fmt.Errorf("ssdlife: non-positive mission %v years", missionYears)
	}
	wa, err := WriteAmplification(pf)
	if err != nil {
		return Point{}, err
	}
	life, err := Lifetime(d.Params, pf)
	if err != nil {
		return Point{}, err
	}
	embodied, err := d.Embodied(pf)
	if err != nil {
		return Point{}, err
	}
	repl := int(math.Ceil(missionYears / life))
	return Point{
		PF:                pf,
		WA:                wa,
		LifetimeYears:     life,
		Embodied:          embodied,
		Replacements:      repl,
		EffectiveEmbodied: units.Grams(embodied.Grams() * float64(repl)),
	}, nil
}

// Sweep evaluates a grid of over-provisioning factors for a mission. The
// paper's sweep runs 4% to 49% in 3% steps.
func (d Drive) Sweep(pfs []float64, missionYears float64) ([]Point, error) {
	if len(pfs) == 0 {
		return nil, fmt.Errorf("ssdlife: empty over-provisioning grid")
	}
	out := make([]Point, 0, len(pfs))
	for _, pf := range pfs {
		pt, err := d.Evaluate(pf, missionYears)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// DefaultGrid returns the paper's over-provisioning sweep: 4% to 49% in 3%
// steps (4%, 7%, ..., 49%).
func DefaultGrid() []float64 {
	var out []float64
	for pf := 0.04; pf < 0.50; pf += 0.03 {
		out = append(out, math.Round(pf*100)/100)
	}
	return out
}

// Optimal returns the sweep point minimizing effective embodied carbon for
// the mission; ties resolve to the smaller over-provisioning factor.
func (d Drive) Optimal(pfs []float64, missionYears float64) (Point, error) {
	pts, err := d.Sweep(pfs, missionYears)
	if err != nil {
		return Point{}, err
	}
	best := pts[0]
	for _, pt := range pts[1:] {
		if pt.EffectiveEmbodied < best.EffectiveEmbodied {
			best = pt
		}
	}
	return best, nil
}
