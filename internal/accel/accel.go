// Package accel is an analytical model of an NVDLA-style neural processing
// unit, the subject of the paper's Reduce case study (Section 7, Figures
// 12-13). A design point is a MAC-array size (64-2048 MACs in powers of
// two, following the paper's sweep) in a 16 nm or 28 nm process.
//
// The model has three parts:
//
//   - Area: overhead + per-MAC array area, per process node. With the fab
//     model's carbon-per-area this yields embodied carbon.
//   - Performance: throughput scales with MAC count, derated by a
//     utilization roll-off (wider arrays are harder to keep busy):
//     FPS(m) = m / (k·(1 + m/cUtil)).
//   - Energy per frame: a U-shaped curve E(m) = e·(A + B/m + m). The B/m
//     term models static energy and DRAM traffic dominating small arrays
//     (longer frames, less on-chip reuse); the linear term models array
//     leakage and clocking dominating wide, underutilized arrays.
//
// Constants are calibrated against the paper's reported outcomes rather
// than RTL synthesis (which is not public): the carbon-optimal 30-FPS
// design is 256 MACs at ≈14-16 g CO2; the performance- and energy-optimal
// designs incur ≈3.3x and ≈1.3-1.4x higher embodied carbon; the Figure 12
// metric optima land at 2048 (perf, EDP), 1024 (CDP), 512 (CE2P), 256
// (CEP) and 128 (C2EP) MACs; and the fixed-area-budget comparison of
// Figure 13 (right) shows 16 nm designs carrying ≈33% (1 mm²) and ≈28%
// (2 mm²) more embodied carbon than 28 nm ones — the Jevons effect.
package accel

import (
	"context"
	"fmt"
	"sync"
	"time"

	"act/internal/fab"
	"act/internal/metrics"
	"act/internal/parsweep"
	"act/internal/units"
)

// Process identifies a supported accelerator process node.
type Process string

// Supported processes. The paper studies a 16 nm NVDLA and compares
// against 28 nm; 16 nm resolves to the characterized 14 nm fab class.
const (
	Process16nm Process = "16nm"
	Process28nm Process = "28nm"
)

// Processes returns the supported processes.
func Processes() []Process { return []Process{Process16nm, Process28nm} }

// areaParams hold the per-node linear area model in mm².
type areaParams struct {
	base   float64 // fixed overhead: buffers, sequencer, interfaces
	perMAC float64 // incremental array area per MAC
}

var areaTable = map[Process]areaParams{
	Process16nm: {base: 0.667, perMAC: 0.00127},
	Process28nm: {base: 0.554, perMAC: 0.002367},
}

// perfParams hold the per-node performance/energy scaling.
type perfParams struct {
	freqScale   float64 // relative clock vs the 16 nm design
	energyScale float64 // relative energy per frame vs 16 nm
}

var perfTable = map[Process]perfParams{
	Process16nm: {freqScale: 1.0, energyScale: 1.0},
	Process28nm: {freqScale: 0.7, energyScale: 1.7},
}

// Performance and energy calibration constants (16 nm reference).
const (
	// delayK and cUtil set FPS(m) = m / (delayK·(1+m/cUtil)); calibrated
	// so the 256-MAC design delivers ≈33 FPS.
	delayK = 7.127
	cUtil  = 2896
	// Energy per frame E(m) = energyUnit·(energyA + energyB/m + m) joules.
	energyA    = 1800
	energyB    = 400000
	energyUnit = 1.617e-6
)

// MAC sweep bounds. The paper sweeps 64-2048 in powers of two; the model
// accepts any count in [MinMACs, MaxMACs].
const (
	MinMACs = 16
	MaxMACs = 8192
)

// Model evaluates designs against configurable fabs (one per process).
// The zero Model is not usable; construct with NewModel. A Model is safe
// for concurrent use: the fab map is read-only after construction, and the
// candidate cache is a sync.Map.
type Model struct {
	fabs map[Process]*fab.Fab
	// cands memoizes fully evaluated candidates per design point. A design
	// is pure given its (MACs, Process) key and the model's fabs, so a 10k-
	// point exploration computes each distinct point once across all
	// goroutines.
	cands sync.Map // designKey -> metrics.Candidate
}

// designKey identifies a design point within one Model's cache.
type designKey struct {
	macs int
	p    Process
}

// NewModel builds a model with the paper's default fab for each process
// (Taiwan grid + 25% renewable, 95% abatement, yield 0.875).
func NewModel() (*Model, error) {
	f16, err := fab.New(fab.Node14)
	if err != nil {
		return nil, err
	}
	f28, err := fab.New(fab.Node28)
	if err != nil {
		return nil, err
	}
	return &Model{fabs: map[Process]*fab.Fab{
		Process16nm: f16,
		Process28nm: f28,
	}}, nil
}

// NewModelWithFabs builds a model with explicit fabs, for scenario studies
// that vary CIfab, abatement, or yield.
func NewModelWithFabs(f16, f28 *fab.Fab) (*Model, error) {
	if f16 == nil || f28 == nil {
		return nil, fmt.Errorf("accel: nil fab")
	}
	return &Model{fabs: map[Process]*fab.Fab{
		Process16nm: f16,
		Process28nm: f28,
	}}, nil
}

// Design is one evaluated accelerator configuration.
type Design struct {
	MACs    int
	Process Process
	model   *Model
}

// Design validates and binds a configuration to the model.
func (m *Model) Design(macs int, p Process) (Design, error) {
	if _, ok := areaTable[p]; !ok {
		return Design{}, fmt.Errorf("accel: unknown process %q", p)
	}
	if macs < MinMACs || macs > MaxMACs {
		return Design{}, fmt.Errorf("accel: MAC count %d outside [%d, %d]", macs, MinMACs, MaxMACs)
	}
	return Design{MACs: macs, Process: p, model: m}, nil
}

// Sweep returns the paper's design sweep: 64-2048 MACs in powers of two.
func (m *Model) Sweep(p Process) ([]Design, error) {
	var out []Design
	for macs := 64; macs <= 2048; macs *= 2 {
		d, err := m.Design(macs, p)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// SweepAll returns the paper's design sweep crossed with every supported
// process — MAC counts × process nodes, processes in Processes() order —
// the fan-out unit of the parallel exploration drivers.
func (m *Model) SweepAll() ([]Design, error) {
	var out []Design
	for _, p := range Processes() {
		sweep, err := m.Sweep(p)
		if err != nil {
			return nil, err
		}
		out = append(out, sweep...)
	}
	return out, nil
}

// SweepRange returns designs for every MAC count in [lo, hi] with the given
// stride, for one process — the dense exploration grid the parallel engine
// is sized for (the paper's powers-of-two sweep is the sparse special
// case).
func (m *Model) SweepRange(p Process, lo, hi, step int) ([]Design, error) {
	if step <= 0 {
		return nil, fmt.Errorf("accel: non-positive sweep step %d", step)
	}
	if lo > hi {
		return nil, fmt.Errorf("accel: inverted sweep range [%d, %d]", lo, hi)
	}
	var out []Design
	for macs := lo; macs <= hi; macs += step {
		d, err := m.Design(macs, p)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Name labels the design.
func (d Design) Name() string {
	return fmt.Sprintf("nvdla-%dmac-%s", d.MACs, d.Process)
}

// Area returns the die area of the design.
func (d Design) Area() units.Area {
	ap := areaTable[d.Process]
	return units.MM2(ap.base + ap.perMAC*float64(d.MACs))
}

// Embodied returns the embodied carbon of manufacturing the accelerator
// die (packaging excluded: the NPU ships inside a host SoC package).
func (d Design) Embodied() (units.CO2Mass, error) {
	return d.model.fabs[d.Process].Embodied(d.Area())
}

// FPS returns the design's inference throughput on the reference image-
// processing workload.
func (d Design) FPS() float64 {
	m := float64(d.MACs)
	return m / (delayK * (1 + m/cUtil)) * perfTable[d.Process].freqScale
}

// Delay returns the per-frame latency.
func (d Design) Delay() time.Duration {
	return time.Duration(float64(time.Second) / d.FPS())
}

// EnergyPerFrame returns the energy of one inference.
func (d Design) EnergyPerFrame() units.Energy {
	m := float64(d.MACs)
	e := energyUnit * (energyA + energyB/m + m)
	return units.Joules(e * perfTable[d.Process].energyScale)
}

// AvgPower returns the implied average power at full throughput.
func (d Design) AvgPower() units.Power {
	return units.Watts(d.EnergyPerFrame().Joules() * d.FPS())
}

// Candidate converts the design into a metrics candidate over one frame.
// The result is memoized in the owning Model, so repeated evaluations of
// the same design point (Pareto scans, metric rankings, QoS searches) hit
// the cache.
func (d Design) Candidate() (metrics.Candidate, error) {
	key := designKey{d.MACs, d.Process}
	if v, ok := d.model.cands.Load(key); ok {
		return v.(metrics.Candidate), nil
	}
	e, err := d.Embodied()
	if err != nil {
		return metrics.Candidate{}, err
	}
	c := metrics.Candidate{
		Name:     d.Name(),
		Embodied: e,
		Energy:   d.EnergyPerFrame(),
		Delay:    d.Delay(),
		Area:     d.Area(),
	}
	d.model.cands.Store(key, c)
	return c, nil
}

// Candidates converts a sweep into metrics candidates.
func Candidates(designs []Design) ([]metrics.Candidate, error) {
	out := make([]metrics.Candidate, len(designs))
	for i, d := range designs {
		c, err := d.Candidate()
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// CandidatesParallel converts designs into metrics candidates across a
// bounded worker pool. The output is identical to Candidates — same values,
// same input-preserving order — for any worker count; workers ≤ 0 selects
// GOMAXPROCS.
func CandidatesParallel(ctx context.Context, workers int, designs []Design) ([]metrics.Candidate, error) {
	return parsweep.MapErr(ctx, workers, designs, func(_ context.Context, _ int, d Design) (metrics.Candidate, error) {
		return d.Candidate()
	})
}

// QoSOptimal returns the sweep design with minimum embodied carbon that
// still meets the FPS target — the paper's "leaner systems under QoS"
// optimization (Figure 13, left).
func (m *Model) QoSOptimal(p Process, minFPS float64) (Design, error) {
	if minFPS <= 0 {
		return Design{}, fmt.Errorf("accel: non-positive QoS target %v", minFPS)
	}
	sweep, err := m.Sweep(p)
	if err != nil {
		return Design{}, err
	}
	best := Design{}
	bestEmbodied := -1.0
	for _, d := range sweep {
		if d.FPS() < minFPS {
			continue
		}
		e, err := d.Embodied()
		if err != nil {
			return Design{}, err
		}
		if bestEmbodied < 0 || e.Grams() < bestEmbodied {
			best, bestEmbodied = d, e.Grams()
		}
	}
	if bestEmbodied < 0 {
		return Design{}, fmt.Errorf("accel: no %s sweep design meets %v FPS", p, minFPS)
	}
	return best, nil
}

// BudgetOptimal returns the most parallel sweep design fitting an area
// budget — the resource-constrained optimization of Figure 13 (right).
func (m *Model) BudgetOptimal(p Process, budget units.Area) (Design, error) {
	if budget <= 0 {
		return Design{}, fmt.Errorf("accel: non-positive area budget %v", budget)
	}
	sweep, err := m.Sweep(p)
	if err != nil {
		return Design{}, err
	}
	best := Design{}
	found := false
	for _, d := range sweep {
		if d.Area() <= budget {
			best, found = d, true // sweep is ascending in MACs and area
		}
	}
	if !found {
		return Design{}, fmt.Errorf("accel: no %s sweep design fits %v", p, budget)
	}
	return best, nil
}

// MetricOptimal returns the sweep design minimizing a metric.
func (m *Model) MetricOptimal(p Process, metric metrics.Metric) (Design, error) {
	sweep, err := m.Sweep(p)
	if err != nil {
		return Design{}, err
	}
	cands, err := Candidates(sweep)
	if err != nil {
		return Design{}, err
	}
	best, err := metrics.Best(metric, cands)
	if err != nil {
		return Design{}, err
	}
	for _, d := range sweep {
		if d.Name() == best.Candidate.Name {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("accel: winner %q not in sweep", best.Candidate.Name)
}

// PerfOptimal returns the sweep design with maximum throughput.
func (m *Model) PerfOptimal(p Process) (Design, error) {
	sweep, err := m.Sweep(p)
	if err != nil {
		return Design{}, err
	}
	best := sweep[0]
	for _, d := range sweep[1:] {
		if d.FPS() > best.FPS() {
			best = d
		}
	}
	return best, nil
}

// EnergyOptimal returns the sweep design with minimum energy per frame.
func (m *Model) EnergyOptimal(p Process) (Design, error) {
	sweep, err := m.Sweep(p)
	if err != nil {
		return Design{}, err
	}
	best := sweep[0]
	for _, d := range sweep[1:] {
		if d.EnergyPerFrame() < best.EnergyPerFrame() {
			best = d
		}
	}
	return best, nil
}
