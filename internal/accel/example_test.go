package accel_test

import (
	"fmt"

	"act/internal/accel"
	"act/internal/metrics"
)

// ExampleModel_QoSOptimal reproduces the Figure 13 (left) headline: the
// leanest design meeting 30 FPS carries a third of the performance-optimal
// design's embodied carbon.
func ExampleModel_QoSOptimal() {
	m, err := accel.NewModel()
	if err != nil {
		panic(err)
	}
	qos, err := m.QoSOptimal(accel.Process16nm, 30)
	if err != nil {
		panic(err)
	}
	perf, err := m.PerfOptimal(accel.Process16nm)
	if err != nil {
		panic(err)
	}
	eQoS, err := qos.Embodied()
	if err != nil {
		panic(err)
	}
	ePerf, err := perf.Embodied()
	if err != nil {
		panic(err)
	}
	fmt.Printf("QoS-optimal: %d MACs, %.1f g CO2\n", qos.MACs, eQoS.Grams())
	fmt.Printf("perf-optimal: %d MACs, %.2fx more embodied carbon\n",
		perf.MACs, ePerf.Grams()/eQoS.Grams())
	// Output:
	// QoS-optimal: 256 MACs, 14.0 g CO2
	// perf-optimal: 2048 MACs, 3.29x more embodied carbon
}

// ExampleModel_MetricOptimal walks the Figure 12 optima.
func ExampleModel_MetricOptimal() {
	m, err := accel.NewModel()
	if err != nil {
		panic(err)
	}
	for _, metric := range []metrics.Metric{metrics.EDP, metrics.CDP, metrics.CE2P, metrics.CEP, metrics.C2EP} {
		d, err := m.MetricOptimal(accel.Process16nm, metric)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d MACs\n", metric, d.MACs)
	}
	// Output:
	// EDP: 2048 MACs
	// CDP: 1024 MACs
	// CE2P: 512 MACs
	// CEP: 256 MACs
	// C2EP: 128 MACs
}
