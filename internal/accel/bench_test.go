package accel

import (
	"testing"

	"act/internal/metrics"
)

func BenchmarkSweepAndCandidates(b *testing.B) {
	m, err := NewModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep, err := m.Sweep(Process16nm)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Candidates(sweep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricOptimal(b *testing.B) {
	m, err := NewModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MetricOptimal(Process16nm, metrics.CEP); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQoSOptimal(b *testing.B) {
	m, err := NewModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.QoSOptimal(Process16nm, 30); err != nil {
			b.Fatal(err)
		}
	}
}
