package accel

import (
	"context"
	"testing"
	"time"

	"act/internal/metrics"
)

func BenchmarkSweepAndCandidates(b *testing.B) {
	m, err := NewModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep, err := m.Sweep(Process16nm)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Candidates(sweep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricOptimal(b *testing.B) {
	m, err := NewModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MetricOptimal(Process16nm, metrics.CEP); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDesigns builds the dense MAC × process grid (every count in
// [MinMACs, MaxMACs] for both processes) against a fresh, cold-cache model.
func benchDesigns(b *testing.B) []Design {
	b.Helper()
	m, err := NewModel()
	if err != nil {
		b.Fatal(err)
	}
	var out []Design
	for _, p := range Processes() {
		ds, err := m.SweepRange(p, MinMACs, MaxMACs, 1)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, ds...)
	}
	return out
}

// BenchmarkAccelSweepSeq is the sequential baseline: evaluate the dense
// design grid from a cold cache with the plain loop.
func BenchmarkAccelSweepSeq(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		designs := benchDesigns(b)
		b.StartTimer()
		if _, err := Candidates(designs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccelSweepPar evaluates the same cold-cache grid through the
// worker pool and reports the speedup over a measured sequential baseline
// (≈1x on a single-core runner, scaling with GOMAXPROCS elsewhere).
func BenchmarkAccelSweepPar(b *testing.B) {
	b.ReportAllocs()
	// Sequential baseline for the speedup metric.
	const baselineIters = 3
	var seqTotal time.Duration
	for i := 0; i < baselineIters; i++ {
		designs := benchDesigns(b)
		start := time.Now()
		if _, err := Candidates(designs); err != nil {
			b.Fatal(err)
		}
		seqTotal += time.Since(start)
	}
	seqPerOp := seqTotal / baselineIters

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		designs := benchDesigns(b)
		b.StartTimer()
		if _, err := CandidatesParallel(context.Background(), 0, designs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		perOp := b.Elapsed() / time.Duration(b.N)
		if perOp > 0 {
			b.ReportMetric(float64(seqPerOp)/float64(perOp), "speedup")
		}
	}
}

func BenchmarkQoSOptimal(b *testing.B) {
	m, err := NewModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.QoSOptimal(Process16nm, 30); err != nil {
			b.Fatal(err)
		}
	}
}
