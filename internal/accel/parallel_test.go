package accel

import (
	"context"
	"testing"
)

// TestCandidatesParallelGolden pins the acceptance criterion: the parallel
// sweep produces byte-identical results to the sequential path, for any
// worker count, over the full MAC × process fan-out.
func TestCandidatesParallelGolden(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	designs, err := m.SweepAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) != 6*len(Processes()) {
		t.Fatalf("SweepAll returned %d designs", len(designs))
	}
	want, err := Candidates(designs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5, 0} {
		// A fresh model per worker count proves the equivalence holds from
		// a cold cache, not just via memoized results.
		mw, err := NewModel()
		if err != nil {
			t.Fatal(err)
		}
		dw, err := mw.SweepAll()
		if err != nil {
			t.Fatal(err)
		}
		got, err := CandidatesParallel(context.Background(), workers, dw)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d candidates, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: candidate[%d] = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestCandidateCache checks the memo returns identical values on repeat
// evaluation and distinguishes models (a scenario fab must not leak into
// the default model's cache).
func TestCandidateCache(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Design(256, Process16nm)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Candidate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Candidate()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cached candidate differs: %+v vs %+v", a, b)
	}

	m2, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m2.Design(256, Process16nm)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d2.Candidate()
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Errorf("same design in a fresh default model differs: %+v vs %+v", a, c)
	}
}

func TestSweepRange(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := m.SweepRange(Process16nm, 64, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 || ds[0].MACs != 64 || ds[2].MACs != 128 {
		t.Errorf("SweepRange = %v", ds)
	}
	if _, err := m.SweepRange(Process16nm, 64, 128, 0); err == nil {
		t.Error("zero step: expected error")
	}
	if _, err := m.SweepRange(Process16nm, 128, 64, 32); err == nil {
		t.Error("inverted range: expected error")
	}
	if _, err := m.SweepRange(Process16nm, 1, 10, 1); err == nil {
		t.Error("below MinMACs: expected error")
	}
}
