package accel

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/metrics"
	"act/internal/units"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDesignValidation(t *testing.T) {
	m := newModel(t)
	if _, err := m.Design(256, "12nm"); err == nil {
		t.Error("unknown process: expected error")
	}
	if _, err := m.Design(8, Process16nm); err == nil {
		t.Error("too few MACs: expected error")
	}
	if _, err := m.Design(100000, Process16nm); err == nil {
		t.Error("too many MACs: expected error")
	}
	d, err := m.Design(256, Process16nm)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "nvdla-256mac-16nm" {
		t.Errorf("Name() = %q", d.Name())
	}
}

func TestNewModelWithFabs(t *testing.T) {
	if _, err := NewModelWithFabs(nil, nil); err == nil {
		t.Error("nil fabs: expected error")
	}
}

func TestSweepShape(t *testing.T) {
	m := newModel(t)
	sweep, err := m.Sweep(Process16nm)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{64, 128, 256, 512, 1024, 2048}
	if len(sweep) != len(want) {
		t.Fatalf("sweep has %d designs, want %d", len(sweep), len(want))
	}
	for i, d := range sweep {
		if d.MACs != want[i] {
			t.Errorf("sweep[%d] = %d MACs, want %d", i, d.MACs, want[i])
		}
	}
}

func TestAreaModel(t *testing.T) {
	m := newModel(t)
	d, _ := m.Design(256, Process16nm)
	if got := d.Area().MM2(); math.Abs(got-(0.667+0.00127*256)) > 1e-9 {
		t.Errorf("area(256, 16nm) = %v", got)
	}
	// Per MAC, 28 nm is less dense than 16 nm.
	d16, _ := m.Design(2048, Process16nm)
	d28, _ := m.Design(2048, Process28nm)
	if d28.Area() <= d16.Area() {
		t.Errorf("28nm (%v) should be larger than 16nm (%v) at equal MACs", d28.Area(), d16.Area())
	}
}

func TestThroughputMonotoneAndCalibrated(t *testing.T) {
	m := newModel(t)
	sweep, _ := m.Sweep(Process16nm)
	prev := 0.0
	for _, d := range sweep {
		if d.FPS() <= prev {
			t.Errorf("FPS not strictly increasing at %d MACs", d.MACs)
		}
		prev = d.FPS()
	}
	// Calibration: 256 MACs ≈ 33 FPS (meets the 30 FPS QoS target).
	d, _ := m.Design(256, Process16nm)
	if fps := d.FPS(); fps < 30 || fps > 36 {
		t.Errorf("FPS(256) = %v, want ≈33", fps)
	}
	// 128 MACs misses the target.
	d128, _ := m.Design(128, Process16nm)
	if fps := d128.FPS(); fps >= 30 {
		t.Errorf("FPS(128) = %v, should miss the 30 FPS target", fps)
	}
}

func TestEnergyUShape(t *testing.T) {
	m := newModel(t)
	opt, err := m.EnergyOptimal(Process16nm)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 12: the energy-optimal configuration is mid-sized, not the
	// most parallel one.
	if opt.MACs != 512 {
		t.Errorf("energy-optimal MACs = %d, want 512", opt.MACs)
	}
	// U-shape: both extremes are worse than the optimum.
	d64, _ := m.Design(64, Process16nm)
	d2048, _ := m.Design(2048, Process16nm)
	if d64.EnergyPerFrame() <= opt.EnergyPerFrame() || d2048.EnergyPerFrame() <= opt.EnergyPerFrame() {
		t.Errorf("energy curve not U-shaped: E(64)=%v E(512)=%v E(2048)=%v",
			d64.EnergyPerFrame(), opt.EnergyPerFrame(), d2048.EnergyPerFrame())
	}
}

func TestFigure12MetricOptima(t *testing.T) {
	// Section 7: "the most parallel and compute-intensive design (2048
	// MACs) achieves the optimal performance and EDP. However, the optimal
	// configuration for CDP, CE2P, CEP, C2EP are 1024, 512, 256, 128 MACs."
	m := newModel(t)
	perf, err := m.PerfOptimal(Process16nm)
	if err != nil {
		t.Fatal(err)
	}
	if perf.MACs != 2048 {
		t.Errorf("perf optimum = %d MACs, want 2048", perf.MACs)
	}
	wants := map[metrics.Metric]int{
		metrics.EDP:  2048,
		metrics.CDP:  1024,
		metrics.CE2P: 512,
		metrics.CEP:  256,
		metrics.C2EP: 128,
	}
	for metric, want := range wants {
		d, err := m.MetricOptimal(Process16nm, metric)
		if err != nil {
			t.Fatalf("MetricOptimal(%s): %v", metric, err)
		}
		if d.MACs != want {
			t.Errorf("%s optimum = %d MACs, want %d (paper Figure 12)", metric, d.MACs, want)
		}
	}
}

func TestFigure12OrderOfMagnitudeReduction(t *testing.T) {
	// "designing the accelerator based on the sustainability target
	// reduces the carbon-aware optimization target by up to an order of
	// magnitude" vs the most parallel configuration.
	m := newModel(t)
	most, _ := m.Design(2048, Process16nm)
	mostC, err := most.Candidate()
	if err != nil {
		t.Fatal(err)
	}
	best, err := m.MetricOptimal(Process16nm, metrics.C2EP)
	if err != nil {
		t.Fatal(err)
	}
	bestC, _ := best.Candidate()
	vMost, _ := metrics.Eval(metrics.C2EP, mostC)
	vBest, _ := metrics.Eval(metrics.C2EP, bestC)
	if ratio := vMost / vBest; ratio < 8 {
		t.Errorf("C2EP(2048)/C2EP(best) = %v, want ≥ 8 (paper: up to 10x)", ratio)
	}
}

func TestFigure13QoSOptimum(t *testing.T) {
	// Figure 13 (left): at 30 FPS the carbon-optimal design is 256 MACs at
	// ≈16 g CO2; perf- and energy-optimal configs incur ≈3.3x and ≈1.4x.
	m := newModel(t)
	qos, err := m.QoSOptimal(Process16nm, 30)
	if err != nil {
		t.Fatal(err)
	}
	if qos.MACs != 256 {
		t.Errorf("QoS optimum = %d MACs, want 256", qos.MACs)
	}
	e, err := qos.Embodied()
	if err != nil {
		t.Fatal(err)
	}
	if e.Grams() < 12 || e.Grams() > 18 {
		t.Errorf("QoS-optimal embodied = %v, want ≈14-16 g", e)
	}

	perf, _ := m.PerfOptimal(Process16nm)
	ePerf, _ := perf.Embodied()
	if ratio := ePerf.Grams() / e.Grams(); ratio < 3.0 || ratio > 3.6 {
		t.Errorf("perf-opt embodied penalty = %vx, want ≈3.3x", ratio)
	}

	energy, _ := m.EnergyOptimal(Process16nm)
	eEnergy, _ := energy.Embodied()
	if ratio := eEnergy.Grams() / e.Grams(); ratio < 1.2 || ratio > 1.5 {
		t.Errorf("energy-opt embodied penalty = %vx, want ≈1.3-1.4x", ratio)
	}

	if _, err := m.QoSOptimal(Process16nm, 1e9); err == nil {
		t.Error("unreachable QoS: expected error")
	}
	if _, err := m.QoSOptimal(Process16nm, -1); err == nil {
		t.Error("negative QoS: expected error")
	}
}

func TestFigure13Jevons(t *testing.T) {
	// Figure 13 (right): within 1 mm² and 2 mm² budgets, moving from 28 nm
	// to 16 nm increases embodied carbon by ≈33% and ≈28% respectively.
	m := newModel(t)
	cases := []struct {
		budget units.Area
		wantLo float64
		wantHi float64
		macs16 int
		macs28 int
	}{
		{units.MM2(1), 1.28, 1.38, 256, 128},
		{units.MM2(2), 1.23, 1.33, 1024, 512},
	}
	for _, c := range cases {
		d16, err := m.BudgetOptimal(Process16nm, c.budget)
		if err != nil {
			t.Fatal(err)
		}
		d28, err := m.BudgetOptimal(Process28nm, c.budget)
		if err != nil {
			t.Fatal(err)
		}
		if d16.MACs != c.macs16 || d28.MACs != c.macs28 {
			t.Errorf("budget %v: picked %d/%d MACs (16/28nm), want %d/%d",
				c.budget, d16.MACs, d28.MACs, c.macs16, c.macs28)
		}
		e16, _ := d16.Embodied()
		e28, _ := d28.Embodied()
		ratio := e16.Grams() / e28.Grams()
		if ratio < c.wantLo || ratio > c.wantHi {
			t.Errorf("budget %v: 16nm/28nm embodied = %v, want in [%v, %v] (paper: +33%%/+28%%)",
				c.budget, ratio, c.wantLo, c.wantHi)
		}
	}
	if _, err := m.BudgetOptimal(Process16nm, units.MM2(0.1)); err == nil {
		t.Error("impossible budget: expected error")
	}
	if _, err := m.BudgetOptimal(Process16nm, -1); err == nil {
		t.Error("negative budget: expected error")
	}
}

func TestAvgPowerPlausible(t *testing.T) {
	m := newModel(t)
	sweep, _ := m.Sweep(Process16nm)
	for _, d := range sweep {
		p := d.AvgPower().Watts()
		if p < 0.05 || p > 3 {
			t.Errorf("%s power = %v W, outside mobile NPU plausibility", d.Name(), p)
		}
	}
}

func TestCandidates(t *testing.T) {
	m := newModel(t)
	sweep, _ := m.Sweep(Process16nm)
	cands, err := Candidates(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(sweep) {
		t.Fatalf("Candidates dropped designs")
	}
	for i, c := range cands {
		if c.Name != sweep[i].Name() {
			t.Errorf("candidate %d name mismatch", i)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("candidate %s invalid: %v", c.Name, err)
		}
	}
}

// Property: embodied carbon increases strictly with MAC count at fixed
// process, and FPS·Delay ≈ 1 frame.
func TestQuickMonotoneEmbodiedAndDelayInverse(t *testing.T) {
	m := newModel(t)
	f := func(aRaw, bRaw uint16) bool {
		a := int(aRaw%4000) + MinMACs
		b := int(bRaw%4000) + MinMACs
		if a == b {
			return true
		}
		if a > b {
			a, b = b, a
		}
		da, err1 := m.Design(a, Process16nm)
		db, err2 := m.Design(b, Process16nm)
		if err1 != nil || err2 != nil {
			return false
		}
		ea, err1 := da.Embodied()
		eb, err2 := db.Embodied()
		if err1 != nil || err2 != nil {
			return false
		}
		if eb <= ea {
			return false
		}
		// Delay is the inverse of FPS.
		product := da.FPS() * da.Delay().Seconds()
		return math.Abs(product-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
