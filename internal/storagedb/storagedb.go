// Package storagedb is ACT's storage embodied-carbon database: the
// carbon-per-GB characterization of NAND-Flash SSDs (Table 10 of the paper)
// and hard disk drives (Table 11), and the translations
//
//	E_SSD = CPS_SSD × Capacity_SSD           (Eq. 8)
//	E_HDD = CPS_HDD × Capacity_HDD           (Eq. 7)
//
// Rows come from device-level fab characterization (SK hynix) and from
// vendor life-cycle analyses (Western Digital, Seagate).
package storagedb

import (
	"fmt"
	"sort"
	"strings"

	"act/internal/units"
)

// Class distinguishes SSD from HDD rows.
type Class string

// Storage classes.
const (
	SSD Class = "ssd"
	HDD Class = "hdd"
)

// Technology identifies a characterized storage technology.
type Technology string

// SSD technologies from Table 10 of the paper.
const (
	NAND30nm  Technology = "30nm-nand"
	NAND20nm  Technology = "20nm-nand"
	NAND10nm  Technology = "10nm-nand"
	NAND1zTLC Technology = "1z-nand-tlc"
	NANDV3TLC Technology = "v3-nand-tlc"
	WD2016    Technology = "wd-2016"
	WD2017    Technology = "wd-2017"
	WD2018    Technology = "wd-2018"
	WD2019    Technology = "wd-2019"
	Nytro1551 Technology = "nytro-1551"
	Nytro3530 Technology = "nytro-3530"
	Nytro3331 Technology = "nytro-3331"
)

// HDD technologies from Table 11 of the paper.
const (
	BarraCuda    Technology = "barracuda"
	BarraCuda2   Technology = "barracuda2"
	BarraCudaPro Technology = "barracuda-pro"
	FireCuda     Technology = "firecuda"
	FireCuda2    Technology = "firecuda2"
	Exos2x14     Technology = "exos2x14"
	Exosx12      Technology = "exosx12"
	Exosx16      Technology = "exosx16"
	Exos15e900   Technology = "exos15e900"
	Exos10e2400  Technology = "exos10e2400"
)

// Entry is one row of the storage characterization tables.
type Entry struct {
	Technology Technology
	// Description is the row label used by Tables 10-11 / Figure 7.
	Description string
	Class       Class
	// CPS is the embodied carbon per gigabyte.
	CPS units.CarbonPerCapacity
	// DeviceLevel is true for device-level fab characterization (black
	// bars of Figure 7), false for vendor component-level LCAs (grey).
	DeviceLevel bool
	// Enterprise marks Table 11 enterprise-class drives.
	Enterprise bool
}

// ssdTable is Table 10 of the paper verbatim.
var ssdTable = []Entry{
	{NAND30nm, "30nm NAND", SSD, 30, true, false},
	{NAND20nm, "20nm NAND", SSD, 15, true, false},
	{NAND10nm, "10nm NAND", SSD, 10, true, false},
	{NAND1zTLC, "1z NAND TLC", SSD, 5.6, true, false},
	{NANDV3TLC, "V3 NAND TLC", SSD, 6.3, true, false},
	{WD2016, "Western Digital 2016", SSD, 24.4, false, false},
	{WD2017, "Western Digital 2017", SSD, 17.9, false, false},
	{WD2018, "Western Digital 2018", SSD, 12.5, false, false},
	{WD2019, "Western Digital 2019", SSD, 10.7, false, false},
	{Nytro1551, "Seagate Nytro 1551", SSD, 3.95, false, false},
	{Nytro3530, "Seagate Nytro 3530", SSD, 6.21, false, false},
	{Nytro3331, "Seagate Nytro 3331", SSD, 16.92, false, false},
}

// hddTable is Table 11 of the paper verbatim.
var hddTable = []Entry{
	{BarraCuda, "BarraCuda", HDD, 4.57, false, false},
	{BarraCuda2, "BarraCuda2", HDD, 10.32, false, false},
	{BarraCudaPro, "BarraCuda Pro", HDD, 2.35, false, false},
	{FireCuda, "FireCuda", HDD, 5.1, false, false},
	{FireCuda2, "FireCuda 2", HDD, 9.1, false, false},
	{Exos2x14, "Exos2x14", HDD, 1.65, false, true},
	{Exosx12, "Exosx12", HDD, 1.14, false, true},
	{Exosx16, "Exosx16", HDD, 1.33, false, true},
	{Exos15e900, "Exos15e900", HDD, 20.5, false, true},
	{Exos10e2400, "Exos10e2400", HDD, 10.3, false, true},
}

// Lookup returns the characterization of a storage technology from either
// table.
func Lookup(t Technology) (Entry, error) {
	for _, e := range ssdTable {
		if e.Technology == t {
			return e, nil
		}
	}
	for _, e := range hddTable {
		if e.Technology == t {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("storagedb: unknown storage technology %q", t)
}

// SSDs returns all Table 10 rows in the paper's order.
func SSDs() []Entry {
	out := make([]Entry, len(ssdTable))
	copy(out, ssdTable)
	return out
}

// HDDs returns all Table 11 rows in the paper's order.
func HDDs() []Entry {
	out := make([]Entry, len(hddTable))
	copy(out, hddTable)
	return out
}

// Parse resolves a free-form storage technology name ("V3 TLC", "30nm NAND",
// "Seagate Nytro 1551") to a characterized entry.
func Parse(s string) (Entry, error) {
	key := strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), " ", "-"))
	key = strings.TrimPrefix(key, "seagate-")
	key = strings.TrimPrefix(key, "western-digital-")
	if key == "v3-tlc" || key == "3v3-tlc" { // Table 12 uses both spellings
		key = string(NANDV3TLC)
	}
	if e, err := Lookup(Technology(key)); err == nil {
		return e, nil
	}
	for _, e := range append(SSDs(), HDDs()...) {
		desc := strings.ToLower(strings.ReplaceAll(e.Description, " ", "-"))
		if key == desc || key == strings.TrimPrefix(desc, "seagate-") ||
			key == strings.TrimPrefix(desc, "western-digital-") {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("storagedb: cannot resolve storage technology %q", s)
}

// Embodied returns the embodied carbon for a drive of the given capacity on
// the given technology (Eq. 7 for HDDs, Eq. 8 for SSDs).
func Embodied(t Technology, capacity units.Capacity) (units.CO2Mass, error) {
	if capacity < 0 {
		return 0, fmt.Errorf("storagedb: negative capacity %v", capacity)
	}
	e, err := Lookup(t)
	if err != nil {
		return 0, err
	}
	return e.CPS.For(capacity), nil
}

// ByCPS returns the rows of the given class sorted by descending
// carbon-per-GB, the bar order of Figure 7 (center and right).
func ByCPS(c Class) []Entry {
	var out []Entry
	switch c {
	case SSD:
		out = SSDs()
	case HDD:
		out = HDDs()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPS != out[j].CPS {
			return out[i].CPS > out[j].CPS
		}
		return out[i].Technology < out[j].Technology
	})
	return out
}
