package storagedb

import (
	"math"
	"testing"

	"act/internal/units"
)

func TestTable10Values(t *testing.T) {
	cases := []struct {
		tech Technology
		want float64
	}{
		{NAND30nm, 30}, {NAND20nm, 15}, {NAND10nm, 10},
		{NAND1zTLC, 5.6}, {NANDV3TLC, 6.3},
		{WD2016, 24.4}, {WD2017, 17.9}, {WD2018, 12.5}, {WD2019, 10.7},
		{Nytro1551, 3.95}, {Nytro3530, 6.21}, {Nytro3331, 16.92},
	}
	for _, c := range cases {
		e, err := Lookup(c.tech)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", c.tech, err)
		}
		if e.CPS.GramsPerGB() != c.want {
			t.Errorf("%s CPS = %v, want %v", c.tech, e.CPS, c.want)
		}
		if e.Class != SSD {
			t.Errorf("%s class = %s, want ssd", c.tech, e.Class)
		}
	}
	if len(SSDs()) != 12 {
		t.Errorf("SSDs() = %d rows, want 12", len(SSDs()))
	}
}

func TestTable11Values(t *testing.T) {
	cases := []struct {
		tech       Technology
		want       float64
		enterprise bool
	}{
		{BarraCuda, 4.57, false}, {BarraCuda2, 10.32, false},
		{BarraCudaPro, 2.35, false}, {FireCuda, 5.1, false},
		{FireCuda2, 9.1, false},
		{Exos2x14, 1.65, true}, {Exosx12, 1.14, true}, {Exosx16, 1.33, true},
		{Exos15e900, 20.5, true}, {Exos10e2400, 10.3, true},
	}
	for _, c := range cases {
		e, err := Lookup(c.tech)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", c.tech, err)
		}
		if e.CPS.GramsPerGB() != c.want {
			t.Errorf("%s CPS = %v, want %v", c.tech, e.CPS, c.want)
		}
		if e.Class != HDD || e.Enterprise != c.enterprise {
			t.Errorf("%s class/enterprise = %s/%v, want hdd/%v", c.tech, e.Class, e.Enterprise, c.enterprise)
		}
	}
	if len(HDDs()) != 10 {
		t.Errorf("HDDs() = %d rows, want 10", len(HDDs()))
	}
	if _, err := Lookup("tape"); err == nil {
		t.Error("Lookup(tape): expected error")
	}
}

func TestNewerNANDNodesCheaper(t *testing.T) {
	// Figure 7 (center): within the raw NAND series, newer nodes have
	// lower carbon per GB.
	series := []Technology{NAND30nm, NAND20nm, NAND10nm, NAND1zTLC}
	for i := 1; i < len(series); i++ {
		prev, _ := Lookup(series[i-1])
		cur, _ := Lookup(series[i])
		if cur.CPS >= prev.CPS {
			t.Errorf("%s (%v) should be below %s (%v)", cur.Technology, cur.CPS, prev.Technology, prev.CPS)
		}
	}
}

func TestEmbodied(t *testing.T) {
	// 64 GB of V3 TLC NAND at 6.3 g/GB ≈ 403 g (iPhone 11 flash in Table 12:
	// 0.48 kg at V3 TLC for its capacity class).
	m, err := Embodied(NANDV3TLC, units.Gigabytes(64))
	if err != nil || math.Abs(m.Grams()-403.2) > 1e-9 {
		t.Errorf("Embodied(V3 TLC, 64GB) = %v, %v, want 403.2 g", m, err)
	}
	// Dell R740 31 TB at V3 TLC: 31000 GB × 6.3 g ≈ 195 kg of raw NAND.
	m, err = Embodied(NANDV3TLC, units.Terabytes(31))
	if err != nil || math.Abs(m.Kilograms()-195.3) > 1e-6 {
		t.Errorf("Embodied(V3 TLC, 31TB) = %v, %v, want 195.3 kg", m, err)
	}
	if _, err := Embodied(NANDV3TLC, units.Gigabytes(-1)); err == nil {
		t.Error("Embodied(negative): expected error")
	}
	if _, err := Embodied("tape", 1); err == nil {
		t.Error("Embodied(unknown): expected error")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Technology
	}{
		{"V3 TLC", NANDV3TLC},
		{"3V3 TLC", NANDV3TLC}, // Table 12's spelling
		{"v3 nand tlc", NANDV3TLC},
		{"30nm NAND", NAND30nm},
		{"Seagate Nytro 1551", Nytro1551},
		{"nytro-1551", Nytro1551},
		{"Western Digital 2019", WD2019},
		{"BarraCuda Pro", BarraCudaPro},
		{"exos2x14", Exos2x14},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if e.Technology != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.in, e.Technology, c.want)
		}
	}
	for _, bad := range []string{"", "floppy", "optane"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestByCPSDescending(t *testing.T) {
	for _, class := range []Class{SSD, HDD} {
		rows := ByCPS(class)
		if len(rows) == 0 {
			t.Fatalf("ByCPS(%s) empty", class)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].CPS > rows[i-1].CPS {
				t.Errorf("ByCPS(%s) not descending at %d", class, i)
			}
		}
	}
	if got := ByCPS(SSD)[0].Technology; got != NAND30nm {
		t.Errorf("highest-carbon SSD = %s, want 30nm NAND", got)
	}
	if got := ByCPS(HDD)[0].Technology; got != Exos15e900 {
		t.Errorf("highest-carbon HDD = %s, want Exos15e900", got)
	}
	if got := ByCPS("nvram"); got != nil {
		t.Errorf("ByCPS(unknown) = %v, want nil", got)
	}
}

func TestDRAMDominatesSSDAndHDDAtCommensurateNodes(t *testing.T) {
	// Paper, Section 3.1: "At commensurate technology nodes, the carbon
	// intensity of DRAM is higher than that of SSD and HDD."
	// 30nm class: DRAM 230 g/GB (see memdb) vs NAND 30 g/GB here.
	nand, _ := Lookup(NAND30nm)
	if nand.CPS.GramsPerGB() >= 230 {
		t.Errorf("30nm NAND (%v) should be far below 30nm DRAM (230 g/GB)", nand.CPS)
	}
}
