package wafer

import (
	"math"
	"testing"
	"testing/quick"

	"act/internal/fab"
	"act/internal/units"
)

func defaultFab(t *testing.T, opts ...fab.Option) *fab.Fab {
	t.Helper()
	f, err := fab.New(fab.Node7, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidate(t *testing.T) {
	if err := Default300().Validate(); err != nil {
		t.Errorf("default wafer invalid: %v", err)
	}
	bad := []Wafer{
		{DiameterMM: 0},
		{DiameterMM: 300, EdgeExclusionMM: -1},
		{DiameterMM: 300, ScribeMM: -1},
		{DiameterMM: 10, EdgeExclusionMM: 5},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("wafer %d: expected error", i)
		}
	}
}

func TestAreas(t *testing.T) {
	w := Default300()
	// Full area: π × 150².
	if got := w.Area().MM2(); math.Abs(got-math.Pi*150*150) > 1e-9 {
		t.Errorf("Area = %v", got)
	}
	// Usable radius 147 mm.
	if got := w.UsableArea().MM2(); math.Abs(got-math.Pi*147*147) > 1e-9 {
		t.Errorf("UsableArea = %v", got)
	}
}

func TestDiesPerWafer(t *testing.T) {
	w := Default300()
	// A 100 mm² die on a 300 mm wafer: industry calculators give ≈600
	// gross dies.
	dpw, err := w.DiesPerWafer(units.MM2(100))
	if err != nil {
		t.Fatal(err)
	}
	if dpw < 540 || dpw > 640 {
		t.Errorf("DPW(100mm²) = %d, want ≈600", dpw)
	}
	// An 800 mm² reticle-limited die: ≈60.
	dpw, err = w.DiesPerWafer(units.MM2(800))
	if err != nil {
		t.Fatal(err)
	}
	if dpw < 50 || dpw > 72 {
		t.Errorf("DPW(800mm²) = %d, want ≈60", dpw)
	}

	if _, err := w.DiesPerWafer(0); err == nil {
		t.Error("zero die: expected error")
	}
	if _, err := w.DiesPerWafer(units.MM2(200000)); err == nil {
		t.Error("die larger than wafer: expected error")
	}
}

func TestQuickDPWMonotone(t *testing.T) {
	// Property: more area per die, fewer dies per wafer.
	w := Default300()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%900) + 10
		b := float64(bRaw%900) + 10
		if a > b {
			a, b = b, a
		}
		da, err1 := w.DiesPerWafer(units.MM2(a))
		db, err2 := w.DiesPerWafer(units.MM2(b))
		return err1 == nil && err2 == nil && da >= db
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackingEfficiency(t *testing.T) {
	w := Default300()
	small, err := w.PackingEfficiency(units.MM2(25))
	if err != nil {
		t.Fatal(err)
	}
	large, err := w.PackingEfficiency(units.MM2(800))
	if err != nil {
		t.Fatal(err)
	}
	// Efficiency is a fraction and decreases for huge dies.
	if small <= 0 || small >= 1 || large <= 0 || large >= 1 {
		t.Errorf("efficiencies out of (0,1): %v, %v", small, large)
	}
	if large >= small {
		t.Errorf("large dies should pack worse: %v vs %v", large, small)
	}
	// Small dies pack well: > 80%.
	if small < 0.8 {
		t.Errorf("small-die packing = %v, want > 0.8", small)
	}
}

func TestEmbodiedPerGoodDieConvergesToEq4(t *testing.T) {
	// For a small die the wafer model converges to Area × CPA within the
	// packing overhead (≈10-15%).
	w := Default300()
	f := defaultFab(t)
	die := units.MM2(50)
	waferE, err := w.EmbodiedPerGoodDie(f, die)
	if err != nil {
		t.Fatal(err)
	}
	flatE, err := f.Embodied(die)
	if err != nil {
		t.Fatal(err)
	}
	ratio := waferE.Grams() / flatE.Grams()
	if ratio < 1.0 || ratio > 1.25 {
		t.Errorf("wafer/flat ratio for a small die = %v, want 1.0-1.25", ratio)
	}
}

func TestPackingOverheadGrowsWithDieSize(t *testing.T) {
	w := Default300()
	f := defaultFab(t)
	small, err := w.PackingOverhead(f, units.MM2(50))
	if err != nil {
		t.Fatal(err)
	}
	large, err := w.PackingOverhead(f, units.MM2(800))
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("packing overhead should grow with die size: %v vs %v", small, large)
	}
	if small < 1 {
		t.Errorf("overhead below 1 (%v): the wafer model cannot beat perfect tiling", small)
	}
}

func TestEmbodiedWithDefectYield(t *testing.T) {
	// Under Murphy yield, the per-good-die footprint grows superlinearly
	// with die area: doubling area more than doubles embodied carbon.
	w := Default300()
	f := defaultFab(t, fab.WithYield(fab.MurphyYield{D0: 0.2}))
	e1, err := w.EmbodiedPerGoodDie(f, units.MM2(200))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := w.EmbodiedPerGoodDie(f, units.MM2(400))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Grams() <= 2*e1.Grams() {
		t.Errorf("defect yield should penalize large dies superlinearly: %v vs 2x%v", e2, e1)
	}
}

func TestGoodDiesPerWafer(t *testing.T) {
	w := Default300()
	f := defaultFab(t) // fixed yield 0.875
	dpw, err := w.DiesPerWafer(units.MM2(100))
	if err != nil {
		t.Fatal(err)
	}
	good, err := w.GoodDiesPerWafer(f, units.MM2(100))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(good-float64(dpw)*0.875) > 1e-9 {
		t.Errorf("good dies = %v, want %v", good, float64(dpw)*0.875)
	}
	if _, err := w.GoodDiesPerWafer(nil, units.MM2(100)); err == nil {
		t.Error("nil fab: expected error")
	}
}

func TestEmbodiedErrors(t *testing.T) {
	w := Default300()
	if _, err := w.EmbodiedPerGoodDie(nil, units.MM2(100)); err == nil {
		t.Error("nil fab: expected error")
	}
	f := defaultFab(t, fab.WithYield(fab.PoissonYield{D0: 1e6}))
	if _, err := w.EmbodiedPerGoodDie(f, units.MM2(500)); err == nil {
		t.Error("degenerate yield: expected error")
	}
}
