// Package wafer refines the ACT manufacturing model from per-area to
// per-wafer accounting. The headline model charges a die Area × CPA
// (Eq. 4), implicitly assuming wafers tile perfectly into dies. Real
// wafers lose area to edge exclusion, saw streets and rectangular-on-
// circular packing, so the area of wafer processed per good die exceeds
// the die area — increasingly so for large dies. This package computes
// dies-per-wafer with the classic De Vries estimate, charges the whole
// processed wafer to the good dies, and therefore gives a (slightly)
// higher, more faithful embodied footprint that converges to Eq. 4 for
// small dies.
package wafer

import (
	"fmt"
	"math"

	"act/internal/fab"
	"act/internal/units"
)

// Wafer describes the processed substrate.
type Wafer struct {
	// DiameterMM is the wafer diameter (300 for modern logic).
	DiameterMM float64
	// EdgeExclusionMM is the unusable rim.
	EdgeExclusionMM float64
	// ScribeMM is the saw street added to each die edge.
	ScribeMM float64
}

// Default300 returns a standard 300 mm wafer with a 3 mm edge exclusion
// and 0.1 mm saw streets.
func Default300() Wafer {
	return Wafer{DiameterMM: 300, EdgeExclusionMM: 3, ScribeMM: 0.1}
}

// Validate checks the geometry is usable.
func (w Wafer) Validate() error {
	if w.DiameterMM <= 0 {
		return fmt.Errorf("wafer: non-positive diameter %v", w.DiameterMM)
	}
	if w.EdgeExclusionMM < 0 || w.ScribeMM < 0 {
		return fmt.Errorf("wafer: negative edge exclusion or scribe")
	}
	if 2*w.EdgeExclusionMM >= w.DiameterMM {
		return fmt.Errorf("wafer: edge exclusion %v consumes the whole %v mm wafer",
			w.EdgeExclusionMM, w.DiameterMM)
	}
	return nil
}

// usableRadiusMM returns the printable radius.
func (w Wafer) usableRadiusMM() float64 {
	return w.DiameterMM/2 - w.EdgeExclusionMM
}

// Area returns the full wafer area (the area the fab processes).
func (w Wafer) Area() units.Area {
	r := w.DiameterMM / 2
	return units.MM2(math.Pi * r * r)
}

// UsableArea returns the printable area inside the edge exclusion.
func (w Wafer) UsableArea() units.Area {
	r := w.usableRadiusMM()
	return units.MM2(math.Pi * r * r)
}

// DiesPerWafer estimates the number of whole dies that fit the usable
// area, for a square die of the given logic area, using the De Vries
// formula DPW = πr²/S − πd/√(2S) with S the die area including scribe.
func (w Wafer) DiesPerWafer(die units.Area) (int, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if die <= 0 {
		return 0, fmt.Errorf("wafer: non-positive die area %v", die)
	}
	edge := math.Sqrt(die.MM2()) + w.ScribeMM
	s := edge * edge
	r := w.usableRadiusMM()
	if s > r*r { // die cannot possibly fit
		return 0, fmt.Errorf("wafer: die %v larger than the usable wafer", die)
	}
	dpw := math.Pi*r*r/s - math.Pi*2*r/math.Sqrt(2*s)
	if dpw < 1 {
		return 0, fmt.Errorf("wafer: die %v too large to yield a whole die", die)
	}
	return int(dpw), nil
}

// PackingEfficiency returns the fraction of the processed wafer that ends
// up inside dies: DPW × die area ÷ full wafer area.
func (w Wafer) PackingEfficiency(die units.Area) (float64, error) {
	dpw, err := w.DiesPerWafer(die)
	if err != nil {
		return 0, err
	}
	return float64(dpw) * die.MM2() / w.Area().MM2(), nil
}

// EmbodiedPerGoodDie charges the whole processed wafer to the wafer's
// good dies:
//
//	E = WaferArea × (CIfab·EPA + GPA + MPA) / (DPW × Y(die))
//
// where Y comes from the fab's yield model. For small dies this converges
// to Eq. 4 (Area × CPA); for reticle-sized dies it exceeds it by the
// packing loss.
func (w Wafer) EmbodiedPerGoodDie(f *fab.Fab, die units.Area) (units.CO2Mass, error) {
	if f == nil {
		return 0, fmt.Errorf("wafer: nil fab")
	}
	dpw, err := w.DiesPerWafer(die)
	if err != nil {
		return 0, err
	}
	y := f.Yield(die)
	if !fab.ValidYield(y) {
		return 0, fmt.Errorf("wafer: yield model returned %v for die %v", y, die)
	}
	// Per-area manufacturing intensity without the yield discount: CPA at
	// yield 1 equals the raw intensity.
	perArea := f.CarbonIntensity().GramsPerKWh()*f.EPA().KWhPerCM2() +
		f.GPA().GramsPerCM2() + f.MPA().GramsPerCM2()
	waferGrams := perArea * w.Area().CM2()
	good := float64(dpw) * y
	return units.Grams(waferGrams / good), nil
}

// PackingOverhead returns the ratio of the wafer-level embodied estimate
// to the headline Eq. 4 estimate for the same die and fab — how much the
// per-area model understates manufacturing for this die size.
func (w Wafer) PackingOverhead(f *fab.Fab, die units.Area) (float64, error) {
	waferE, err := w.EmbodiedPerGoodDie(f, die)
	if err != nil {
		return 0, err
	}
	flatE, err := f.Embodied(die)
	if err != nil {
		return 0, err
	}
	return waferE.Grams() / flatE.Grams(), nil
}

// GoodDiesPerWafer returns the expected count of functional dies.
func (w Wafer) GoodDiesPerWafer(f *fab.Fab, die units.Area) (float64, error) {
	if f == nil {
		return 0, fmt.Errorf("wafer: nil fab")
	}
	dpw, err := w.DiesPerWafer(die)
	if err != nil {
		return 0, err
	}
	y := f.Yield(die)
	if !fab.ValidYield(y) {
		return 0, fmt.Errorf("wafer: yield model returned %v for die %v", y, die)
	}
	return float64(dpw) * y, nil
}
