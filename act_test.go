package act_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"act"
)

func TestFacadeEndToEnd(t *testing.T) {
	// Build an iPhone-11-class device through the public API and check
	// the pieces compose: a 7nm SoC, LPDDR4, NAND, amortized over 3 years.
	f, err := act.NewFab(act.Node7)
	if err != nil {
		t.Fatal(err)
	}
	soc, err := act.NewLogic("SoC", act.MM2(98.5), f, 1)
	if err != nil {
		t.Fatal(err)
	}
	ram, err := act.NewDRAM("DRAM", act.LPDDR4, act.Gigabytes(4))
	if err != nil {
		t.Fatal(err)
	}
	flash, err := act.NewStorage("NAND", act.NANDV3TLC, act.Gigabytes(64))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := act.NewDevice("phone")
	if err != nil {
		t.Fatal(err)
	}
	dev.AddLogic(soc).AddDRAM(ram).AddStorage(flash)

	b, err := act.Embodied(dev)
	if err != nil {
		t.Fatal(err)
	}
	// SoC ≈1.72 kg + DRAM 192 g + NAND 403 g + packaging 450 g ≈ 2.77 kg.
	if b.Total().Kilograms() < 2.5 || b.Total().Kilograms() > 3.1 {
		t.Errorf("embodied total = %v, want ≈2.8 kg", b.Total())
	}

	usage := act.UsageFromPower(act.Watts(3), time.Hour, act.USGrid)
	a, err := act.Footprint(dev, usage, time.Hour, act.YearsDuration(3))
	if err != nil {
		t.Fatal(err)
	}
	// 3 Wh at 300 g/kWh = 0.9 g operational.
	if math.Abs(a.Operational.Grams()-0.9) > 1e-9 {
		t.Errorf("operational = %v, want 0.9 g", a.Operational)
	}
	if a.Total().Grams() <= a.Operational.Grams() {
		t.Error("total should include an embodied share")
	}
}

func TestFacadeMetrics(t *testing.T) {
	lean := act.Candidate{Name: "lean", Embodied: act.Grams(1),
		Energy: act.Joules(4), Delay: 4 * time.Second, Area: act.MM2(1)}
	fast := act.Candidate{Name: "fast", Embodied: act.Grams(4),
		Energy: act.Joules(1), Delay: time.Second, Area: act.MM2(1)}
	best, err := act.BestByMetric(act.C2EP, []act.Candidate{lean, fast})
	if err != nil || best.Candidate.Name != "lean" {
		t.Errorf("C2EP best = %v, %v", best.Candidate.Name, err)
	}
	v, err := act.EvalMetric(act.CDP, lean)
	if err != nil || v != 4 {
		t.Errorf("EvalMetric(CDP) = %v, %v, want 4", v, err)
	}
}

func TestFacadeParseNode(t *testing.T) {
	n, err := act.ParseNode("16nm")
	if err != nil || n.Node != act.Node14 {
		t.Errorf("ParseNode(16nm) = %v, %v", n.Node, err)
	}
}

func TestFacadeConstants(t *testing.T) {
	if act.USGrid.GramsPerKWh() != 300 {
		t.Errorf("USGrid = %v", act.USGrid)
	}
	if act.PackagingFootprint.Grams() != 150 {
		t.Errorf("PackagingFootprint = %v", act.PackagingFootprint)
	}
	if got := act.DefaultFabIntensity.GramsPerKWh(); math.Abs(got-447.5) > 1e-9 {
		t.Errorf("DefaultFabIntensity = %v, want 447.5", got)
	}
}

// ExampleFootprint demonstrates the quick-start flow from the package doc.
func ExampleFootprint() {
	f, _ := act.NewFab(act.Node7)
	soc, _ := act.NewLogic("SoC", act.MM2(100), f, 1)
	dev, _ := act.NewDevice("widget")
	dev.AddLogic(soc)
	usage := act.UsageFromPower(act.Watts(1), time.Hour, act.USGrid)
	a, _ := act.Footprint(dev, usage, time.Hour, act.YearsDuration(1))
	fmt.Printf("operational: %s\n", a.Operational)
	// Output:
	// operational: 300 mg CO2
}
