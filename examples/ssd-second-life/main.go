// SSD second life (paper Figure 15): over-provisioning a drive improves
// write amplification and reliability lifetime at the cost of extra
// manufactured flash. The sweep locates the over-provisioning factor that
// minimizes effective embodied carbon for a 2-year first life and a 4-year
// second life, reproducing the paper's 16% -> 34% shift and the ≈1.8x
// per-year embodied reduction of keeping a drive alive for a second life.
//
// Run with: go run ./examples/ssd-second-life
package main

import (
	"fmt"
	"log"

	"act/internal/report"
	"act/internal/ssdlife"
)

func main() {
	drive := ssdlife.DefaultDrive()
	grid := ssdlife.DefaultGrid()

	// Figure 15 (top): write amplification falls and lifetime rises with
	// over-provisioning.
	top := report.NewTable("Reliability vs over-provisioning (128 GB 3D TLC drive)",
		"over-provisioning", "write amplification", "lifetime (years)")
	for _, pf := range grid {
		pt, err := drive.Evaluate(pf, 2)
		if err != nil {
			log.Fatal(err)
		}
		top.AddRow(fmt.Sprintf("%.0f%%", pf*100), report.Num(pt.WA), report.Num(pt.LifetimeYears))
	}
	mustPrint(top)

	// Figure 15 (bottom): effective embodied carbon per mission, for the
	// first life (2 years) and an extended second life (4 years).
	bottom := report.NewTable("Effective embodied carbon per mission",
		"over-provisioning", "2y mission: drives / g CO2", "4y mission: drives / g CO2")
	for _, pf := range grid {
		p2, err := drive.Evaluate(pf, 2)
		if err != nil {
			log.Fatal(err)
		}
		p4, err := drive.Evaluate(pf, 4)
		if err != nil {
			log.Fatal(err)
		}
		bottom.AddRow(fmt.Sprintf("%.0f%%", pf*100),
			fmt.Sprintf("%d / %s", p2.Replacements, report.Num(p2.EffectiveEmbodied.Grams())),
			fmt.Sprintf("%d / %s", p4.Replacements, report.Num(p4.EffectiveEmbodied.Grams())))
	}
	mustPrint(bottom)

	first, err := drive.Optimal(grid, 2)
	if err != nil {
		log.Fatal(err)
	}
	second, err := drive.Optimal(grid, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first-life optimum:  %.0f%% over-provisioning (%v per 2-year mission)\n",
		first.PF*100, first.EffectiveEmbodied)
	fmt.Printf("second-life optimum: %.0f%% over-provisioning (%v per 4-year mission)\n",
		second.PF*100, second.EffectiveEmbodied)
	perYear := (first.EffectiveEmbodied.Grams() / 2) / (second.EffectiveEmbodied.Grams() / 4)
	fmt.Printf("per-year embodied reduction from enabling second life: %.2fx (paper: ≈1.8x)\n", perYear)
}

func mustPrint(t *report.Table) {
	out, err := t.ASCII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
