// Sustainability levers: the Figure 1 directions the paper lists but does
// not evaluate, quantified with this library's extension substrates.
//
//   - Reduce / DVFS: the carbon-optimal operating point shifts with grid
//     intensity and embodied amortization.
//   - Reduce / renewable-driven operation: carbon-aware scheduling of a
//     deferrable job on a dispatch-simulated grid.
//   - Reduce / eliminate wasted hardware + Reuse / co-location: fleet
//     right-sizing against a diurnal load.
//   - Reuse / chiplet design: the embodied crossover between monolithic
//     and chiplet integration under defect-driven yield.
//
// Run with: go run ./examples/sustainability-levers
package main

import (
	"fmt"
	"log"
	"time"

	"act/internal/chiplet"
	"act/internal/datacenter"
	"act/internal/dvfs"
	"act/internal/fab"
	"act/internal/grid"
	"act/internal/intensity"
	"act/internal/report"
	"act/internal/units"
)

func main() {
	dvfsStudy()
	schedulingStudy()
	fleetStudy()
	chipletStudy()
}

func dvfsStudy() {
	p := dvfs.Default()
	const work = 100 // gigacycles
	t := report.NewTable("DVFS: carbon-optimal frequency by environment",
		"grid", "embodied", "optimal GHz", "task carbon")
	for _, env := range []struct {
		label string
		ci    units.CarbonIntensity
		kg    float64
	}{
		{"coal grid, cheap HW", intensity.CoalGrid, 2},
		{"US grid, phone-class HW", intensity.USGrid, 17},
		{"solar, phone-class HW", intensity.Renewable, 17},
		{"carbon-free, dear HW", intensity.CarbonFree, 40},
	} {
		ctx := dvfs.CarbonContext{
			Intensity:      env.ci,
			DeviceEmbodied: units.Kilograms(env.kg),
			Lifetime:       units.Years(3),
		}
		f, c, err := p.CarbonOptimalFrequency(ctx, work, 221)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(env.label, fmt.Sprintf("%.0f kg", env.kg), report.Num(f), c.String())
	}
	t.AddNote("greener grids and dearer hardware both push toward racing to idle")
	mustPrint(t)
}

func schedulingStudy() {
	tr, err := grid.NewTrace(grid.Default(), grid.DiurnalDemand(9000, 2000))
	if err != nil {
		log.Fatal(err)
	}
	energy := units.KilowattHours(500) // a nightly batch job
	t := report.NewTable("Carbon-aware scheduling of a deferrable 500 kWh job",
		"slots (h)", "immediate (kg)", "carbon-aware (kg)", "savings")
	for _, hours := range []int{2, 4, 8, 12} {
		naive, err := grid.Immediate(tr, energy, hours, 24*time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		aware, err := grid.CarbonAware(tr, energy, hours, 24*time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(report.Num(float64(hours)),
			report.Num(naive.Emissions.Kilograms()),
			report.Num(aware.Emissions.Kilograms()),
			fmt.Sprintf("%.2fx", naive.Emissions.Grams()/aware.Emissions.Grams()))
	}
	t.AddNote("slots picked by dispatch-simulated grid intensity (solar absorbs midday demand)")
	mustPrint(t)
}

func fleetStudy() {
	load := datacenter.DiurnalLoad(5000, 3000)
	spec := datacenter.DefaultServer()
	best, sweep, err := datacenter.OptimalFleet(load, spec, 1.3, intensity.USGrid, 24)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Fleet right-sizing for a 8k-rps-peak diurnal load",
		"servers", "mean util", "embodied (t)", "operational (t)", "total (t)")
	for _, a := range sweep {
		if a.Servers%4 != 0 && a.Servers != best.Servers {
			continue
		}
		t.AddRow(report.Num(float64(a.Servers)),
			fmt.Sprintf("%.0f%%", a.MeanUtilization*100),
			report.Num(a.Embodied.Tonnes()),
			report.Num(a.Operational.Tonnes()),
			report.Num(a.Total().Tonnes()))
	}
	t.AddNote(fmt.Sprintf("optimal fleet: %d servers; over-provisioning pays in both embodied and idle carbon", best.Servers))
	mustPrint(t)
}

func chipletStudy() {
	p := chiplet.DefaultParams()
	f, err := fab.New(fab.Node7, fab.WithYield(fab.MurphyYield{D0: 0.2}))
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Chiplet vs monolithic (7nm, D0=0.2/cm²)",
		"logic area", "best split", "yield", "total embodied", "vs monolithic")
	for _, area := range []float64{100, 300, 500, 700, 900} {
		best, err := chiplet.Optimal(p, f, units.MM2(area), 8)
		if err != nil {
			log.Fatal(err)
		}
		mono, err := chiplet.Evaluate(p, f, units.MM2(area), 1)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%.0f mm²", area),
			fmt.Sprintf("%d chiplets", best.Chiplets),
			fmt.Sprintf("%.0f%%", best.Yield*100),
			best.Total().String(),
			fmt.Sprintf("%.2fx", best.Total().Grams()/mono.Total().Grams()))
	}
	t.AddNote("defect-driven yield makes splitting reticle-scale dies carbon-positive despite interposer and assembly overheads")
	mustPrint(t)
}

func mustPrint(t *report.Table) {
	out, err := t.ASCII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
