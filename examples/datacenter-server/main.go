// Datacenter server (paper Table 12 / Figure 17): build a Dell R740-class
// server bottom-up through the public API — dual Xeons, half a terabyte of
// DDR4, a 31 TB flash array — and contrast ACT's bottom-up embodied
// estimate at the hardware's actual nodes against the published LCA, which
// modeled the ICs with decade-old processes.
//
// Run with: go run ./examples/datacenter-server
package main

import (
	"fmt"
	"log"

	"act"
	"act/internal/platforms"
	"act/internal/report"
)

func main() {
	// The server at its *actual* nodes: 14 nm CPUs, 10 nm-class DDR4,
	// modern 3D TLC flash.
	f14, err := act.NewFab(act.Node14)
	if err != nil {
		log.Fatal(err)
	}
	cpus, err := act.NewLogic("Xeon CPUs", act.MM2(694), f14, 2)
	if err != nil {
		log.Fatal(err)
	}
	ram, err := act.NewDRAM("DDR4 DIMMs", act.DDR4_10nm, act.Gigabytes(512))
	if err != nil {
		log.Fatal(err)
	}
	flash, err := act.NewStorage("SSD array", act.NANDV3TLC, act.Terabytes(31))
	if err != nil {
		log.Fatal(err)
	}
	server, err := act.NewDevice("Dell R740")
	if err != nil {
		log.Fatal(err)
	}
	server.AddLogic(cpus).AddDRAM(ram).AddStorage(flash).AddExtraICs(40)

	b, err := act.Embodied(server)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("Dell R740-class server, ACT bottom-up at actual nodes",
		"component", "embodied")
	for _, item := range b.Items {
		t.AddRow(item.Name, item.Embodied.String())
	}
	t.AddRow("TOTAL", b.Total().String())
	mustPrint(t)

	// Life-cycle footprint: a 4-year datacenter deployment at 60%
	// utilization of a 500 W server on the US grid.
	const utilization = 0.6
	lifetime := act.YearsDuration(4)
	usage := act.UsageFromPower(act.Watts(500*utilization), lifetime, act.USGrid)
	a, err := act.LifetimeFootprint(server, usage, lifetime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-year deployment on the US grid (300 g CO2/kWh, %.0f%% of 500 W):\n", utilization*100)
	fmt.Printf("  operational: %v\n", a.Operational)
	fmt.Printf("  embodied:    %v\n", a.EmbodiedTotal)
	fmt.Printf("  total:       %v\n", a.Total())
	fmt.Printf("  embodied share of total: %.0f%%\n\n",
		a.EmbodiedTotal.Grams()/a.Total().Grams()*100)

	// Table 12: the same ICs as the published LCA saw them.
	rows, err := platforms.Table12()
	if err != nil {
		log.Fatal(err)
	}
	cmp := report.NewTable("Table 12 (R740 rows): published LCA vs ACT",
		"IC", "LCA node", "LCA", "ACT @ LCA-era node", "ACT @ actual node")
	for _, r := range rows {
		if r.Device != "Dell R740" && r.Device != "Dell R740 31TB" && r.Device != "Dell R740 400GB" {
			continue
		}
		cmp.AddRow(r.IC+" ("+r.Device+")", r.LCANode, r.LCACO2.String(),
			r.ACT1.String(), r.ACT2.String())
	}
	cmp.AddNote("dated LCA processes overstate memory and storage footprints by up to an order of magnitude")
	mustPrint(cmp)
}

func mustPrint(t *report.Table) {
	out, err := t.ASCII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
