// Accelerator design-space exploration (paper Figures 12-13): sweep an
// NVDLA-style NPU from 64 to 2048 MACs, locate the optimum under each
// optimization target, design against a 30 FPS QoS floor, and demonstrate
// the Jevons paradox under fixed area budgets when moving 28 nm -> 16 nm.
//
// Run with: go run ./examples/accelerator-dse
package main

import (
	"fmt"
	"log"

	"act/internal/accel"
	"act/internal/dse"
	"act/internal/metrics"
	"act/internal/report"
	"act/internal/units"
)

func main() {
	model, err := accel.NewModel()
	if err != nil {
		log.Fatal(err)
	}

	// The 16 nm sweep (Figure 12).
	sweep, err := model.Sweep(accel.Process16nm)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("16nm NVDLA-style NPU sweep",
		"MACs", "area (mm²)", "FPS", "energy/frame (mJ)", "embodied (g CO2)")
	for _, d := range sweep {
		e, err := d.Embodied()
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(report.Num(float64(d.MACs)), report.Num(d.Area().MM2()),
			report.Num(d.FPS()), report.Num(d.EnergyPerFrame().Millijoules()),
			report.Num(e.Grams()))
	}
	mustPrint(t)

	// Optima per target (Figure 12): performance and EDP favor the most
	// parallel design; the carbon metrics favor successively leaner ones.
	opt := report.NewTable("Optimal MAC count per target", "target", "MACs")
	perf, err := model.PerfOptimal(accel.Process16nm)
	if err != nil {
		log.Fatal(err)
	}
	opt.AddRow("performance", report.Num(float64(perf.MACs)))
	for _, m := range []metrics.Metric{metrics.EDP, metrics.CDP, metrics.CE2P, metrics.CEP, metrics.C2EP} {
		d, err := model.MetricOptimal(accel.Process16nm, m)
		if err != nil {
			log.Fatal(err)
		}
		opt.AddRow(string(m), report.Num(float64(d.MACs)))
	}
	mustPrint(opt)

	// QoS-driven design (Figure 13 left), expressed through the generic
	// DSE layer: minimize embodied carbon subject to a 30 FPS floor.
	cands, err := accel.Candidates(sweep)
	if err != nil {
		log.Fatal(err)
	}
	qos, err := dse.ConstrainedMinimize(cands, dse.Embodied, dse.MaxDelay(1.0/30))
	if err != nil {
		log.Fatal(err)
	}
	perfC, err := perf.Candidate()
	if err != nil {
		log.Fatal(err)
	}
	energyOpt, err := model.EnergyOptimal(accel.Process16nm)
	if err != nil {
		log.Fatal(err)
	}
	energyC, err := energyOpt.Candidate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("30 FPS QoS: carbon-optimal design %s at %v\n", qos.Name, qos.Embodied)
	fmt.Printf("  perf-optimal (%s) embodied penalty:   %.2fx\n",
		perfC.Name, perfC.Embodied.Grams()/qos.Embodied.Grams())
	fmt.Printf("  energy-optimal (%s) embodied penalty: %.2fx\n\n",
		energyC.Name, energyC.Embodied.Grams()/qos.Embodied.Grams())

	// Pareto frontier over embodied carbon vs delay.
	front, err := dse.ParetoFrontier(cands, []dse.Objective{dse.Embodied, dse.Delay})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("Pareto frontier (embodied vs delay): ")
	for i, c := range front {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(c.Name)
	}
	fmt.Println()
	fmt.Println()

	// Jevons paradox under area budgets (Figure 13 right).
	j := report.NewTable("Jevons paradox: fixed area budgets, 28nm vs 16nm",
		"budget", "28nm design", "28nm g CO2", "16nm design", "16nm g CO2", "increase")
	for _, budget := range []units.Area{units.MM2(1), units.MM2(2)} {
		d28, err := model.BudgetOptimal(accel.Process28nm, budget)
		if err != nil {
			log.Fatal(err)
		}
		e28, err := d28.Embodied()
		if err != nil {
			log.Fatal(err)
		}
		d16, err := model.BudgetOptimal(accel.Process16nm, budget)
		if err != nil {
			log.Fatal(err)
		}
		e16, err := d16.Embodied()
		if err != nil {
			log.Fatal(err)
		}
		j.AddRow(budget.String(),
			fmt.Sprintf("%d MACs", d28.MACs), report.Num(e28.Grams()),
			fmt.Sprintf("%d MACs", d16.MACs), report.Num(e16.Grams()),
			fmt.Sprintf("+%.0f%%", (e16.Grams()/e28.Grams()-1)*100))
	}
	j.AddNote("newer node, same budget, more capable silicon — and more embodied carbon (paper: +33%/+28%)")
	mustPrint(j)
}

func mustPrint(t *report.Table) {
	out, err := t.ASCII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
