// Mobile SoC design space (paper Figure 8): characterize thirteen
// commodity SoCs across three families and show that the optimal chip
// differs between PPA metrics (EDP, EDAP) and carbon metrics (CDP, CEP,
// C2EP, CE2P) — the paper's core argument that sustainability opens a new
// design space.
//
// Run with: go run ./examples/mobile-soc-designspace
package main

import (
	"fmt"
	"log"

	"act/internal/metrics"
	"act/internal/report"
	"act/internal/soc"
)

func main() {
	chips := soc.Catalog()

	// Figure 8(a-c): performance, energy and embodied carbon per chip.
	perf := report.NewSeries("aggregate mobile speed (geomean score)", "")
	energy := report.NewSeries("suite energy", "J")
	embodied := report.NewSeries("embodied carbon", "kg CO2")
	for _, s := range chips {
		perf.Add(s.Name, s.GeomeanScore())
		energy.Add(s.Name, s.Energy().Joules())
		e, err := s.Embodied()
		if err != nil {
			log.Fatal(err)
		}
		embodied.Add(s.Name, e.Kilograms())
	}
	for _, series := range []*report.Series{perf, energy, embodied} {
		chart, err := series.Bars(40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(chart)
	}

	// Figure 8(d): normalized metrics per family, baseline = the family's
	// newest chip.
	cands, err := soc.Candidates(chips)
	if err != nil {
		log.Fatal(err)
	}
	for _, fam := range soc.Families() {
		newest, err := soc.Newest(fam)
		if err != nil {
			log.Fatal(err)
		}
		famCands, err := soc.Candidates(soc.ByFamily(fam))
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(fmt.Sprintf("%s, normalized to %s", fam, newest.Name),
			"SoC", "EDP", "EDAP", "CDP", "CEP", "C2EP")
		cols := []metrics.Metric{metrics.EDP, metrics.EDAP, metrics.CDP, metrics.CEP, metrics.C2EP}
		norm := map[metrics.Metric][]metrics.Scored{}
		for _, m := range cols {
			n, err := metrics.Normalized(m, famCands, newest.Name)
			if err != nil {
				log.Fatal(err)
			}
			norm[m] = n
		}
		for i, c := range famCands {
			row := []string{c.Name}
			for _, m := range cols {
				row = append(row, report.Num(norm[m][i].Value))
			}
			t.AddRow(row...)
		}
		out, err := t.ASCII()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	// The headline: winners per metric across the whole catalog.
	t := report.NewTable("Optimal SoC per optimization target", "metric", "winner")
	for _, m := range metrics.All() {
		best, err := metrics.Best(m, cands)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(string(m), best.Candidate.Name)
	}
	sorted, err := soc.SortedByEmbodied()
	if err != nil {
		log.Fatal(err)
	}
	t.AddRow("embodied carbon", sorted[0].Name)
	out, err := t.ASCII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println("paper (Section 4.2): EDP->Kirin 990, EDAP->Snapdragon 865,")
	fmt.Println("embodied->Snapdragon 835, CEP->Kirin 980, C2EP->Kirin 980")
}
