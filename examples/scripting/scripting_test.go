// Golden tests for the committed case-study scripts: each .act file runs
// through the sandboxed interpreter under default budgets and its full
// result envelope must match testdata/<name>.golden byte for byte. The
// envelopes are what `act script -file examples/scripting/<name>.act`
// prints, so the goldens double as documented example output. Regenerate
// with:
//
//	go test ./examples/scripting/ -run TestCaseStudyGoldens -update-scripting-golden

package scripting

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"act/internal/script"
)

var updateGolden = flag.Bool("update-scripting-golden", false,
	"rewrite testdata/*.golden from the current interpreter output")

func TestCaseStudyGoldens(t *testing.T) {
	files, err := filepath.Glob("*.act")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("expected the 3 committed case studies, found %v", files)
	}
	for _, file := range files {
		name := file[:len(file)-len(".act")]
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			res, err := script.Eval(context.Background(), string(src), script.Options{})
			if err != nil {
				t.Fatalf("evaluating %s: %v", file, err)
			}
			var got bytes.Buffer
			if err := res.Encode(&got); err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", goldenPath)
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (regenerate with -update-scripting-golden): %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("%s output drifted from its golden.\n got:\n%s\nwant:\n%s", file, got.Bytes(), want)
			}
		})
	}
}
