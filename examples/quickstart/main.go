// Quickstart: estimate the end-to-end carbon footprint of running a
// measured workload on a phone-class device.
//
// It demonstrates the full ACT flow through the public API:
//
//  1. describe the hardware (a 7 nm SoC, LPDDR4, NAND flash),
//  2. profile the software by actually running a synthetic AI-inference
//     kernel to get the application execution time T,
//  3. evaluate CF = OPCF + (T/LT)·ECF.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"act"
	"act/internal/workloads"
)

func main() {
	// 1. Hardware: a phone-class bill of materials.
	fab, err := act.NewFab(act.Node7)
	if err != nil {
		log.Fatal(err)
	}
	soc, err := act.NewLogic("application SoC", act.MM2(98.5), fab, 1)
	if err != nil {
		log.Fatal(err)
	}
	ram, err := act.NewDRAM("LPDDR4", act.LPDDR4, act.Gigabytes(4))
	if err != nil {
		log.Fatal(err)
	}
	flash, err := act.NewStorage("NAND flash", act.NANDV3TLC, act.Gigabytes(64))
	if err != nil {
		log.Fatal(err)
	}
	phone, err := act.NewDevice("phone")
	if err != nil {
		log.Fatal(err)
	}
	phone.AddLogic(soc).AddDRAM(ram).AddStorage(flash).AddExtraICs(10)

	// 2. Software: profile a real (synthetic) AI-inference kernel — this
	// is the "T from SW profiling" input of the model.
	kernel, err := workloads.ByName("ai-image-classification")
	if err != nil {
		log.Fatal(err)
	}
	profile, err := workloads.Profile(kernel, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: %d runs in %v (%v per inference)\n",
		profile.Kernel, profile.Runs, profile.Duration.Round(1e6), profile.PerRun())

	// Bonus: score this host against the suite's reference machine, the
	// same geometric-mean aggregation the paper uses for mobile chips.
	suite, err := workloads.ProfileSuite(3)
	if err != nil {
		log.Fatal(err)
	}
	score, err := workloads.Score(suite, workloads.DefaultReference())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("this host's suite score: %.0f (reference machine = 1000)\n\n", score)

	// 3. Footprint: the workload draws 3 W on the US grid; embodied carbon
	// is amortized against a 3-year device lifetime.
	usage := profile.Usage(act.Watts(3), act.USGrid)
	a, err := act.Footprint(phone, usage, profile.Duration, act.YearsDuration(3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("device: %s\n", a.Device)
	fmt.Printf("  operational (OPCF):        %v\n", a.Operational)
	fmt.Printf("  embodied total (ECF):      %v\n", a.EmbodiedTotal)
	fmt.Printf("  embodied share (T/LT·ECF): %v\n", a.EmbodiedShare)
	fmt.Printf("  total (CF):                %v\n\n", a.Total())

	fmt.Println("embodied breakdown:")
	for _, item := range a.Breakdown.Items {
		fmt.Printf("  %-22s %-10s %v\n", item.Name, item.Kind, item.Embodied)
	}
}
