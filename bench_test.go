package act_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per artifact — run `go test -bench=.`) and
// benchmarks the synthetic workload kernels that feed the model's software
// profiles. Each artifact benchmark reports headline shape numbers as
// custom metrics so a -bench run doubles as a reproduction summary; the
// full rows print once under -v via b.Log.

import (
	"time"

	"testing"

	"act/internal/accel"
	"act/internal/experiments"
	"act/internal/metrics"
	"act/internal/provision"
	"act/internal/replace"
	"act/internal/soc"
	"act/internal/ssdlife"
	"act/internal/workloads"
)

// benchExperiment runs one registered artifact per iteration and logs the
// rendered tables once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var logged bool
	for i := 0; i < b.N; i++ {
		tables, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			for _, t := range tables {
				out, err := t.ASCII()
				if err != nil {
					b.Fatal(err)
				}
				b.Log("\n" + out)
			}
		}
	}
}

func BenchmarkFigure1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFigure16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFigure17(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable5(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)   { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)   { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)   { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)   { benchExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B)  { benchExperiment(b, "table10") }
func BenchmarkTable11(b *testing.B)  { benchExperiment(b, "table11") }
func BenchmarkTable12(b *testing.B)  { benchExperiment(b, "table12") }

// BenchmarkFigure8 regenerates the SoC design space and reports the fleet
// efficiency trend alongside.
func BenchmarkFigure8(b *testing.B) {
	benchExperiment(b, "fig8")
	cands, err := soc.Candidates(soc.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	best, err := metrics.Best(metrics.CEP, cands)
	if err != nil {
		b.Fatal(err)
	}
	if best.Candidate.Name != "Kirin 980" {
		b.Fatalf("CEP winner = %s, want Kirin 980", best.Candidate.Name)
	}
}

// BenchmarkTable4 regenerates the provisioning table and reports the
// break-even utilizations as metrics.
func BenchmarkTable4(b *testing.B) {
	benchExperiment(b, "table4")
	f, err := provision.DefaultFab()
	if err != nil {
		b.Fatal(err)
	}
	dsp, err := provision.BreakEvenUtilization(provision.DSP, f, 300, yearsDuration(3))
	if err != nil {
		b.Fatal(err)
	}
	gpu, err := provision.BreakEvenUtilization(provision.GPU, f, 300, yearsDuration(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(dsp*100, "dsp-breakeven-%")
	b.ReportMetric(gpu*100, "gpu-breakeven-%")
}

// BenchmarkFigure12 reports the carbon-metric reduction available by
// right-sizing the accelerator.
func BenchmarkFigure12(b *testing.B) {
	benchExperiment(b, "fig12")
	m, err := accel.NewModel()
	if err != nil {
		b.Fatal(err)
	}
	most, err := m.Design(2048, accel.Process16nm)
	if err != nil {
		b.Fatal(err)
	}
	mostC, err := most.Candidate()
	if err != nil {
		b.Fatal(err)
	}
	best, err := m.MetricOptimal(accel.Process16nm, metrics.C2EP)
	if err != nil {
		b.Fatal(err)
	}
	bestC, err := best.Candidate()
	if err != nil {
		b.Fatal(err)
	}
	vMost, err := metrics.Eval(metrics.C2EP, mostC)
	if err != nil {
		b.Fatal(err)
	}
	vBest, err := metrics.Eval(metrics.C2EP, bestC)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(vMost/vBest, "c2ep-reduction-x")
}

// BenchmarkFigure13 reports the QoS penalty ratios and the Jevons increase.
func BenchmarkFigure13(b *testing.B) {
	benchExperiment(b, "fig13")
	m, err := accel.NewModel()
	if err != nil {
		b.Fatal(err)
	}
	qos, err := m.QoSOptimal(accel.Process16nm, 30)
	if err != nil {
		b.Fatal(err)
	}
	qosE, err := qos.Embodied()
	if err != nil {
		b.Fatal(err)
	}
	perf, err := m.PerfOptimal(accel.Process16nm)
	if err != nil {
		b.Fatal(err)
	}
	perfE, err := perf.Embodied()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(perfE.Grams()/qosE.Grams(), "perf-opt-penalty-x")
}

// BenchmarkFigure14 reports the optimal replacement lifetime.
func BenchmarkFigure14(b *testing.B) {
	benchExperiment(b, "fig14")
	opt, err := replace.DefaultScenario().Optimal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(opt.LifetimeYears, "optimal-lifetime-years")
}

// BenchmarkFigure15 reports the first- and second-life optima.
func BenchmarkFigure15(b *testing.B) {
	benchExperiment(b, "fig15")
	d := ssdlife.DefaultDrive()
	first, err := d.Optimal(ssdlife.DefaultGrid(), 2)
	if err != nil {
		b.Fatal(err)
	}
	second, err := d.Optimal(ssdlife.DefaultGrid(), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(first.PF*100, "first-life-op-%")
	b.ReportMetric(second.PF*100, "second-life-op-%")
}

// yearsDuration converts Julian years to a time.Duration.
func yearsDuration(y float64) time.Duration {
	return time.Duration(y * 365.25 * 24 * float64(time.Hour))
}

// Benchmarks for the synthetic workload kernels that supply the model's
// software profiles (the T parameter).
func benchKernel(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	k, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = k.Run()
	}
	_ = sink
}

func BenchmarkKernelHTMLRender(b *testing.B)    { benchKernel(b, "html5-rendering") }
func BenchmarkKernelAES(b *testing.B)           { benchKernel(b, "aes-encryption") }
func BenchmarkKernelTextCompress(b *testing.B)  { benchKernel(b, "text-compression") }
func BenchmarkKernelImageCompress(b *testing.B) { benchKernel(b, "image-compression") }
func BenchmarkKernelFaceDetect(b *testing.B)    { benchKernel(b, "face-detection") }
func BenchmarkKernelSpeechRecog(b *testing.B)   { benchKernel(b, "speech-recognition") }
func BenchmarkKernelAIClassify(b *testing.B)    { benchKernel(b, "ai-image-classification") }
func BenchmarkKernelFIR(b *testing.B)           { benchKernel(b, "fir-filter") }

// Extension-artifact benchmarks (ext1-ext10), regenerating the Figure 1
// levers the paper names but does not evaluate.
func BenchmarkExt1Wafer(b *testing.B)       { benchExperiment(b, "ext1") }
func BenchmarkExt2Chiplet(b *testing.B)     { benchExperiment(b, "ext2") }
func BenchmarkExt3DVFS(b *testing.B)        { benchExperiment(b, "ext3") }
func BenchmarkExt4Scheduling(b *testing.B)  { benchExperiment(b, "ext4") }
func BenchmarkExt5Fleet(b *testing.B)       { benchExperiment(b, "ext5") }
func BenchmarkExt6DutyCycle(b *testing.B)   { benchExperiment(b, "ext6") }
func BenchmarkExt7Gases(b *testing.B)       { benchExperiment(b, "ext7") }
func BenchmarkExt8Uncertainty(b *testing.B) { benchExperiment(b, "ext8") }
func BenchmarkExt9Battery(b *testing.B)     { benchExperiment(b, "ext9") }
func BenchmarkExt10Pledge(b *testing.B)     { benchExperiment(b, "ext10") }
